"""Benchmark: regenerate Table II (DTR vs OLR access counts)."""

from repro.experiments import table2


def test_table2(regenerate):
    result = regenerate("table2", table2.run, samples=4000, seed=0)
    by_s = {row[0]: row for row in result.rows}
    # paper shape: DTR deterministic 1 for s <= 5; OLR "1 or 2" at 4, 5
    for s in range(1, 6):
        assert by_s[s][2] == "1"
    assert by_s[4][4] == "1 or 2"
    assert by_s[5][4] == "1 or 2"
    assert by_s[6][5] == 2  # guarantee level M(6) = 2
