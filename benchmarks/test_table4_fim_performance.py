"""Benchmark: regenerate Table IV (FIM time and memory)."""

from repro.experiments import table4


def test_table4(regenerate):
    result = regenerate("table4", table4.run, scale=1.0, n_intervals=24,
                        seed=0)
    rows = {(r[0], r[2]): r for r in result.rows}

    # more requests => more mining time and memory (per workload)
    for wl in ("exch", "tpce"):
        small = rows[(f"{wl}-small", 1)]
        large = rows[(f"{wl}-large", 1)]
        assert large[1] > small[1]
        assert large[3] >= small[3]

    # higher support prunes: cheaper and fewer pairs (paper tpce3 row)
    s1 = rows[("tpce-large", 1)]
    s3 = rows[("tpce-large", 3)]
    assert s3[3] <= s1[3] + 0.05
    assert s3[5] <= s1[5]
