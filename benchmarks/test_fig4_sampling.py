"""Benchmark: regenerate Figure 4 (optimal retrieval probabilities)."""

import pytest

from repro.experiments import fig4


def test_fig4(regenerate):
    result = regenerate("fig4", fig4.run, max_k=20, trials=4000, seed=0)
    probs = {row[0]: row[2] for row in result.rows}

    # paper reference points (read off Figure 4)
    assert probs[6] == pytest.approx(0.99, abs=0.02)
    assert probs[7] == pytest.approx(0.98, abs=0.03)
    assert probs[8] == pytest.approx(0.95, abs=0.05)
    assert probs[9] == pytest.approx(0.75, abs=0.08)
    assert probs[10] == 1.0

    # shape: dips at multiples of N = 9, certain in between
    assert probs[9] < probs[8] < probs[7] < 1.0
    assert probs[18] < probs[17]
    assert probs[11] == pytest.approx(1.0, abs=0.01)
