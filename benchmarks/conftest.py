"""Shared helpers for the benchmark suite.

Every benchmark regenerates one paper artefact (table or figure) at a
meaningful scale, times it via pytest-benchmark (single round -- these
are experiments, not microbenchmarks), asserts the paper's qualitative
shape, and writes the rendered table to ``benchmarks/results/`` for
inclusion in EXPERIMENTS.md.
"""

from __future__ import annotations

from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture
def regenerate(benchmark, results_dir):
    """Run an experiment once under timing and persist its rendering."""

    def _run(name: str, fn, *args, **kwargs):
        result = benchmark.pedantic(fn, args=args, kwargs=kwargs,
                                    rounds=1, iterations=1,
                                    warmup_rounds=0)
        text = result.render() if hasattr(result, "render") else str(result)
        (results_dir / f"{name}.txt").write_text(text + "\n")
        print(f"\n{text}\n")
        return result

    return _run
