"""Benchmark: regenerate Figure 9 (TPC-E deterministic QoS)."""

import pytest

from repro.experiments import fig9


def test_fig9(regenerate):
    result = regenerate("fig9", fig9.run, scale=0.5, seed=0)
    assert len(result.rows) == 6  # six TPC-E parts

    for row in result.rows:
        # QoS pinned at the guarantee
        assert row[1] == pytest.approx(0.132507, abs=1e-5)
        assert row[3] == pytest.approx(0.132507, abs=1e-5)
        # original max clearly above in every interval (paper text)
        assert row[4] > 0.132507

    # original avg slightly above the guarantee (paper: 0.135145 mean)
    orig_avg = sum(r[2] for r in result.rows) / len(result.rows)
    assert 0.132507 < orig_avg < 0.16

    # delayed ~2-3% with small delays (paper: ~0.03 ms)
    mean_pct = sum(r[6] for r in result.rows) / len(result.rows)
    assert 0.5 <= mean_pct <= 6.0
    delays = [r[5] for r in result.rows if r[6] > 0]
    assert delays and sum(delays) / len(delays) <= 0.15
