"""Benchmarks: extension ablations (writes, failures, analytic model)."""

import numpy as np
import pytest

from repro.analysis import ConflictModel
from repro.allocation.design_theoretic import DesignTheoreticAllocation
from repro.experiments import ablations
from repro.experiments.common import ExperimentResult
from repro.flash.driver import OnlineTracePlayer
from repro.flash.params import MSR_SSD_PARAMS


def test_ablation_write_interference(regenerate):
    result = regenerate("ablation_write_interference",
                        ablations.write_interference)
    delayed = [r[1] for r in result.rows]
    avg = [r[3] for r in result.rows]
    # conflicts and mean response grow with the write share
    assert delayed == sorted(delayed)
    assert avg == sorted(avg)
    assert delayed[-1] > 3 * delayed[0]


def test_ablation_failure_degradation(regenerate):
    result = regenerate("ablation_failure_degradation",
                        ablations.failure_degradation)
    s1 = [r[1] for r in result.rows]
    worst = [r[3] for r in result.rows]
    mean = [r[4] for r in result.rows]
    # capacity degrades gracefully: 5 -> 3 -> 1
    assert s1 == [5, 3, 1]
    # measured retrieval cost only creeps up
    assert worst[0] == 1
    assert max(worst) <= 2
    assert mean == sorted(mean)


def test_ablation_heterogeneous_retrieval(regenerate):
    result = regenerate("ablation_heterogeneous_retrieval",
                        ablations.heterogeneous_retrieval)
    naive, general = result.rows
    # speed-aware scheduling wins on mean and worst makespan
    assert general[1] < naive[1]
    assert general[2] <= naive[2]


def test_ablation_intra_module_parallelism(regenerate):
    result = regenerate("ablation_intra_module_parallelism",
                        ablations.intra_module_parallelism)
    makespans = [r[1] for r in result.rows]
    throughputs = [r[2] for r in result.rows]
    # monotone improvement, saturating at the channel bound
    assert makespans[0] > makespans[-1]
    for a, b in zip(makespans, makespans[1:]):
        assert b <= a + 1e-9
    bus_bound = 1.0 / MSR_SSD_PARAMS.transfer_ms
    assert throughputs[-1] <= bus_bound + 0.1
    assert throughputs[-1] >= 0.9 * bus_bound


def test_ablation_rebuild_tradeoff(regenerate):
    result = regenerate("ablation_rebuild_tradeoff",
                        ablations.rebuild_tradeoff)
    times = [r[1] for r in result.rows]
    slowdowns = [r[3] for r in result.rows]
    # more streams: rebuild time non-increasing, slowdown non-decreasing
    for a, b in zip(times, times[1:]):
        assert b <= a + 1e-6
    assert times[-1] < times[0]
    assert slowdowns[-1] >= slowdowns[0] - 1e-3
    assert all(s >= 1.0 for s in slowdowns)


def test_ablation_rule_prefetching(regenerate):
    result = regenerate("ablation_rule_prefetching",
                        ablations.rule_prefetching)
    rows = {r[0]: r for r in result.rows}
    # prefetching pays only where patterns persist: the TPC-E-like
    # workload must beat the Exchange-like one by a wide margin
    assert rows["tpce"][3] > 5 * max(rows["exchange"][3], 0.1)
    assert rows["tpce"][3] > 2.0  # a few percent of requests hit


def _simulate_delay_curve(rates, seed=3):
    alloc = DesignTheoreticAllocation.from_parameters(9, 3)
    rng = np.random.default_rng(seed)
    out = []
    for rate in rates:
        n = int(rate * 200)
        arrivals = np.sort(rng.uniform(0, 200.0, n))
        buckets = rng.integers(0, 36, n)
        series, _ = OnlineTracePlayer(alloc, 0.133).play(
            list(arrivals), list(buckets))
        out.append(series.overall().pct_delayed / 100.0)
    return out


def test_analysis_validation(regenerate):
    """The rho^c conflict model tracks Poisson-workload simulation."""
    rates = (5.0, 10.0, 20.0, 30.0)
    model = ConflictModel(9, 3, MSR_SSD_PARAMS.read_ms)

    def run():
        sim = _simulate_delay_curve(rates)
        rows = [[r, round(model.utilisation(r), 3),
                 round(100 * model.p_delayed(r), 3),
                 round(100 * s, 3)] for r, s in zip(rates, sim)]
        return ExperimentResult(
            name="Analysis validation -- conflict model vs simulation",
            headers=["rate (req/ms)", "utilisation",
                     "model % delayed", "simulated % delayed"],
            rows=rows,
            notes="Independent-replica approximation: within a small "
                  "factor and the same monotone trend.",
        )

    result = regenerate("analysis_validation", run)
    model_pct = [r[2] for r in result.rows]
    sim_pct = [r[3] for r in result.rows]
    # both strictly increasing; simulation within a factor of 5 of the
    # model plus half a percentage point of slack (bucket-sharing
    # correlation, which the independence assumption drops, dominates
    # at low utilisation where absolute values are tiny)
    assert sim_pct == sorted(sim_pct)
    assert model_pct == sorted(model_pct)
    for m, s in zip(model_pct, sim_pct):
        assert m / 5 - 0.5 <= s <= m * 5 + 0.5, (m, s)


def test_ablation_flash_vs_hdd(regenerate):
    result = regenerate("ablation_flash_vs_hdd", ablations.flash_vs_hdd)
    rows = {r[0]: r for r in result.rows}
    flash = rows["flash array"]
    hdd = rows["15K-RPM HDD array"]
    # flash: deterministic service, zero variance at this load
    assert flash[2] == pytest.approx(0.0, abs=1e-6)
    assert flash[1] == pytest.approx(0.132507, abs=1e-5)
    # HDD: an order of magnitude slower and wildly variable
    assert hdd[1] > 10 * flash[1]
    assert hdd[2] > 0.5
    assert hdd[4] > 0.2  # coefficient of variation


def test_ablation_adaptive_epsilon(regenerate):
    result = regenerate("ablation_adaptive_epsilon",
                        ablations.adaptive_epsilon)
    data_rows = [r for r in result.rows if isinstance(r[0], int)]
    eps = [float(r[1]) for r in data_rows]
    lo, hi = 1e-6, 0.5
    assert all(lo <= e <= hi for e in eps)
    # the controller moves epsilon (it is not stuck at the start value)
    assert len(set(eps)) > 1
    # the steady-state mean stays within a few points of the target
    mean_row = next(r for r in result.rows if r[0] == "mean(>2)")
    assert abs(mean_row[2] - 2.0) < 4.0


def test_ablation_query_types(regenerate):
    result = regenerate("ablation_query_types", ablations.query_types)
    rows = {r[0]: r for r in result.rows}
    # §II-B2: partitioned/periodic strong on range queries...
    assert rows["partitioned"][1] == pytest.approx(1.0, abs=0.05)
    assert rows["periodic"][1] == pytest.approx(1.0, abs=0.05)
    # ...but partitioned degrades badly on arbitrary queries
    assert rows["partitioned"][3] > rows["design-theoretic"][3] + 0.3
    assert rows["partitioned"][4] >= 3
    # design-theoretic: best arbitrary-query worst case of the 3-copy
    # schemes, and still perfect on range queries
    assert rows["design-theoretic"][2] == 1
    assert rows["design-theoretic"][4] <= 2


def test_ablation_fim_history(regenerate):
    result = regenerate("ablation_fim_history", ablations.fim_history)
    matched = [r[1] for r in result.rows]
    # "longer history can be used for better matching" (paper §V-D):
    # monotone non-decreasing, with a real gain from depth 1 to max
    for a, b in zip(matched, matched[1:]):
        assert b >= a - 0.5
    assert matched[-1] > matched[0] + 2.0
