"""Benchmark: regenerate Figure 8 (Exchange deterministic QoS)."""

import pytest

from repro.experiments import fig8


def test_fig8(regenerate):
    result = regenerate("fig8", fig8.run, scale=0.5, n_intervals=96,
                        seed=0)
    # (a, b): QoS avg and max flat at the guarantee in every interval
    for row in result.rows:
        assert row[1] == pytest.approx(0.132507, abs=1e-5)
        assert row[3] == pytest.approx(0.132507, abs=1e-5)

    # original trace sits above the guarantee (avg in most intervals,
    # max everywhere it has contention)
    above_avg = sum(1 for r in result.rows if r[2] > 0.132507)
    assert above_avg >= len(result.rows) * 0.8
    assert max(r[4] for r in result.rows) > 2 * 0.132507

    # (c, d): delays in the paper's band -- avg ~0.1-0.25 ms over the
    # delayed requests, delayed fraction in the single-digit-to-teens
    delays = [r[5] for r in result.rows if r[6] > 0]
    pcts = [r[6] for r in result.rows]
    assert delays, "no interval produced delayed requests"
    mean_delay = sum(delays) / len(delays)
    assert 0.03 <= mean_delay <= 0.3
    mean_pct = sum(pcts) / len(pcts)
    assert 1.0 <= mean_pct <= 20.0
