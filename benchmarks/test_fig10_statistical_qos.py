"""Benchmark: regenerate Figure 10 (statistical QoS vs epsilon)."""

from repro.experiments import fig10


def test_fig10(regenerate):
    result = regenerate("fig10", fig10.run, scale=0.4, n_intervals=16,
                        seed=0)
    for wl in ("exchange", "tpce"):
        rows = [r for r in result.rows if r[0] == wl]
        eps = [r[1] for r in rows]
        delayed = [r[2] for r in rows]
        avg = [r[3] for r in rows]
        assert eps == sorted(eps)

        # (a, c): % delayed decreases monotonically with epsilon
        for a, b in zip(delayed, delayed[1:]):
            assert b <= a + 0.2, (wl, delayed)
        assert delayed[-1] < delayed[0]

        # (b, d): average response rises with epsilon
        assert avg[-1] > avg[0]
        for a, b in zip(avg, avg[1:]):
            assert b >= a - 1e-6, (wl, avg)

        # epsilon = 0 is the deterministic case: avg pinned at the
        # guarantee
        assert abs(avg[0] - 0.132507) < 1e-5
