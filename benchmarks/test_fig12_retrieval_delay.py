"""Benchmark: regenerate Figure 12 (online vs design-theoretic delay)."""

from repro.experiments import fig12


def test_fig12(regenerate):
    result = regenerate("fig12", fig12.run, scale=0.4, n_intervals=12,
                        seed=0)
    for wl in ("exchange", "tpce"):
        rows = [r for r in result.rows
                if r[0] == wl and r[1] != "mean"]
        # online strictly below the interval-aligned algorithm in every
        # trace interval (the paper's filled gap)
        for r in rows:
            assert r[2] <= r[3] + 1e-9, r
        mean_gap = [r[4] for r in result.rows
                    if r[0] == wl and r[1] == "mean"][0]
        assert mean_gap > 0
        # gap is a sizeable fraction of the scheduling interval
        assert mean_gap >= 0.02
