"""Benchmark: regenerate Figure 6 (trace statistics)."""

from repro.experiments import fig6


def test_fig6(regenerate):
    result = regenerate("fig6", fig6.run, scale=0.5, seed=0,
                        n_intervals=96)
    exch = [r for r in result.rows if r[0] == "exchange"]
    tpce = [r for r in result.rows if r[0] == "tpce"]

    # structural facts of the two traces (paper §V-B2)
    assert len(exch) == 96
    assert len(tpce) == 6

    # Exchange: diurnal variation -- peak at least double the trough
    totals = [r[2] for r in exch]
    assert max(totals) >= 2 * min(totals)

    # TPC-E: flat high rate -- every part within 2x of the mean,
    # and a higher average rate than Exchange's average
    tp_rates = [r[3] for r in tpce]
    mean_rate = sum(tp_rates) / len(tp_rates)
    assert all(0.5 * mean_rate <= r <= 2 * mean_rate for r in tp_rates)
    ex_rates = [r[3] for r in exch]
    assert mean_rate > sum(ex_rates) / len(ex_rates)

    # peak (max req/s) dominates the average everywhere it is defined
    for r in result.rows:
        if r[2] > 10:
            assert r[4] >= r[3]
