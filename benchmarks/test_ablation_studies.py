"""Benchmarks: the DESIGN.md ablation studies."""

from repro.experiments import ablations


def test_ablation_copy_count(regenerate):
    result = regenerate("ablation_copy_count", ablations.copy_count)
    caps = {(r[0], r[1]): r[2] for r in result.rows}
    assert caps[(2, 1)] == 3 and caps[(3, 1)] == 5
    assert caps[(2, 2)] == 8 and caps[(3, 2)] == 14
    assert caps[(2, 3)] == 15 and caps[(3, 3)] == 27


def test_ablation_device_count(regenerate):
    result = regenerate("ablation_device_count", ablations.device_count)
    buckets = [r[1] for r in result.rows]
    assert buckets == sorted(buckets)
    # N(N-1)/2 for c = 3
    ns = [r[0] for r in result.rows]
    assert all(b == n * (n - 1) // 2 for n, b in zip(ns, buckets))


def test_ablation_allocation_zoo(regenerate):
    result = regenerate("ablation_allocation_zoo",
                        ablations.allocation_zoo, batch_size=9,
                        trials=400, seed=0)
    worst = {r[0]: r[2] for r in result.rows}
    mean = {r[0]: r[3] for r in result.rows}
    # design-theoretic ties or beats every 3-copy baseline on both
    # worst case and mean
    for scheme in ("raid1-mirrored", "raid1-chained", "rda",
                   "partitioned", "periodic"):
        assert worst["design-theoretic"] <= worst[scheme]
        assert mean["design-theoretic"] <= mean[scheme] + 1e-9
    # 2-copy orthogonal cannot match 3-copy design on worst case
    assert worst["design-theoretic"] <= worst["orthogonal(c=2)"]


def test_ablation_retrieval_cost(regenerate):
    result = regenerate("ablation_retrieval_cost",
                        ablations.retrieval_cost,
                        sizes=(5, 14, 27, 50, 100), trials=40)
    # Since the capacitated-matcher optimisation (docs/performance.md)
    # the exact solver costs about the same as DTR at these sizes; the
    # check is that both stay cheap and within a small factor of each
    # other (a pathological regression in either would break this).
    for row in result.rows:
        assert row[1] < 1000.0   # DTR under 1 ms per batch
        assert row[2] < 1000.0   # max-flow under 1 ms per batch
        # generous band: wall-clock ratios wobble on loaded machines
        assert 0.1 <= row[3] <= 10.0


def test_ablation_fim_support(regenerate):
    result = regenerate("ablation_fim_support", ablations.fim_support,
                        supports=(1, 2, 3, 5), scale=0.4)
    matched = [r[1] for r in result.rows]
    # coverage decreases monotonically with minimum support
    for a, b in zip(matched, matched[1:]):
        assert b <= a + 1e-9
