"""Benchmark: regenerate Figure 11 (% blocks matched by FIM)."""

from repro.experiments import fig11


def test_fig11(regenerate):
    result = regenerate("fig11", fig11.run, scale=0.5, n_intervals=96,
                        seed=0)
    means = {r[0]: r[2] for r in result.rows if r[1] == "mean(>0)"}
    firsts = {r[0]: r[2] for r in result.rows if r[1] == 0}

    # nothing mined before the first interval
    assert firsts["exchange"] == 0.0
    assert firsts["tpce"] == 0.0

    # paper: Exchange ~17%, TPC-E ~87% -- the order-of-magnitude gap is
    # the headline; absolutes should land near the paper's numbers
    assert 8.0 <= means["exchange"] <= 30.0
    assert 70.0 <= means["tpce"] <= 95.0
    assert means["tpce"] > 3 * means["exchange"]
