"""Benchmark: regenerate Table III (allocation-scheme response times).

Full paper scale: 10 000 requests per row, all three workloads, all
three schemes.
"""

from repro.experiments import table3


def test_table3(regenerate):
    result = regenerate("table3", table3.run, total_requests=10_000,
                        seed=0)

    def rows_of(scheme):
        return [r for r in result.rows if r[2] == scheme]

    design = rows_of("(9,3,1) Design-theoretic")
    mirrored = rows_of("RAID-1 Mirrored")
    chained = rows_of("RAID-1 Chained")

    # the proposed scheme meets its guarantee in every row
    assert all(r[6] == "yes" for r in design)
    for row_idx, row in enumerate(design):
        assert row[5] <= (row_idx + 1) * 0.132507 + 1e-9

    # both baselines violate the guarantee somewhere
    assert any(r[6] == "NO" for r in mirrored)
    assert any(r[6] == "NO" for r in chained)

    # mirrored is the worst performer and degrades with request size
    assert mirrored[2][3] > mirrored[0][3]
    assert mirrored[2][3] > chained[2][3]
    assert chained[2][3] >= design[2][3] - 1e-9

    # paper row 1 reference: mirrored ~0.136 avg, design 0.132507 flat
    assert abs(mirrored[0][3] - 0.136) < 0.01
    assert design[0][4] == 0.0  # zero std: perfectly flat
