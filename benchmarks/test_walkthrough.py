"""Benchmark: the §III walkthrough (Table I + Figures 3 and 5)."""

from repro.experiments import walkthrough


def test_walkthrough(regenerate):
    result = regenerate("walkthrough", walkthrough.run)
    rows = {(r[0], r[1]): r for r in result.rows}

    # Table I: apps 1-3 admitted (total 5), late joiner refused
    assert rows[("admission", "T0")][4] == "admitted"
    assert rows[("admission", "T1")][4] == "admitted"
    assert rows[("admission", "T2")][4] == "admitted"
    assert rows[("admission", "-")][4] == "rejected"

    # Figure 5: every period retrieves in one access; T3 needs
    # remapping (the paper remaps (0,1,2)->d2 and (1,3,8)->d3)
    for period in ("T0", "T1", "T2", "T3"):
        assert rows[("figure5", period)][3] == "1 access(es)"
    assert rows[("figure5", "T0")][5] == "0 remapped"
    assert rows[("figure5", "T3")][5] == "2 remapped"

    # Figure 3: nine non-conflicting requests in one access
    fig3 = rows[("figure3", "-")]
    assert fig3[3] == "1 access(es)"
    assert fig3[4] == "all devices distinct"
