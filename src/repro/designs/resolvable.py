"""Resolvable designs: partitioning blocks into parallel classes.

A design is *resolvable* when its blocks split into **parallel
classes** -- sets of pairwise-disjoint blocks that together cover every
point.  For storage, a parallel class is a perfect retrieval round: one
block per device group, every device serving exactly once.  Kirkman's
schoolgirl problem is the classic instance; the affine planes of
:mod:`repro.designs.planes` are resolvable by construction (their
parallel classes are the pencils of parallel lines).

:func:`find_resolution` computes a resolution of any resolvable design
by exact-cover backtracking (fine for catalog-sized designs);
:func:`round_schedule` applies a resolution to batch scheduling.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.designs.block_design import BlockDesign

__all__ = ["find_resolution", "is_resolvable", "round_schedule"]


def _parallel_classes(design: BlockDesign) -> Optional[List[List[int]]]:
    """Backtracking search for a full resolution (list of classes)."""
    n = design.n_points
    k = design.block_size
    if n % k != 0:
        return None
    per_class = n // k
    blocks = [frozenset(blk) for blk in design.blocks]
    n_classes, rem = divmod(design.n_blocks, per_class)
    if rem != 0:
        return None

    used = [False] * len(blocks)
    classes: List[List[int]] = []

    def build_class(current: List[int], covered: frozenset,
                    start: int) -> bool:
        if len(current) == per_class:
            classes.append(list(current))
            if len(classes) == n_classes:
                return True
            if fill_next_class():
                return True
            classes.pop()
            return False
        for i in range(start, len(blocks)):
            if used[i] or blocks[i] & covered:
                continue
            used[i] = True
            current.append(i)
            if build_class(current, covered | blocks[i], i + 1):
                return True
            current.pop()
            used[i] = False
        return False

    def fill_next_class() -> bool:
        # anchor each class on the lowest-index unused block: prunes
        # the symmetric search space massively
        try:
            anchor = used.index(False)
        except ValueError:  # pragma: no cover - counted classes guard
            return False
        used[anchor] = True
        ok = build_class([anchor], blocks[anchor], anchor + 1)
        if not ok:
            used[anchor] = False
        return ok

    if fill_next_class():
        return classes
    return None


def find_resolution(design: BlockDesign) -> List[List[int]]:
    """Partition block indices into parallel classes.

    Raises
    ------
    ValueError
        If the design is not resolvable (or point/block counts make a
        resolution impossible).
    """
    classes = _parallel_classes(design)
    if classes is None:
        raise ValueError(f"{design} is not resolvable")
    return classes


def is_resolvable(design: BlockDesign) -> bool:
    """True if a full resolution exists."""
    return _parallel_classes(design) is not None


def round_schedule(design: BlockDesign,
                   requested_blocks: Sequence[int],
                   ) -> List[List[int]]:
    """Group requested block indices into device-disjoint rounds.

    Each round is a subset of a parallel class, so its blocks touch
    pairwise-disjoint devices and retrieve in a single access.  Blocks
    from the same class land in the same round; the result is a round
    list sorted by descending size (densest rounds first).
    """
    resolution = find_resolution(design)
    class_of: Dict[int, int] = {}
    for ci, members in enumerate(resolution):
        for b in members:
            class_of[b] = ci
    rounds: Dict[Tuple[int, int], List[int]] = {}
    seen_count: Dict[int, int] = {}
    for b in requested_blocks:
        b = int(b) % design.n_blocks
        # duplicates of one block must serialise: copy r of a block
        # goes to occurrence-round r of its class
        occ = seen_count.get(b, 0)
        seen_count[b] = occ + 1
        rounds.setdefault((class_of[b], occ), []).append(b)
    out = list(rounds.values())
    out.sort(key=len, reverse=True)
    return out
