"""Catalog of verified designs, including the paper's exact designs.

:func:`design_9_3_1` returns the (9,3,1) design exactly as printed in
the paper's Figure 2 (block order and within-block point order match the
figure, so worked examples from the paper can be followed line by line).
:func:`get_design` is the general entry point used by the QoS framework:
given a device count ``N`` and replication ``c`` it picks a suitable
construction.
"""

from __future__ import annotations

from functools import lru_cache
from itertools import combinations

from repro.designs.block_design import BlockDesign
from repro.designs.difference import cyclic_design
from repro.designs.steiner import steiner_triple_system
from repro.designs.verify import verify_design

__all__ = ["design_9_3_1", "design_13_3_1", "pair_design", "get_design"]

# Figure 2 of the paper, column by column.
_FIG2_BLOCKS = (
    (0, 1, 2), (0, 3, 6), (0, 4, 8), (0, 5, 7),
    (1, 3, 8), (1, 4, 7), (1, 5, 6),
    (2, 3, 7), (2, 4, 6), (2, 5, 8),
    (3, 4, 5), (6, 7, 8),
)


@lru_cache(maxsize=None)
def design_9_3_1() -> BlockDesign:
    """The paper's (9,3,1) design (Figure 2), verified on first use."""
    design = BlockDesign(9, _FIG2_BLOCKS, name="(9,3,1)")
    verify_design(design)
    return design


@lru_cache(maxsize=None)
def design_13_3_1() -> BlockDesign:
    """The (13,3,1) design used for the TPC-E experiments (paper §V-D).

    Built cyclically from the classical difference family
    ``{0,1,4}, {0,2,7}`` over ``Z_13`` (26 blocks).
    """
    design = cyclic_design(13, 3)
    return BlockDesign(13, design.blocks, name="(13,3,1)")


@lru_cache(maxsize=None)
def pair_design(n_points: int) -> BlockDesign:
    """The trivial ``(N, 2, 1)`` design: every device pair, once.

    Useful for 2-copy replication; pairwise balance is immediate.
    """
    blocks = tuple(combinations(range(n_points), 2))
    return BlockDesign(n_points, blocks, name=f"({n_points},2,1)")


@lru_cache(maxsize=None)
def get_design(n_points: int, block_size: int = 3) -> BlockDesign:
    """Return a verified ``(n_points, block_size, 1)`` design.

    Dispatch:

    * ``c = 2``: the complete pair design (always exists);
    * ``c = 3``: paper's Figure 2 for N=9, cyclic (13,3,1) for N=13,
      otherwise a Steiner triple system via Bose/Skolem;
    * other ``c``: cyclic difference-family search (small N only).

    Raises
    ------
    ValueError
        If the parameters admit no (known) design.
    """
    if block_size < 2:
        raise ValueError(f"block_size must be >= 2, got {block_size}")
    if block_size > n_points:
        raise ValueError(
            f"block_size {block_size} exceeds n_points {n_points}")
    if block_size == 2:
        return pair_design(n_points)
    if block_size == 3:
        if n_points == 9:
            return design_9_3_1()
        if n_points == 13:
            return design_13_3_1()
        return steiner_triple_system(n_points)
    from repro.designs.planes import affine_plane, is_prime, \
        projective_plane

    q = block_size - 1
    if is_prime(q) and n_points == q * q + q + 1:
        return projective_plane(q)
    if is_prime(block_size) and n_points == block_size * block_size:
        return affine_plane(block_size)
    return cyclic_design(n_points, block_size)
