"""Rotation closure of design blocks.

Paper §II-B4: "Rotations of the design blocks can also be used to assign
buckets to devices in order to support more buckets.  Rotation of the
design block (0,1,2) produces the design blocks (1,2,0) and (2,0,1)."

Rotating a block does not change *which* devices hold a bucket, but it
changes the copy order -- in particular the primary (first-copy) device,
which drives the initial mapping of the design-theoretic retrieval
algorithm.  A ``(N, c, 1)`` Steiner design with all rotations supports
``N(N-1)/(c-1)`` buckets.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.designs.block_design import BlockDesign

__all__ = ["rotate_block", "rotation_closure", "supported_buckets"]

Block = Tuple[int, ...]


def rotate_block(block: Block, shift: int) -> Block:
    """Cyclically rotate ``block`` left by ``shift`` positions."""
    n = len(block)
    shift %= n
    return block[shift:] + block[:shift]


def rotation_closure(design: BlockDesign) -> BlockDesign:
    """Expand a design with all rotations of each block.

    Ordering: for each rotation shift ``r`` (0 first) the blocks appear
    in their original design order, i.e. the first ``n_blocks`` entries
    are the unrotated design.  This mirrors the paper's bucket
    numbering, where buckets beyond the base design reuse device sets
    with shifted copy order.
    """
    blocks: List[Block] = []
    for shift in range(design.block_size):
        for blk in design.blocks:
            blocks.append(rotate_block(blk, shift))
    return BlockDesign(design.n_points, tuple(blocks),
                       name=f"{design.name}+rotations" if design.name else "")


def supported_buckets(n_points: int, block_size: int) -> int:
    """Bucket count supported with rotations: ``N(N-1)/(c-1)``.

    For the paper's (9,3,1): ``9*8/2 = 36``.
    """
    num = n_points * (n_points - 1)
    den = block_size - 1
    if num % den != 0:
        raise ValueError(
            f"N(N-1)={num} not divisible by c-1={den}")
    return num // den
