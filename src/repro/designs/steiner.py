"""Direct constructions of Steiner triple systems.

A Steiner triple system ``STS(v)`` exists iff ``v ≡ 1 or 3 (mod 6)``.
This module implements the classic Bose construction for
``v ≡ 3 (mod 6)`` and the Skolem construction for ``v ≡ 1 (mod 6)``,
giving deterministic ``(N, 3, 1)`` designs for every admissible device
count without table lookups.

References: Bose (1939); Skolem (1958); Lindner & Rodger,
*Design Theory* (the constructions below follow their presentation).
"""

from __future__ import annotations

from typing import List, Tuple

from repro.designs.block_design import BlockDesign
from repro.designs.verify import verify_design

__all__ = ["bose_sts", "skolem_sts", "steiner_triple_system"]


def bose_sts(v: int) -> BlockDesign:
    """Bose construction of ``STS(v)`` for ``v = 6t + 3``.

    Points are pairs ``(i, j)`` with ``i in Z_n`` (``n = 2t+1`` odd) and
    ``j in {0,1,2}``, flattened to ``i + n*j``.  Blocks:

    * ``{(i,0), (i,1), (i,2)}`` for each ``i``;
    * ``{(i,j), (k,j), ((i+k)/2, j+1)}`` for ``i < k`` and each level
      ``j``, where ``/2`` is the inverse of 2 in ``Z_n`` (well-defined
      because ``n`` is odd).
    """
    if v % 6 != 3:
        raise ValueError(f"Bose construction needs v ≡ 3 (mod 6), got {v}")
    n = v // 3
    half = (n + 1) // 2  # inverse of 2 modulo odd n

    def pt(i: int, j: int) -> int:
        return i % n + n * (j % 3)

    blocks: List[Tuple[int, int, int]] = []
    for i in range(n):
        blocks.append((pt(i, 0), pt(i, 1), pt(i, 2)))
    for j in range(3):
        for i in range(n):
            for k in range(i + 1, n):
                mid = ((i + k) * half) % n
                blocks.append((pt(i, j), pt(k, j), pt(mid, j + 1)))
    design = BlockDesign(v, tuple(blocks), name=f"STS({v})-Bose")
    verify_design(design)
    return design


def skolem_sts(v: int) -> BlockDesign:
    """Skolem-type construction of ``STS(v)`` for ``v = 6n + 1``.

    Point set: ``{infinity} ∪ (Z_{2n} × {0,1,2})``; a pair ``(i, j)`` is
    flattened to ``i + 2n*j`` and the infinity point is ``v - 1``.

    The construction needs a *half-idempotent* commutative quasigroup of
    order ``2n``.  We relabel the addition table of ``Z_{2n}`` with the
    permutation ``σ(2r) = r``, ``σ(2r+1) = n + r`` (Lindner & Rodger's
    standard trick), giving ``i ∘ k = σ((i + k) mod 2n)``, which is a
    commutative Latin square with ``i ∘ i = i`` for ``i < n``.
    """
    if v % 6 != 1:
        raise ValueError(f"Skolem construction needs v ≡ 1 (mod 6), got {v}")
    n = v // 6
    if n == 0:
        raise ValueError("v must be at least 7")
    m = 2 * n  # quasigroup order
    infinity = v - 1

    def q(i: int, k: int) -> int:
        s = (i + k) % m
        return s // 2 if s % 2 == 0 else n + (s - 1) // 2

    def pt(i: int, j: int) -> int:
        return i % m + m * (j % 3)

    blocks: List[Tuple[int, int, int]] = []
    # Type 1: {(i,0),(i,1),(i,2)} for 0 <= i < n (the "idempotent" rows).
    for i in range(n):
        blocks.append((pt(i, 0), pt(i, 1), pt(i, 2)))
    # Type 2: {inf,(n+i,j),(i,j+1)} for 0 <= i < n, each level j.
    for j in range(3):
        for i in range(n):
            blocks.append((infinity, pt(n + i, j), pt(i, j + 1)))
    # Type 3: {(i,j),(k,j),(q(i,k),j+1)} for i < k, each level j.
    for j in range(3):
        for i in range(m):
            for k in range(i + 1, m):
                blocks.append((pt(i, j), pt(k, j), pt(q(i, k), j + 1)))
    design = BlockDesign(v, tuple(blocks), name=f"STS({v})-Skolem")
    verify_design(design)
    return design


def steiner_triple_system(v: int) -> BlockDesign:
    """Construct ``STS(v)`` by whichever construction applies.

    Raises
    ------
    ValueError
        If ``v`` is not ``≡ 1 or 3 (mod 6)`` (no STS exists).
    """
    r = v % 6
    if r == 3:
        return bose_sts(v)
    if r == 1:
        return skolem_sts(v)
    raise ValueError(
        f"no Steiner triple system on {v} points (need v ≡ 1,3 mod 6)")
