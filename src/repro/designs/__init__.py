"""Combinatorial block designs for replicated declustering.

The paper's allocation strategy is *design-theoretic*: data buckets are
assigned to devices using the blocks of an ``(N, c, 1)`` balanced
incomplete block design, where ``N`` is the number of devices, ``c``
the replication factor, and the final ``1`` means every device pair
appears together in exactly (or at most) one design block.

This package builds those designs from scratch:

* :class:`~repro.designs.block_design.BlockDesign` -- immutable design
  value type,
* :mod:`~repro.designs.verify` -- pairwise-balance verification,
* :mod:`~repro.designs.steiner` -- Bose construction of Steiner triple
  systems (``N ≡ 3 (mod 6)``),
* :mod:`~repro.designs.difference` -- cyclic difference-family search
  (covers ``N ≡ 1 (mod 6)`` triples and small ``c = 4`` designs),
* :mod:`~repro.designs.rotations` -- rotation closure producing the
  ``N(N-1)/(c-1)`` ordered design blocks used for bucket placement,
* :mod:`~repro.designs.catalog` -- verified designs including the
  paper's ``(9,3,1)`` (Figure 2) and ``(13,3,1)``.
"""

from repro.designs.block_design import BlockDesign
from repro.designs.catalog import design_9_3_1, design_13_3_1, get_design
from repro.designs.rotations import rotate_block, rotation_closure
from repro.designs.verify import pair_coverage, verify_design

__all__ = [
    "BlockDesign",
    "design_9_3_1",
    "design_13_3_1",
    "get_design",
    "pair_coverage",
    "rotate_block",
    "rotation_closure",
    "verify_design",
]
