"""Verification of design properties.

The QoS guarantee ``S = (c-1)M^2 + cM`` (paper §II-B2) rests on the
*pairwise balance* of the allocation: every pair of devices co-occurs in
at most one design block, so any two buckets share at most one device.
These checks are used by the catalog constructors (fail-fast on a bad
construction) and by property-based tests.
"""

from __future__ import annotations

from itertools import combinations
from typing import Dict, FrozenSet, Tuple

from repro.designs.block_design import BlockDesign

__all__ = ["pair_coverage", "verify_design", "is_steiner"]


def pair_coverage(design: BlockDesign) -> Dict[FrozenSet[int], int]:
    """Count, for every point pair, how many blocks contain it."""
    counts: Dict[FrozenSet[int], int] = {}
    for blk in design.blocks:
        for a, b in combinations(sorted(blk), 2):
            key = frozenset((a, b))
            counts[key] = counts.get(key, 0) + 1
    return counts


def verify_design(design: BlockDesign, max_index: int = 1) -> None:
    """Check that no point pair appears in more than ``max_index`` blocks.

    Raises
    ------
    ValueError
        Naming the first offending pair, if the property fails.
    """
    for pair, count in pair_coverage(design).items():
        if count > max_index:
            a, b = sorted(pair)
            raise ValueError(
                f"pair ({a},{b}) appears in {count} blocks "
                f"(allowed {max_index}) in {design}")


def is_steiner(design: BlockDesign) -> bool:
    """True if *every* point pair appears in exactly one block.

    A design with this property is a Steiner system ``S(2, c, N)``; its
    block count is then necessarily ``N(N-1) / (c(c-1))``.
    """
    coverage = pair_coverage(design)
    n = design.n_points
    expected_pairs = n * (n - 1) // 2
    if len(coverage) != expected_pairs:
        return False
    return all(count == 1 for count in coverage.values())


def steiner_block_count(n_points: int, block_size: int) -> int:
    """Block count of a Steiner system ``S(2, block_size, n_points)``."""
    num = n_points * (n_points - 1)
    den = block_size * (block_size - 1)
    if num % den != 0:
        raise ValueError(
            f"no Steiner system S(2,{block_size},{n_points}) "
            f"(divisibility fails)")
    return num // den


__all__.append("steiner_block_count")
