"""Projective and affine planes over prime fields.

These extend the catalog beyond triple systems to larger replication
factors:

* the projective plane ``PG(2, q)`` is a ``(q^2+q+1, q+1, 1)`` design
  -- e.g. (7,3,1), (13,4,1), (21,5,1), (31,6,1);
* the affine plane ``AG(2, q)`` is a ``(q^2, q, 1)`` design -- e.g.
  (9,3,1), (25,5,1), (49,7,1).

Both come from coordinates over ``GF(q)``; this module implements the
prime case ``q = p`` (arithmetic mod p), which covers every array size
the experiments use.  Constructions are verified on first use.
"""

from __future__ import annotations

from functools import lru_cache
from typing import List, Tuple

from repro.designs.block_design import BlockDesign
from repro.designs.verify import verify_design

__all__ = ["projective_plane", "affine_plane", "is_prime"]


def is_prime(n: int) -> bool:
    """Trial-division primality (adequate for plane orders)."""
    if n < 2:
        return False
    if n < 4:
        return True
    if n % 2 == 0:
        return False
    f = 3
    while f * f <= n:
        if n % f == 0:
            return False
        f += 2
    return True


def _require_prime(q: int) -> None:
    if not is_prime(q):
        raise ValueError(
            f"plane order must be prime (got {q}); prime-power orders "
            f"are not implemented")


@lru_cache(maxsize=None)
def projective_plane(q: int) -> BlockDesign:
    """``PG(2, q)``: points = projective triples, lines = blocks.

    Points are equivalence classes of non-zero ``(x, y, z)`` over
    ``GF(q)`` under scaling; we normalise to representatives
    ``(1, y, z)``, ``(0, 1, z)``, ``(0, 0, 1)`` giving
    ``q^2 + q + 1`` points.  A line ``[a, b, c]`` contains the points
    with ``ax + by + cz = 0 (mod q)``; lines are in bijection with
    points (duality), each containing ``q + 1`` points.
    """
    _require_prime(q)
    reps: List[Tuple[int, int, int]] = []
    for y in range(q):
        for z in range(q):
            reps.append((1, y, z))
    for z in range(q):
        reps.append((0, 1, z))
    reps.append((0, 0, 1))
    index = {rep: i for i, rep in enumerate(reps)}

    blocks: List[Tuple[int, ...]] = []
    for a, b, c in reps:  # lines use the same representative set
        members = [index[(x, y, z)] for (x, y, z) in reps
                   if (a * x + b * y + c * z) % q == 0]
        blocks.append(tuple(members))
    design = BlockDesign(len(reps), tuple(blocks), name=f"PG(2,{q})")
    verify_design(design)
    if any(len(blk) != q + 1 for blk in blocks):  # pragma: no cover
        raise AssertionError("projective plane line size mismatch")
    return design


@lru_cache(maxsize=None)
def affine_plane(q: int) -> BlockDesign:
    """``AG(2, q)``: points = ``GF(q)^2``, blocks = affine lines.

    ``q^2`` points, ``q^2 + q`` lines of ``q`` points each; every point
    pair lies on exactly one line, so this is a ``(q^2, q, 1)`` design.
    Lines: ``y = mx + b`` for each slope ``m`` and intercept ``b``,
    plus the vertical lines ``x = a``.
    """
    _require_prime(q)

    def pt(x: int, y: int) -> int:
        return x * q + y

    blocks: List[Tuple[int, ...]] = []
    for m in range(q):
        for b in range(q):
            blocks.append(tuple(pt(x, (m * x + b) % q)
                                for x in range(q)))
    for a in range(q):
        blocks.append(tuple(pt(a, y) for y in range(q)))
    design = BlockDesign(q * q, tuple(blocks), name=f"AG(2,{q})")
    verify_design(design)
    return design
