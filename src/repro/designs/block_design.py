"""The :class:`BlockDesign` value type.

A design is a collection of *blocks* (ordered tuples of distinct device
indices) over the point set ``{0, .., n_points-1}``.  Block order and
the order of points inside a block are significant downstream: the
``j``-th point of a block is the device holding the ``j``-th copy of a
bucket, and rotations permute that copy order.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Tuple

__all__ = ["BlockDesign"]

Block = Tuple[int, ...]


@dataclass(frozen=True)
class BlockDesign:
    """An ``(n_points, block_size, index)`` block design.

    Parameters
    ----------
    n_points:
        Number of points (devices), labelled ``0 .. n_points-1``.
    blocks:
        Ordered tuple of blocks; each block an ordered tuple of
        ``block_size`` distinct points.

    Notes
    -----
    Construction validates structural invariants (sizes, ranges,
    distinctness).  The *pairwise balance* property (every point pair in
    at most one block -- ``lambda = 1``) is checked separately by
    :func:`repro.designs.verify.verify_design` because some useful
    allocation baselines are expressed as designs that deliberately
    violate it.
    """

    n_points: int
    blocks: Tuple[Block, ...]
    name: str = field(default="", compare=False)

    def __post_init__(self):
        if self.n_points < 1:
            raise ValueError(f"n_points must be >= 1, got {self.n_points}")
        if not self.blocks:
            raise ValueError("a design needs at least one block")
        size = len(self.blocks[0])
        norm = []
        for blk in self.blocks:
            blk = tuple(int(p) for p in blk)
            if len(blk) != size:
                raise ValueError(
                    f"inconsistent block sizes: {len(blk)} vs {size}")
            if len(set(blk)) != len(blk):
                raise ValueError(f"block {blk} repeats a point")
            for p in blk:
                if not 0 <= p < self.n_points:
                    raise ValueError(
                        f"point {p} out of range [0, {self.n_points})")
            norm.append(blk)
        object.__setattr__(self, "blocks", tuple(norm))

    # -- basic quantities --------------------------------------------------
    @property
    def block_size(self) -> int:
        """Points per block (the replication factor ``c``)."""
        return len(self.blocks[0])

    @property
    def n_blocks(self) -> int:
        return len(self.blocks)

    @property
    def replication(self) -> int:
        """Alias for :attr:`block_size` in storage terminology."""
        return self.block_size

    def points_of(self, block_index: int) -> Block:
        """Ordered points of the block at ``block_index``."""
        return self.blocks[block_index]

    def blocks_through(self, point: int) -> Tuple[int, ...]:
        """Indices of all blocks containing ``point``."""
        return tuple(i for i, blk in enumerate(self.blocks) if point in blk)

    def replica_count(self, point: int) -> int:
        """How many blocks contain ``point`` (the point's degree)."""
        return sum(1 for blk in self.blocks if point in blk)

    def as_sets(self) -> Tuple[frozenset, ...]:
        """Blocks as frozensets (order-insensitive view)."""
        return tuple(frozenset(blk) for blk in self.blocks)

    def __iter__(self) -> Iterable[Block]:
        return iter(self.blocks)

    def __len__(self) -> int:
        return len(self.blocks)

    def __str__(self) -> str:
        label = self.name or f"({self.n_points},{self.block_size},?)"
        return f"BlockDesign {label} with {self.n_blocks} blocks"
