"""Cyclic difference families and their development into designs.

A ``(v, k, 1)`` *difference family* is a set of base blocks in ``Z_v``
whose pairwise differences cover every non-zero residue exactly once.
Developing each base block through all ``v`` translations yields a
cyclic ``(v, k, 1)`` design.  This gives, e.g., the paper's
``(13, 3, 1)`` design from the classical base blocks
``{0,1,4}, {0,2,7}`` and the Fano plane ``(7,3,1)`` from ``{0,1,3}``.

For small parameters not in the table below, :func:`find_difference_family`
performs a backtracking search.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.designs.block_design import BlockDesign
from repro.designs.verify import verify_design

__all__ = [
    "develop",
    "find_difference_family",
    "cyclic_design",
    "KNOWN_FAMILIES",
]

# Classical (v, k, 1) difference families.  Each entry maps
# (v, k) -> tuple of base blocks.  The k=3 entries are the standard
# Netto-style families; (13, 4) is the Singer difference set of the
# projective plane PG(2, 3).
KNOWN_FAMILIES: Dict[Tuple[int, int], Tuple[Tuple[int, ...], ...]] = {
    (7, 3): ((0, 1, 3),),
    (13, 3): ((0, 1, 4), (0, 2, 7)),
    (19, 3): ((0, 1, 5), (0, 2, 8), (0, 3, 10)),
    (13, 4): ((0, 1, 3, 9),),
    (21, 5): ((0, 1, 6, 8, 18),),
}


def _differences(block: Sequence[int], v: int) -> List[int]:
    """All ordered non-zero differences of a block modulo ``v``."""
    out = []
    for i, a in enumerate(block):
        for j, b in enumerate(block):
            if i != j:
                out.append((a - b) % v)
    return out


def family_is_valid(base_blocks: Sequence[Sequence[int]], v: int) -> bool:
    """Check that ``base_blocks`` form a (v, k, 1) difference family."""
    seen: set[int] = set()
    for blk in base_blocks:
        for d in _differences(blk, v):
            if d == 0 or d in seen:
                return False
            seen.add(d)
    return len(seen) == v - 1


def develop(base_blocks: Sequence[Sequence[int]], v: int,
            name: str = "") -> BlockDesign:
    """Develop base blocks through ``Z_v`` into a cyclic design.

    Each base block ``B`` contributes the blocks ``B + t (mod v)`` for
    every ``t in Z_v``.
    """
    blocks: List[Tuple[int, ...]] = []
    for base in base_blocks:
        for t in range(v):
            blocks.append(tuple((x + t) % v for x in base))
    k = len(base_blocks[0])
    return BlockDesign(v, tuple(blocks), name=name or f"cyclic({v},{k},1)")


def find_difference_family(v: int, k: int) -> Optional[
        Tuple[Tuple[int, ...], ...]]:
    """Backtracking search for a ``(v, k, 1)`` difference family.

    Returns the family (base blocks each starting with 0) or ``None``
    if the search space is exhausted.  Intended for small parameters;
    the known classical families are returned without search.
    """
    if (v, k) in KNOWN_FAMILIES:
        return KNOWN_FAMILIES[(v, k)]
    pair_diffs = k * (k - 1)
    if (v - 1) % pair_diffs != 0:
        return None
    n_blocks = (v - 1) // pair_diffs
    used = [False] * v  # used[d] for non-zero differences
    blocks: List[Tuple[int, ...]] = []

    def block_diffs(block: Sequence[int]) -> Optional[List[int]]:
        diffs = _differences(block, v)
        if len(set(diffs)) != len(diffs):
            return None
        if any(used[d] for d in diffs):
            return None
        return diffs

    def search(min_start: int) -> bool:
        if len(blocks) == n_blocks:
            return True

        def extend(partial: List[int], lo: int) -> bool:
            if len(partial) == k:
                diffs = block_diffs(partial)
                if diffs is None:
                    return False
                for d in diffs:
                    used[d] = True
                blocks.append(tuple(partial))
                if search(partial[1]):
                    return True
                blocks.pop()
                for d in diffs:
                    used[d] = False
                return False
            for x in range(lo, v):
                # prune: the difference x - previous must be unused
                partial.append(x)
                if extend(partial, x + 1):
                    return True
                partial.pop()
            return False

        return extend([0], min_start)

    if search(1):
        return tuple(blocks)
    return None


def cyclic_design(v: int, k: int) -> BlockDesign:
    """Build a cyclic ``(v, k, 1)`` design via a difference family.

    Raises
    ------
    ValueError
        If no family is known or found.
    """
    family = find_difference_family(v, k)
    if family is None:
        raise ValueError(f"no ({v},{k},1) difference family found")
    design = develop(family, v, name=f"({v},{k},1)-cyclic")
    verify_design(design)
    return design
