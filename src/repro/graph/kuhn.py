"""Lightweight capacitated bipartite matching (Kuhn augmenting paths).

The retrieval feasibility question -- *can these requests be assigned
to replica devices with at most M per device?* -- is asked millions of
times by the ``P_k`` sampler (Figure 4) and the admission machinery.
Building a :class:`~repro.graph.flownet.FlowNetwork` per query dominates
the profile, so this module answers it directly on the candidate lists:
a greedy least-loaded seed followed by Kuhn-style augmenting searches
for the leftovers.  It computes exactly the same answer as the Dinic
formulation (the test-suite cross-checks them on random instances) at a
fraction of the constant cost.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

__all__ = ["capacitated_assignment", "capacitated_feasible"]


def capacitated_assignment(candidates: Sequence[Sequence[int]],
                           n_bins: int,
                           capacity: int,
                           ) -> Optional[List[int]]:
    """Assign items to candidate bins with at most ``capacity`` per bin.

    Returns the assignment list or ``None`` when infeasible.  Exact:
    augmenting paths make the greedy seed lossless.
    """
    if capacity < 0:
        raise ValueError(f"capacity must be >= 0, got {capacity}")
    n_items = len(candidates)
    if n_items == 0:
        return []
    if capacity == 0:
        return None

    loads = [0] * n_bins
    assignment: List[int] = [-1] * n_items
    items_in_bin: List[List[int]] = [[] for _ in range(n_bins)]
    pending: List[int] = []

    # Greedy seed: least-loaded candidate bin (fast path resolves the
    # overwhelming majority of items).
    for i, cands in enumerate(candidates):
        best, best_load = -1, capacity
        for b in cands:
            if loads[b] < best_load:
                best, best_load = b, loads[b]
        if best >= 0:
            assignment[i] = best
            loads[best] += 1
            items_in_bin[best].append(i)
        else:
            pending.append(i)

    if not pending:
        return assignment

    # Augment each leftover item: find a chain item -> bin -> resident
    # item -> other bin ... ending at a bin with spare capacity.
    visited_bin = [0] * n_bins
    stamp = 0

    def augment(i: int) -> bool:
        for b in candidates[i]:
            if visited_bin[b] == stamp:
                continue
            visited_bin[b] = stamp
            if loads[b] < capacity:
                _place(i, b)
                return True
            for resident in list(items_in_bin[b]):
                if augment_from(resident):
                    # resident moved away; slot freed
                    _place(i, b)
                    return True
        return False

    def augment_from(i: int) -> bool:
        current = assignment[i]
        for b in candidates[i]:
            if b == current or visited_bin[b] == stamp:
                continue
            visited_bin[b] = stamp
            if loads[b] < capacity:
                _move(i, b)
                return True
            for resident in list(items_in_bin[b]):
                if augment_from(resident):
                    _move(i, b)
                    return True
        return False

    def _place(i: int, b: int) -> None:
        assignment[i] = b
        loads[b] += 1
        items_in_bin[b].append(i)

    def _move(i: int, b: int) -> None:
        old = assignment[i]
        items_in_bin[old].remove(i)
        loads[old] -= 1
        _place(i, b)

    for i in pending:
        stamp += 1
        if not augment(i):
            return None
    return assignment


def capacitated_feasible(candidates: Sequence[Sequence[int]],
                         n_bins: int, capacity: int) -> bool:
    """Feasibility-only variant of :func:`capacitated_assignment`."""
    return capacitated_assignment(candidates, n_bins, capacity) is not None
