"""Dinic's maximum-flow algorithm.

Dinic's algorithm alternates breadth-first construction of the level
graph with depth-first blocking flows.  On the unit-capacity bipartite
networks produced by the retrieval scheduler it runs in
``O(E * sqrt(V))``, comfortably inside the paper's ``O(b^3)`` bound for
a request batch of ``b`` blocks.
"""

from __future__ import annotations

from collections import deque
from typing import List

from repro.check import sanitizers
from repro.graph.flownet import FlowNetwork

__all__ = ["max_flow"]

_INF = float("inf")


def _bfs_levels(net: FlowNetwork, source: int, sink: int,
                levels: List[int]) -> bool:
    """Build the BFS level graph; return True if the sink is reachable."""
    for i in range(len(levels)):
        levels[i] = -1
    levels[source] = 0
    q = deque([source])
    while q:
        u = q.popleft()
        for _, v, cap in net.edges_from(u):
            if cap > 0 and levels[v] < 0:
                levels[v] = levels[u] + 1
                q.append(v)
    return levels[sink] >= 0


def _dfs_block(net: FlowNetwork, source: int, sink: int, pushed: float,
               levels: List[int], iters: List[int]) -> float:
    """Send up to ``pushed`` units from ``source`` toward the sink.

    Explicit-stack path walk (the recursive formulation overflows
    Python's recursion limit on long level graphs -- e.g. a chain of
    thousands of nodes): advance along the current admissible edge of
    each node, retreat past dead ends, and push the path's bottleneck
    when the sink is reached.  Edge selection order is exactly the
    recursive one -- ``iters[u]`` advances only when edge ``u -> v``
    proved useless (dead end behind it), never on a successful push.
    """
    all_heads = net._head
    to = net._to
    cap = net._cap
    path: List[int] = []
    u = source
    while True:
        if u == sink:
            sent = pushed
            for idx in path:
                if cap[idx] < sent:
                    sent = cap[idx]
            for idx in path:
                cap[idx] -= sent
                cap[idx ^ 1] += sent
            return sent
        head = all_heads[u]
        advanced = False
        while iters[u] < len(head):
            idx = head[iters[u]]
            v = to[idx]
            if cap[idx] > 0 and levels[v] == levels[u] + 1:
                path.append(idx)
                u = v
                advanced = True
                break
            iters[u] += 1
        if advanced:
            continue
        if u == source:
            return 0
        # Dead end: retreat and retire the edge that led here.
        idx = path.pop()
        u = to[idx ^ 1]
        iters[u] += 1


def max_flow(net: FlowNetwork, source: int, sink: int,
             limit: float = _INF) -> int:
    """Compute the maximum ``source -> sink`` flow in ``net``.

    Parameters
    ----------
    net:
        The network; its residual capacities are mutated in place (use
        :meth:`FlowNetwork.reset_flow` to solve again from scratch).
    source, sink:
        Terminal nodes; must differ.
    limit:
        Optional early-exit bound: stop once this much flow is routed.
        Useful for pure feasibility questions.

    Returns
    -------
    int
        The value of the flow found (== max flow unless ``limit`` hit).
    """
    if source == sink:
        raise ValueError("source and sink must differ")
    net._check_node(source)
    net._check_node(sink)
    levels = [-1] * net.n_nodes
    total = 0
    while total < limit and _bfs_levels(net, source, sink, levels):
        iters = [0] * net.n_nodes
        while total < limit:
            sent = _dfs_block(net, source, sink, limit - total, levels, iters)
            if sent <= 0:
                break
            total += sent
    if sanitizers.ACTIVE:
        sanitizers.check_flow_conservation(net, source, sink)
    return int(total)
