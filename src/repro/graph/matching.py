"""Bipartite assignment with per-bin capacity, built on max-flow.

This is the abstract problem underlying optimal retrieval of replicated
blocks (paper §III-C): each *item* (block request) may be served by any
of its *bins* (the devices holding a replica) and each bin can serve at
most ``capacity`` items per access round.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set

from repro.graph.dinic import max_flow
from repro.graph.flownet import FlowNetwork

__all__ = ["bounded_degree_assignment"]


def bounded_degree_assignment(
    candidates: Sequence[Sequence[int]],
    n_bins: int,
    capacity: int,
) -> Optional[List[int]]:
    """Assign each item to one of its candidate bins, bins holding <= capacity.

    Parameters
    ----------
    candidates:
        ``candidates[i]`` is the list of bin indices item ``i`` may go to.
        Duplicate bin entries are tolerated and deduplicated.
    n_bins:
        Total number of bins (bins are ``0 .. n_bins-1``).
    capacity:
        Maximum number of items per bin.

    Returns
    -------
    list[int] | None
        ``assignment[i]`` = chosen bin for item ``i``, or ``None`` if no
        feasible assignment exists.
    """
    n_items = len(candidates)
    if capacity < 0:
        raise ValueError(f"capacity must be >= 0, got {capacity}")
    if n_items == 0:
        return []
    if capacity == 0:
        return None

    # Node layout: 0 = source, 1..n_items = items,
    # n_items+1 .. n_items+n_bins = bins, last = sink.
    source = 0
    sink = 1 + n_items + n_bins
    net = FlowNetwork(sink + 1)
    item_edges: List[List[int]] = []
    item_bins: List[List[int]] = []
    for i, cands in enumerate(candidates):
        seen: Set[int] = set()
        bins: List[int] = []
        for b in cands:
            if not 0 <= b < n_bins:
                raise IndexError(f"bin {b} out of range [0, {n_bins})")
            if b not in seen:
                seen.add(b)
                bins.append(b)
        if not bins:
            return None
        net.add_edge(source, 1 + i, 1)
        edges = [net.add_edge(1 + i, 1 + n_items + b, 1) for b in bins]
        item_edges.append(edges)
        item_bins.append(bins)
    for b in range(n_bins):
        net.add_edge(1 + n_items + b, sink, capacity)

    if max_flow(net, source, sink) < n_items:
        return None

    assignment: List[int] = [-1] * n_items
    for i in range(n_items):
        for edge, b in zip(item_edges[i], item_bins[i]):
            if net.flow_on(edge) > 0:
                assignment[i] = b
                break
        if assignment[i] < 0:  # pragma: no cover - flow guarantees this
            raise RuntimeError(f"item {i} unassigned despite full flow")
    return assignment


def min_capacity_assignment(
    candidates: Sequence[Sequence[int]],
    n_bins: int,
) -> tuple[int, List[int]]:
    """Find the smallest per-bin capacity admitting a full assignment.

    Returns ``(capacity, assignment)``.  The search is linear upward
    from the trivial lower bound ``ceil(n_items / n_bins)``; the design
    guarantees of this project keep the answer within a step or two of
    the bound, so linear beats binary search in practice.
    """
    n_items = len(candidates)
    if n_items == 0:
        return 0, []
    low = -(-n_items // n_bins)  # ceil division
    cap = low
    while True:
        assignment = bounded_degree_assignment(candidates, n_bins, cap)
        if assignment is not None:
            return cap, assignment
        cap += 1
        if cap > n_items:  # pragma: no cover - always feasible by then
            raise RuntimeError("no feasible assignment found")


__all__.append("min_capacity_assignment")
