"""Flow networks and maximum-flow algorithms.

The optimal retrieval schedule of replicated data (paper §III-C,
following Altiparmak & Tosun's max-flow formulation) reduces to a
bipartite feasibility question answered by maximum flow.  This package
provides the from-scratch substrate:

* :class:`~repro.graph.flownet.FlowNetwork` -- a compact adjacency-list
  flow network with residual edges,
* :func:`~repro.graph.dinic.max_flow` -- Dinic's algorithm,
* :mod:`~repro.graph.matching` -- bipartite assignment helpers built on
  top of the flow solver,
* :mod:`~repro.graph.kernels` -- vectorized bitset feasibility,
  warm-started incremental matching and memoized schedules for the
  retrieval hot path (exact, cross-checked against the solvers above).
"""

from repro.graph import kernels
from repro.graph.dinic import max_flow
from repro.graph.flownet import FlowNetwork
from repro.graph.matching import bounded_degree_assignment

__all__ = ["FlowNetwork", "kernels", "max_flow",
           "bounded_degree_assignment"]
