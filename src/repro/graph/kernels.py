"""High-performance retrieval kernels: bitsets, Hall checks, memoization.

The framework stands on one primitive asked millions of times: *can
this batch of replicated requests be served in ``M`` accesses?*  The
generic answer is a bipartite matching per query
(:mod:`repro.graph.kuhn`); this module exploits the problem's
structure -- tiny device counts, heavy Zipf repetition, sliding
batches -- to answer it in bulk and from caches instead:

* **bitset encoding** -- for ``N <= 64`` devices a request's candidate
  set is one machine int (:func:`mask_of`), so batches become small
  integer arrays;
* **vectorized Hall feasibility** -- by the capacitated Hall condition
  a batch is servable in ``M`` accesses iff every device subset ``T``
  holds at most ``M * |T|`` of the requests confined to it.
  :func:`hall_feasible_many` evaluates that for *thousands of batches
  at once* with a subset-sum (zeta) transform over the ``2^N`` device
  subsets (``N <= 16``), and :func:`batch_feasible` screens with a
  vectorized least-loaded greedy first so the transform only sees the
  few undecided batches.  Exact -- cross-checked against Kuhn and
  Dinic by the property tests;
* **warm-started matching** -- :class:`WarmStartMatcher` keeps a
  maximum matching alive across request arrivals/departures and
  repairs it with augmenting paths instead of re-solving, the right
  shape for admission control and sliding-window retrieval;
* **memoization** -- Zipf popularity makes repeated batches the common
  case, so feasibility answers and schedules are LRU-cached
  (:data:`FEASIBLE_CACHE` on the *canonical multiset* of candidate
  masks -- booleans are order-invariant -- and :data:`SCHEDULE_CACHE`
  on the *exact ordered* candidate tuple, because the legacy matcher's
  assignment depends on request order and byte-identity demands the
  verbatim schedule);
* **CSR Dinic fallback** -- :func:`csr_capacitated_assignment` solves
  arrays too wide for bitsets (``N > 64``) on flat CSR arrays.

Everything here is **exact** and the wired call paths are
byte-identical to the legacy ones -- enforced by the ``kernels``
determinism probe (``python -m repro.check --probe kernels``).  The
module-level :data:`ENABLED` switch (and the :func:`disabled` context
manager) selects between the kernel and legacy paths at the call
sites; cache hit/miss statistics are always counted
(:func:`cache_stats`) and additionally exported as ``repro.obs``
counters while observability is active.
"""

from __future__ import annotations

from collections import OrderedDict
from contextlib import contextmanager
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro import obs

__all__ = [
    "ENABLED", "disabled",
    "mask_of", "masks_of", "block_mask_array", "batch_mask_array",
    "exclusion_mask", "apply_exclusion",
    "hall_feasible_many", "batch_feasible", "feasible",
    "feasible_cached", "minimum_accesses_many",
    "WarmStartMatcher", "csr_capacitated_assignment",
    "LruCache", "FEASIBLE_CACHE", "SCHEDULE_CACHE", "SAMPLER_CACHE",
    "MISS", "cache_stats", "clear_caches",
]

#: Master switch for the kernel call paths.  The legacy solvers remain
#: the reference implementation; the ``kernels`` determinism probe
#: runs every wired experiment both ways and demands byte-identity.
ENABLED: bool = True

#: Device-count ceiling for the bitset encoding (one uint64 per set).
BITSET_MAX_DEVICES = 64

#: Device-count ceiling for the dense 2^N Hall transform.
HALL_MAX_DEVICES = 16


@contextmanager
def disabled() -> Iterator[None]:
    """Run a block on the legacy call paths (kernels off)."""
    global ENABLED
    previous = ENABLED
    ENABLED = False
    try:
        yield
    finally:
        ENABLED = previous


# ---------------------------------------------------------------------------
# bitset encoding
# ---------------------------------------------------------------------------

def mask_of(candidates: Sequence[int], n_devices: int) -> int:
    """Candidate device set as one machine int (bit ``d`` = device d)."""
    mask = 0
    for d in candidates:
        mask |= 1 << d
    if mask >> n_devices:
        raise ValueError(
            f"candidate device out of range for n_devices={n_devices}")
    return mask


def masks_of(candidates: Sequence[Sequence[int]],
             n_devices: int) -> List[int]:
    """Bitset encodings of one batch's candidate lists."""
    return [mask_of(c, n_devices) for c in candidates]


def block_mask_array(blocks: Sequence[Sequence[int]],
                     n_devices: int) -> np.ndarray:
    """Per-block candidate masks as a uint64 lookup array.

    The sampler indexes this with its pick matrix to turn Monte-Carlo
    trials into mask matrices without touching Python per trial.
    """
    return np.array([mask_of(b, n_devices) for b in blocks],
                    dtype=np.uint64)


def batch_mask_array(batches: Sequence[Sequence[Sequence[int]]],
                     n_devices: int) -> np.ndarray:
    """Mask matrix (one row per batch) for equal-length batches."""
    return np.array([masks_of(b, n_devices) for b in batches],
                    dtype=np.uint64)


def exclusion_mask(excluded: Sequence[int], n_devices: int) -> int:
    """Bitset of devices to mask *out* of candidate sets.

    Failure-aware retrieval encodes the dead/degraded device set once
    (:mod:`repro.faults`) and strips it from every candidate mask with
    one AND-NOT (:func:`apply_exclusion`) instead of filtering Python
    lists per request.
    """
    return mask_of(excluded, n_devices)


def apply_exclusion(masks, excluded_mask: int):
    """Candidate masks with the excluded devices removed.

    Accepts a single int mask or a uint64 array of masks; returns the
    same shape.  A result of 0 means the request lost every replica
    (data unavailable at this failure level).
    """
    if isinstance(masks, (int, np.integer)):
        return int(masks) & ~int(excluded_mask)
    arr = np.asarray(masks, dtype=np.uint64)
    return arr & np.uint64(~int(excluded_mask) & (2**64 - 1))


def _popcounts(n_devices: int) -> np.ndarray:
    """``popcount(S)`` for every subset ``S`` of ``n_devices`` bits."""
    table = _POPCOUNT_TABLES.get(n_devices)
    if table is None:
        table = np.zeros(1, dtype=np.int64)
        for _ in range(n_devices):
            table = np.concatenate([table, table + 1])
        _POPCOUNT_TABLES[n_devices] = table
    return table


_POPCOUNT_TABLES: Dict[int, np.ndarray] = {}


# ---------------------------------------------------------------------------
# vectorized Hall feasibility
# ---------------------------------------------------------------------------

def hall_feasible_many(masks: np.ndarray, n_devices: int,
                       capacity: int) -> np.ndarray:
    """Exact feasibility of many batches via the capacitated Hall test.

    ``masks`` is ``(T, k)`` -- row ``t`` holds batch ``t``'s candidate
    masks.  A batch fits in ``capacity`` accesses iff for every device
    subset ``S``, the number of its requests whose candidates are
    confined to ``S`` is at most ``capacity * |S|`` (Hall's condition
    on the capacity-expanded bipartite graph; necessity is counting,
    sufficiency is Hall's theorem).  ``counts[S] = #{i : mask_i
    subseteq S}`` for all ``S`` at once is one subset-sum (zeta)
    transform of the mask histogram -- ``O(T * 2^N * N)`` total, no
    per-batch Python.

    Requires ``n_devices <= HALL_MAX_DEVICES``; empty candidate sets
    (mask 0) and ``capacity == 0`` fall out of the inequality
    naturally (``S`` = empty set / full set).
    """
    if n_devices > HALL_MAX_DEVICES:
        raise ValueError(
            f"dense Hall transform needs n_devices <= "
            f"{HALL_MAX_DEVICES}, got {n_devices}")
    masks = np.asarray(masks)
    n_trials, k = masks.shape
    if k == 0:
        return np.ones(n_trials, dtype=bool)
    size = 1 << n_devices
    limit = (capacity * _popcounts(n_devices)).astype(np.float32)
    vocab, inverse = np.unique(masks, return_inverse=True)
    n_vocab = int(vocab.size)
    if n_vocab <= 4 * max(k, n_devices):
        # Batches draw from a small mask vocabulary (design blocks
        # under Zipf popularity), so express the subset counting as a
        # matrix product: per-batch vocabulary histograms times the
        # subset-containment matrix.  BLAS does the 2^N work; float32
        # is exact here (counts never approach 2^24).
        complement = np.arange(size, dtype=np.uint64) ^ np.uint64(size - 1)
        contain = (vocab[None, :] & complement[:, None]) == 0
        flat = inverse.reshape(n_trials, k) \
            + (np.arange(n_trials, dtype=np.int64)[:, None] * n_vocab)
        hist = np.bincount(
            flat.ravel(), minlength=n_trials * n_vocab
        ).reshape(n_trials, n_vocab).astype(np.float32)
        counts = hist @ contain.astype(np.float32).T
        return (counts <= limit).all(axis=1)
    # Wide vocabulary: subset-sum (zeta) transform per batch, chunked
    # so the counts plane stays cache/memory friendly.
    out = np.empty(n_trials, dtype=bool)
    chunk = max(1, 4_000_000 // size)
    flat_masks = masks.astype(np.int64)
    limit = limit.astype(np.int64)
    for lo in range(0, n_trials, chunk):
        hi = min(n_trials, lo + chunk)
        rows = hi - lo
        offsets = np.arange(rows, dtype=np.int64)[:, None] * size
        counts = np.bincount(
            (flat_masks[lo:hi] + offsets).ravel(),
            minlength=rows * size).reshape(rows, size)
        # Zeta transform: counts[S] <- sum over subsets of S.
        for bit in range(n_devices):
            width = 1 << bit
            view = counts.reshape(rows, size >> (bit + 1), 2, width)
            view[:, :, 1, :] += view[:, :, 0, :]
        out[lo:hi] = (counts <= limit).all(axis=1)
    return out


def batch_feasible(masks: np.ndarray, n_devices: int,
                   capacity: int) -> np.ndarray:
    """Exact per-row feasibility for a ``(T, k)`` mask matrix.

    Two vectorized phases: a least-loaded greedy pass whose success is
    a feasibility *certificate* (any valid assignment proves the
    batch), then the exact Hall transform on the rows the greedy could
    not place (greedy failure proves nothing).  For
    ``n_devices > HALL_MAX_DEVICES`` the undecided leftovers fall back
    to the reference matcher row by row -- still exact, and rare.
    """
    masks = np.asarray(masks, dtype=np.uint64)
    if masks.ndim != 2:
        raise ValueError("masks must be 2-D (trials x batch)")
    n_trials, k = masks.shape
    if n_devices > BITSET_MAX_DEVICES:
        raise ValueError(
            f"bitset kernels need n_devices <= {BITSET_MAX_DEVICES}")
    if k == 0:
        return np.ones(n_trials, dtype=bool)
    if capacity <= 0:
        return np.zeros(n_trials, dtype=bool)
    bits = ((masks[:, :, None]
             >> np.arange(n_devices, dtype=np.uint64)[None, None, :])
            & np.uint64(1)).astype(bool)            # (T, k, N)
    hard_fail = ~bits.any(axis=2).all(axis=1)       # any empty mask
    loads = np.zeros((n_trials, n_devices), dtype=np.int32)
    rows = np.arange(n_trials)
    big = np.int32(np.iinfo(np.int32).max)
    for j in range(k):
        cand_loads = np.where(bits[:, j, :], loads, big)
        choice = cand_loads.argmin(axis=1)
        loads[rows, choice] += 1
    feasible = (loads.max(axis=1) <= capacity) & ~hard_fail
    undecided = ~feasible & ~hard_fail
    idx = np.nonzero(undecided)[0]
    if idx.size:
        if n_devices <= HALL_MAX_DEVICES:
            feasible[idx] = hall_feasible_many(masks[idx], n_devices,
                                               capacity)
        else:
            from repro.graph.kuhn import capacitated_feasible

            for t in idx:
                cands = [_bits_list(int(m)) for m in masks[t]]
                feasible[t] = capacitated_feasible(cands, n_devices,
                                                   capacity)
    return feasible


def _bits_list(mask: int) -> List[int]:
    """Set bits of ``mask`` in ascending order."""
    out = []
    while mask:
        low = mask & -mask
        out.append(low.bit_length() - 1)
        mask ^= low
    return out


def _greedy_certificate(masks: Sequence[int], n_devices: int,
                        capacity: int) -> bool:
    """Scalar least-loaded greedy; True is a proof of feasibility."""
    loads = [0] * n_devices
    for mask in masks:
        best, best_load = -1, capacity
        mm = mask
        while mm:
            low = mm & -mm
            d = low.bit_length() - 1
            if loads[d] < best_load:
                best, best_load = d, loads[d]
            mm ^= low
        if best < 0:
            return False
        loads[best] += 1
    return True


def feasible(candidates: Sequence[Sequence[int]], n_devices: int,
             capacity: int) -> bool:
    """Exact single-batch feasibility on the kernel path.

    Greedy bitset certificate first; failures escalate to the dense
    Hall test (``N <= 16``), the reference matcher (``N <= 64``) or
    the CSR Dinic solver (wider arrays).  Always exact.
    """
    if not candidates:
        return True
    if capacity <= 0:
        return False
    if n_devices <= BITSET_MAX_DEVICES:
        masks = masks_of(candidates, n_devices)
        if any(m == 0 for m in masks):
            return False
        if _greedy_certificate(masks, n_devices, capacity):
            return True
        if n_devices <= HALL_MAX_DEVICES:
            arr = np.array(masks, dtype=np.uint64)[None, :]
            return bool(hall_feasible_many(arr, n_devices, capacity)[0])
        from repro.graph.kuhn import capacitated_feasible

        return capacitated_feasible(candidates, n_devices, capacity)
    return csr_capacitated_assignment(candidates, n_devices,
                                      capacity) is not None


def minimum_accesses_many(masks: np.ndarray,
                          n_devices: int) -> np.ndarray:
    """Optimal access count per batch for a ``(T, k)`` mask matrix.

    Escalates the access level from ``ceil(k / N)`` upward, testing
    all still-unresolved batches in one vectorized
    :func:`batch_feasible` call per level -- the bulk twin of
    :func:`repro.retrieval.maxflow.maxflow_retrieval`'s search.
    """
    from repro.retrieval.schedule import optimal_accesses

    masks = np.asarray(masks, dtype=np.uint64)
    n_trials, k = masks.shape
    result = np.zeros(n_trials, dtype=np.int64)
    if k == 0:
        return result
    unresolved = np.ones(n_trials, dtype=bool)
    level = optimal_accesses(k, n_devices)
    while unresolved.any():
        if level > k:
            raise RuntimeError(
                "retrieval search failed to terminate "
                "(empty candidate set in a batch?)")
        idx = np.nonzero(unresolved)[0]
        ok = batch_feasible(masks[idx], n_devices, level)
        done = idx[ok]
        result[done] = level
        unresolved[done] = False
        level += 1
    return result


# ---------------------------------------------------------------------------
# memoization
# ---------------------------------------------------------------------------

#: Sentinel distinguishing "not cached" from cached falsy values.
MISS = object()


class LruCache:
    """A small LRU with hit/miss counters and an ``repro.obs`` feed.

    Retrieval keys repeat heavily under Zipf popularity, so even a
    modest cache converts most schedule computations into dict hits.
    Statistics are always counted (the bench tooling reads them); when
    observability is active every lookup also lands on a counter pair
    ``kernels.<name>.{hit,miss}`` in the session's kernel section.
    """

    def __init__(self, name: str, maxsize: int):
        if maxsize < 1:
            raise ValueError("maxsize must be >= 1")
        self.name = name
        self.maxsize = maxsize
        self.hits = 0
        self.misses = 0
        self._data: "OrderedDict[object, object]" = OrderedDict()

    def __len__(self) -> int:
        return len(self._data)

    def get(self, key: object) -> object:
        """Cached value or :data:`MISS`; counts the lookup either way."""
        data = self._data
        value = data.get(key, MISS)
        if value is MISS:
            self.misses += 1
            if obs.ACTIVE:
                obs.SESSION.on_kernel_cache(self.name, False)
            return MISS
        data.move_to_end(key)
        self.hits += 1
        if obs.ACTIVE:
            obs.SESSION.on_kernel_cache(self.name, True)
        return value

    def put(self, key: object, value: object) -> None:
        data = self._data
        data[key] = value
        data.move_to_end(key)
        if len(data) > self.maxsize:
            data.popitem(last=False)

    def clear(self) -> None:
        """Drop entries *and* counters (cold-start determinism)."""
        self._data.clear()
        self.hits = 0
        self.misses = 0

    def stats(self) -> Dict[str, int]:
        return {"size": len(self._data), "maxsize": self.maxsize,
                "hits": self.hits, "misses": self.misses}


#: Feasibility booleans, keyed on the canonical (sorted) mask multiset
#: -- feasibility is order-invariant, so canonicalization maximises
#: hits.
FEASIBLE_CACHE = LruCache("feasible", maxsize=1 << 16)

#: Verbatim legacy schedules, keyed on the *exact ordered* candidate
#: tuple.  The greedy matcher's device choice depends on request
#: order, so a canonical key here would silently swap byte-identical
#: outputs for merely equivalent ones.
SCHEDULE_CACHE = LruCache("schedule", maxsize=1 << 15)

#: Sampled P_k probabilities, keyed on (blocks, trials, seed, k); the
#: adaptive-epsilon controller and the epsilon sweeps rebuild the same
#: table many times per run.
SAMPLER_CACHE = LruCache("sampler", maxsize=1 << 12)

_ALL_CACHES = (FEASIBLE_CACHE, SCHEDULE_CACHE, SAMPLER_CACHE)


def clear_caches() -> None:
    """Reset every kernel cache (entries and counters).

    ``repro.obs.enable`` calls this so instrumented sessions always
    start cold -- otherwise cache warmth from earlier work would make
    per-session counter payloads depend on history and break the
    double-run determinism probes.
    """
    for cache in _ALL_CACHES:
        cache.clear()


def cache_stats() -> Dict[str, Dict[str, int]]:
    """Hit/miss snapshot of every kernel cache (bench tooling)."""
    return {cache.name: cache.stats() for cache in _ALL_CACHES}


def feasible_key(candidates: Sequence[Sequence[int]], n_devices: int,
                 capacity: int) -> Tuple:
    """Canonical multiset key for feasibility memoization."""
    return (n_devices, capacity,
            tuple(sorted(mask_of(c, n_devices) for c in candidates)))


def schedule_key(candidates: Sequence[Sequence[int]],
                 n_devices: int, tag: str) -> Tuple:
    """Exact ordered key for schedule memoization."""
    return (tag, n_devices, tuple(tuple(c) for c in candidates))


def feasible_cached(candidates: Sequence[Sequence[int]],
                    n_devices: int, capacity: int) -> bool:
    """Memoized :func:`feasible` (canonical-multiset key)."""
    key = feasible_key(candidates, n_devices, capacity)
    value = FEASIBLE_CACHE.get(key)
    if value is not MISS:
        return bool(value)
    answer = feasible(candidates, n_devices, capacity)
    FEASIBLE_CACHE.put(key, answer)
    return answer


# ---------------------------------------------------------------------------
# warm-started incremental matching
# ---------------------------------------------------------------------------

class WarmStartMatcher:
    """A maximum matching maintained across arrivals and departures.

    Requests join (:meth:`add`) and leave (:meth:`remove`) one at a
    time; the matcher keeps a *maximum* capacitated matching alive by
    repairing it with single augmenting-path searches instead of
    re-solving the window from scratch.  Standard incremental-matching
    facts make this exact:

    * adding a request can extend the maximum matching by at most one,
      and one augmenting search from the new request finds that
      extension iff it exists (requests left unmatched earlier stay
      unmatchable -- arrivals add demand, not capacity);
    * removing a request frees at most one unit of capacity, so one
      successful augmenting search over the currently unmatched
      requests restores maximality.

    Therefore :attr:`feasible` (all requests matched) is always the
    exact feasibility answer for the current window at the configured
    access budget -- the property tests replay random add/remove
    traces against from-scratch Kuhn solves.  Device sets are bitsets
    (plain Python ints, so ``N > 64`` works too).
    """

    def __init__(self, n_devices: int, capacity: int):
        if n_devices < 1:
            raise ValueError("need at least one device")
        if capacity < 0:
            raise ValueError(f"capacity must be >= 0, got {capacity}")
        self.n_devices = n_devices
        self.capacity = capacity
        self._loads = [0] * n_devices
        #: device -> {request id: None} (insertion-ordered set)
        self._residents: List[Dict[int, None]] = \
            [dict() for _ in range(n_devices)]
        self._mask: Dict[int, int] = {}
        self._device: Dict[int, int] = {}
        self._pending: Dict[int, None] = {}
        self._next_id = 0
        #: augmenting searches that had to move already-placed requests
        self.repairs = 0
        #: requests placed without disturbing the existing assignment
        self.fast_placements = 0

    # -- queries ----------------------------------------------------------
    def __len__(self) -> int:
        return len(self._mask)

    @property
    def feasible(self) -> bool:
        """True iff every request in the window is matched."""
        return not self._pending

    @property
    def unmatched(self) -> int:
        return len(self._pending)

    def accesses(self) -> int:
        """Access rounds the current assignment uses (max device load)."""
        return max(self._loads) if self._mask else 0

    def assignment_of(self, request_id: int) -> int:
        """Device of a matched request, ``-1`` while unmatched."""
        return self._device[request_id]

    def stats(self) -> Dict[str, int]:
        return {"requests": len(self._mask),
                "unmatched": len(self._pending),
                "repairs": self.repairs,
                "fast_placements": self.fast_placements}

    # -- updates ----------------------------------------------------------
    def clear(self) -> None:
        """Empty the window in place, keeping allocated structures.

        Equivalent to constructing a fresh matcher with the same
        ``(n_devices, capacity)`` -- request ids restart at 0 and the
        repair counters reset -- but reuses the per-device load and
        resident containers, so interval-boundary resets in
        :class:`repro.core.admission.ExactAdmission` stay
        allocation-free.
        """
        for d in range(self.n_devices):
            self._loads[d] = 0
            self._residents[d].clear()
        self._mask.clear()
        self._device.clear()
        self._pending.clear()
        self._next_id = 0
        self.repairs = 0
        self.fast_placements = 0

    def add(self, candidates: Sequence[int]) -> int:
        """Admit one request; returns its id for later :meth:`remove`."""
        mask = mask_of(candidates, self.n_devices)
        rid = self._next_id
        self._next_id += 1
        self._mask[rid] = mask
        self._device[rid] = -1
        if not (mask and self.capacity > 0 and self._augment(rid)):
            self._pending[rid] = None
        if obs.ACTIVE:
            obs.SESSION.on_warm_start(len(self._pending) == 0)
        return rid

    def remove(self, request_id: int) -> None:
        """Retire one request and repair the matching if that helps."""
        mask = self._mask.pop(request_id)
        device = self._device.pop(request_id)
        del mask
        if device < 0:
            del self._pending[request_id]
            return
        self._loads[device] -= 1
        del self._residents[device][request_id]
        # The freed unit can admit at most one waiting request.
        for rid in list(self._pending):
            if self._augment(rid):
                del self._pending[rid]
                break

    # -- internals --------------------------------------------------------
    def _augment(self, rid: int) -> bool:
        """One Kuhn-style augmenting search rooted at ``rid``."""
        visited: set = set()
        if self._try_place(rid, visited, moving=False):
            return True
        return False

    def _try_place(self, rid: int, visited: set, moving: bool) -> bool:
        mask = self._mask[rid]
        current = self._device[rid] if moving else -1
        mm = mask
        while mm:
            low = mm & -mm
            mm ^= low
            d = low.bit_length() - 1
            if d == current or d in visited:
                continue
            visited.add(d)
            if self._loads[d] < self.capacity:
                self._settle(rid, d, moving)
                return True
            for resident in list(self._residents[d]):
                if self._try_place(resident, visited, moving=True):
                    self.repairs += 1
                    self._settle(rid, d, moving)
                    return True
        return False

    def _settle(self, rid: int, device: int, moving: bool) -> None:
        if moving:
            old = self._device[rid]
            del self._residents[old][rid]
            self._loads[old] -= 1
        else:
            self.fast_placements += 1
        self._device[rid] = device
        self._loads[device] += 1
        self._residents[device][rid] = None

    # -- window-level answers ---------------------------------------------
    def min_accesses(self) -> int:
        """Exact optimal access count for the current window.

        Warm level search: seed each level's matching from the current
        assignment (truncated to the level), then augment the
        leftovers -- augmenting from any valid partial matching
        reaches the maximum, so each level's answer is exact.
        """
        from repro.retrieval.schedule import optimal_accesses

        count = len(self._mask)
        if count == 0:
            return 0
        if any(m == 0 for m in self._mask.values()):
            raise ValueError("a request with no candidate devices "
                             "can never be retrieved")
        level = optimal_accesses(count, self.n_devices)
        while True:
            probe = WarmStartMatcher(self.n_devices, level)
            probe._next_id = self._next_id
            probe._mask = dict(self._mask)
            pending: List[int] = []
            for rid, device in self._device.items():
                if 0 <= device < self.n_devices \
                        and probe._loads[device] < level:
                    probe._device[rid] = device
                    probe._loads[device] += 1
                    probe._residents[device][rid] = None
                else:
                    probe._device[rid] = -1
                    pending.append(rid)
            if all(probe._augment(rid) for rid in pending):
                return level
            level += 1
            if level > count:  # pragma: no cover - masks are non-empty
                raise RuntimeError("level search failed to terminate")


# ---------------------------------------------------------------------------
# CSR Dinic fallback (N > 64)
# ---------------------------------------------------------------------------

def csr_capacitated_assignment(candidates: Sequence[Sequence[int]],
                               n_bins: int, capacity: int,
                               ) -> Optional[List[int]]:
    """Exact assignment on flat CSR arrays; the wide-array fallback.

    Same contract as :func:`repro.graph.kuhn.capacitated_assignment`,
    solved as a max-flow with Dinic's algorithm on a compressed-sparse
    edge layout (``to``/``cap`` arrays, paired reverse edges at
    ``i ^ 1``, per-node edge slices) instead of per-node Python lists
    -- no object graph to build or chase for arrays too wide for the
    bitset kernels.
    """
    if capacity < 0:
        raise ValueError(f"capacity must be >= 0, got {capacity}")
    n_items = len(candidates)
    if n_items == 0:
        return []
    if capacity == 0:
        return None
    item_bins = [list(dict.fromkeys(c)) for c in candidates]
    for bins in item_bins:
        for d in bins:
            if not 0 <= d < n_bins:
                raise ValueError(f"bin {d} out of range")
    n_mid = sum(len(b) for b in item_bins)
    n_nodes = n_items + n_bins + 2
    source = n_items + n_bins
    sink = source + 1
    n_edges = 2 * (n_items + n_mid + n_bins)

    to = np.empty(n_edges, dtype=np.int32)
    cap = np.empty(n_edges, dtype=np.int64)
    degree = np.zeros(n_nodes, dtype=np.int64)
    pairs: List[Tuple[int, int, int]] = []  # (u, v, capacity)
    for i in range(n_items):
        pairs.append((source, i, 1))
    first_mid_edge = 2 * n_items
    for i, bins in enumerate(item_bins):
        for d in bins:
            pairs.append((i, n_items + d, 1))
    for d in range(n_bins):
        pairs.append((n_items + d, sink, capacity))
    for e, (u, v, c) in enumerate(pairs):
        to[2 * e] = v
        cap[2 * e] = c
        to[2 * e + 1] = u
        cap[2 * e + 1] = 0
        degree[u] += 1
        degree[v] += 1
    indptr = np.zeros(n_nodes + 1, dtype=np.int64)
    np.cumsum(degree, out=indptr[1:])
    fill = indptr[:-1].copy()
    adj = np.empty(n_edges, dtype=np.int64)
    for e, (u, v, _) in enumerate(pairs):
        adj[fill[u]] = 2 * e
        fill[u] += 1
        adj[fill[v]] = 2 * e + 1
        fill[v] += 1

    levels = np.empty(n_nodes, dtype=np.int64)
    iters = np.empty(n_nodes, dtype=np.int64)
    total = 0
    while total < n_items:
        # BFS level graph.
        levels.fill(-1)
        levels[source] = 0
        frontier = [source]
        while frontier:
            nxt: List[int] = []
            for u in frontier:
                for p in range(indptr[u], indptr[u + 1]):
                    e = adj[p]
                    v = to[e]
                    if cap[e] > 0 and levels[v] < 0:
                        levels[v] = levels[u] + 1
                        nxt.append(int(v))
            frontier = nxt
        if levels[sink] < 0:
            break
        # Blocking flow: explicit-stack DFS over the CSR arrays.
        np.copyto(iters, indptr[:-1])
        while True:
            path: List[int] = []
            u = source
            sent = 0
            while True:
                if u == sink:
                    sent = int(min(cap[e] for e in path))
                    for e in path:
                        cap[e] -= sent
                        cap[e ^ 1] += sent
                    break
                advanced = False
                while iters[u] < indptr[u + 1]:
                    e = adj[iters[u]]
                    v = to[e]
                    if cap[e] > 0 and levels[v] == levels[u] + 1:
                        path.append(int(e))
                        u = int(v)
                        advanced = True
                        break
                    iters[u] += 1
                if advanced:
                    continue
                if u == source:
                    break
                # Dead end: retreat and retire the edge we came by.
                e = path.pop()
                u = int(to[e ^ 1])
                iters[u] += 1
            if sent == 0:
                break
            total += sent
    if total < n_items:
        return None
    assignment = [-1] * n_items
    edge = first_mid_edge
    for i, bins in enumerate(item_bins):
        for d in bins:
            if cap[edge] == 0 and assignment[i] < 0:
                assignment[i] = d
            edge += 2
    return assignment
