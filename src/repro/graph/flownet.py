"""Adjacency-list flow network with residual edges.

Edges are stored in flat parallel lists; each edge ``i`` has its reverse
edge at ``i ^ 1`` (edges are always added in pairs).  This is the
standard cache-friendly layout used by competitive max-flow codes and
keeps Dinic's inner loop allocation-free.
"""

from __future__ import annotations

from typing import Iterator, List, Tuple

__all__ = ["FlowNetwork"]


class FlowNetwork:
    """A directed flow network over nodes ``0 .. n_nodes-1``.

    Parameters
    ----------
    n_nodes:
        Number of nodes.  Nodes are dense integers; callers map their
        domain objects onto this range.
    """

    def __init__(self, n_nodes: int):
        if n_nodes < 0:
            raise ValueError(f"n_nodes must be >= 0, got {n_nodes}")
        self.n_nodes = n_nodes
        self._head: List[List[int]] = [[] for _ in range(n_nodes)]
        self._to: List[int] = []
        self._cap: List[int] = []

    # -- construction ----------------------------------------------------
    def add_edge(self, u: int, v: int, capacity: int) -> int:
        """Add a directed edge ``u -> v`` and its zero-capacity reverse.

        Returns the edge index (use :meth:`flow_on` to read its flow
        after solving).
        """
        self._check_node(u)
        self._check_node(v)
        if capacity < 0:
            raise ValueError(f"capacity must be >= 0, got {capacity}")
        idx = len(self._to)
        self._head[u].append(idx)
        self._to.append(v)
        self._cap.append(capacity)
        self._head[v].append(idx + 1)
        self._to.append(u)
        self._cap.append(0)
        return idx

    def _check_node(self, u: int) -> None:
        if not 0 <= u < self.n_nodes:
            raise IndexError(f"node {u} out of range [0, {self.n_nodes})")

    # -- inspection ------------------------------------------------------
    @property
    def n_edges(self) -> int:
        """Number of forward edges added."""
        return len(self._to) // 2

    def residual_capacity(self, edge: int) -> int:
        """Remaining capacity of edge index ``edge``."""
        return self._cap[edge]

    def flow_on(self, edge: int) -> int:
        """Flow currently routed through forward edge index ``edge``.

        The flow equals the accumulated capacity of the reverse edge.
        """
        if edge % 2 != 0:
            raise ValueError("flow_on expects a forward edge index")
        return self._cap[edge ^ 1]

    def edges_from(self, u: int) -> Iterator[Tuple[int, int, int]]:
        """Yield ``(edge_index, head, residual_capacity)`` for node ``u``."""
        for idx in self._head[u]:
            yield idx, self._to[idx], self._cap[idx]

    # -- mutation used by solvers ----------------------------------------
    def push(self, edge: int, amount: int) -> None:
        """Push ``amount`` units along ``edge`` (updates the residual)."""
        if amount > self._cap[edge]:
            raise ValueError("push exceeds residual capacity")
        self._cap[edge] -= amount
        self._cap[edge ^ 1] += amount

    def reset_flow(self) -> None:
        """Remove all flow, restoring original capacities."""
        for i in range(0, len(self._cap), 2):
            total = self._cap[i] + self._cap[i + 1]
            self._cap[i] = total
            self._cap[i + 1] = 0

    def set_capacity(self, edge: int, capacity: int) -> None:
        """Reset a forward edge's capacity (clears its flow)."""
        if edge % 2 != 0:
            raise ValueError("set_capacity expects a forward edge index")
        if capacity < 0:
            raise ValueError(f"capacity must be >= 0, got {capacity}")
        self._cap[edge] = capacity
        self._cap[edge ^ 1] = 0
