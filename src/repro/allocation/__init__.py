"""Replicated declustering / allocation schemes.

An *allocation scheme* decides, for every data bucket, the ordered set
of devices holding its ``c`` replicas.  The paper's contribution uses
design-theoretic allocation; the evaluation compares against RAID-1
mirrored and RAID-1 chained (Figure 7), and §II-B2 surveys the wider
literature (RDA, partitioned, dependent periodic, orthogonal) -- all of
which are implemented here as baselines.
"""

from repro.allocation.base import AllocationScheme
from repro.allocation.design_theoretic import DesignTheoreticAllocation
from repro.allocation.orthogonal import OrthogonalAllocation
from repro.allocation.partitioned import PartitionedAllocation
from repro.allocation.periodic import DependentPeriodicAllocation
from repro.allocation.raid1 import Raid1Chained, Raid1Mirrored
from repro.allocation.rda import RandomDuplicateAllocation
from repro.allocation.single import SingleCopyAllocation

__all__ = [
    "AllocationScheme",
    "DesignTheoreticAllocation",
    "DependentPeriodicAllocation",
    "OrthogonalAllocation",
    "PartitionedAllocation",
    "Raid1Chained",
    "Raid1Mirrored",
    "RandomDuplicateAllocation",
    "SingleCopyAllocation",
]
