"""Orthogonal allocation (Ferhatosmanoglu et al., PODS 2004; Tosun, SAC 2004).

Two-copy replication where every *device pair* appears at most once
across bucket replica sets -- the same pairwise property as a design,
yielding the ``ceil(sqrt(b))`` retrieval guarantee the paper quotes in
§II-B2 (and shows to be weaker than the design-theoretic
``(c-1)M^2 + cM`` bound).

The canonical construction places bucket ``(i, j)`` of an ``N x N``
grid on devices ``i`` (row copy) and ``j`` offset into a second bank --
here we realise it on a single bank of ``N`` devices by enumerating the
``N(N-1)/2`` unordered pairs, which preserves the each-pair-once
property the guarantee needs.
"""

from __future__ import annotations

from itertools import combinations
from typing import Tuple

from repro.allocation.base import AllocationScheme

__all__ = ["OrthogonalAllocation"]


class OrthogonalAllocation(AllocationScheme):
    """Each-pair-once two-copy allocation over ``N`` devices."""

    def __init__(self, n_devices: int):
        if n_devices < 2:
            raise ValueError("orthogonal allocation needs >= 2 devices")
        self.n_devices = n_devices
        self.replication = 2
        pairs = list(combinations(range(n_devices), 2))
        # Alternate orientation so primaries are balanced across devices.
        self._pairs: list[Tuple[int, ...]] = [
            p if k % 2 == 0 else (p[1], p[0]) for k, p in enumerate(pairs)]
        self.n_buckets = len(self._pairs)

    def devices_for(self, bucket: int) -> Tuple[int, ...]:
        return self._pairs[bucket % self.n_buckets]

    @staticmethod
    def guarantee(n_requested: int) -> int:
        """Worst-case accesses for ``b`` arbitrary buckets: ceil(sqrt(b))."""
        if n_requested < 0:
            raise ValueError("request count must be >= 0")
        if n_requested == 0:
            return 0
        root = int(n_requested ** 0.5)
        return root if root * root >= n_requested else root + 1
