"""Random duplicate allocation (Sanders et al., SODA 2000).

Each bucket's replicas land on ``c`` devices chosen uniformly at random
without replacement.  Retrieval cost is within one of optimal with high
probability, but -- as the paper stresses -- RDA can give no
*deterministic* guarantee, which is why it is a baseline here.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.allocation.base import AllocationScheme

__all__ = ["RandomDuplicateAllocation"]


class RandomDuplicateAllocation(AllocationScheme):
    """RDA with a fixed seed for reproducible layouts.

    Parameters
    ----------
    n_devices, replication:
        Array shape.
    n_buckets:
        Size of the randomised placement table.
    seed:
        RNG seed; two instances with the same seed have identical
        layouts.
    """

    def __init__(self, n_devices: int, replication: int = 3,
                 n_buckets: int = 1024, seed: int = 0):
        if replication > n_devices:
            raise ValueError("replication cannot exceed device count")
        self.n_devices = n_devices
        self.replication = replication
        self.n_buckets = n_buckets
        rng = np.random.default_rng(seed)
        self._table = np.empty((n_buckets, replication), dtype=np.int64)
        for b in range(n_buckets):
            self._table[b] = rng.choice(n_devices, size=replication,
                                        replace=False)

    def devices_for(self, bucket: int) -> Tuple[int, ...]:
        return tuple(int(d) for d in self._table[bucket % self.n_buckets])
