"""Unreplicated striping: the no-redundancy baseline.

``SingleCopyAllocation`` stores exactly one copy of every bucket,
round-robin across the array (plain striping, ``c = 1``).  It exists
for the fault experiments: with no replicas there is no failure-aware
retrieval to fall back on, so every module failure makes its share of
the data unavailable and the violation rate climbs with the failure
count -- the counterfactual the replication schemes are measured
against.
"""

from __future__ import annotations

from typing import Tuple

from repro.allocation.base import AllocationScheme

__all__ = ["SingleCopyAllocation"]


class SingleCopyAllocation(AllocationScheme):
    """One copy per bucket, striped round-robin over ``n_devices``.

    Bucket ``b`` lives on device ``b mod N`` and nowhere else.  Any
    single module failure loses ``1/N`` of the buckets outright.
    """

    def __init__(self, n_devices: int):
        if n_devices < 1:
            raise ValueError("need at least one device")
        self.n_devices = n_devices
        self.replication = 1
        self.n_buckets = n_devices

    def devices_for(self, bucket: int) -> Tuple[int, ...]:
        if bucket < 0:
            raise ValueError("bucket must be non-negative")
        return (bucket % self.n_devices,)
