"""Design-theoretic allocation (the paper's scheme, §II-B3/B4).

Bucket ``i`` is stored on the devices of the ``i``-th *rotated* design
block: the rotation closure of an ``(N, c, 1)`` design supports
``N(N-1)/(c-1)`` buckets (36 for the (9,3,1) design) while preserving
the pairwise-balance guarantee, since rotations reuse the same device
sets with shifted copy order.
"""

from __future__ import annotations

from typing import Tuple

from repro.allocation.base import AllocationScheme
from repro.check import sanitizers
from repro.designs.block_design import BlockDesign
from repro.designs.catalog import get_design
from repro.designs.rotations import rotation_closure

__all__ = ["DesignTheoreticAllocation"]


class DesignTheoreticAllocation(AllocationScheme):
    """Allocation by the rotated blocks of an ``(N, c, 1)`` design.

    Parameters
    ----------
    design:
        The base design.  Pass e.g. ``get_design(9, 3)`` for the
        paper's Figure 2 design.
    use_rotations:
        Expand with rotations (default True, as in the paper).
    """

    def __init__(self, design: BlockDesign, use_rotations: bool = True):
        self.design = design
        self._expanded = rotation_closure(design) if use_rotations else design
        self.n_devices = design.n_points
        self.replication = design.block_size
        self.n_buckets = self._expanded.n_blocks
        if sanitizers.ACTIVE:
            sanitizers.check_allocation(self)

    @classmethod
    def from_parameters(cls, n_devices: int,
                        replication: int = 3) -> "DesignTheoreticAllocation":
        """Build from ``(N, c)`` using the design catalog."""
        return cls(get_design(n_devices, replication))

    def devices_for(self, bucket: int) -> Tuple[int, ...]:
        return self._expanded.blocks[bucket % self.n_buckets]

    def guarantee(self, accesses: int) -> int:
        """Buckets retrievable in ``accesses`` parallel accesses.

        The design-theoretic guarantee ``S = (c-1)M^2 + cM``.
        """
        c, m = self.replication, accesses
        return (c - 1) * m * m + c * m
