"""Partitioned allocation (Ferhatosmanoglu et al., DAPD 2006).

Devices are split into groups; a bucket's primary device is assigned
round-robin across *all* devices and its replicas stay inside the
primary's group.  Good for range queries, poor for arbitrary queries
(paper §II-B2) -- exactly the behaviour the ablation benchmarks probe.
"""

from __future__ import annotations

from typing import Tuple

from repro.allocation.base import AllocationScheme

__all__ = ["PartitionedAllocation"]


class PartitionedAllocation(AllocationScheme):
    """Replication confined to device groups of size ``group_size``.

    Parameters
    ----------
    n_devices:
        Total devices; must be divisible by ``group_size``.
    replication:
        Copies per bucket; at most ``group_size``.
    group_size:
        Devices per partition group (defaults to ``replication``, which
        makes the scheme coincide with RAID-1 mirroring except for the
        round-robin primary).
    """

    def __init__(self, n_devices: int, replication: int = 3,
                 group_size: int | None = None,
                 n_buckets: int | None = None):
        group_size = group_size or replication
        if n_devices % group_size != 0:
            raise ValueError(
                f"group_size {group_size} must divide N={n_devices}")
        if replication > group_size:
            raise ValueError("replication cannot exceed group size")
        self.n_devices = n_devices
        self.replication = replication
        self.group_size = group_size
        self.n_buckets = n_buckets or (
            (n_devices * (n_devices - 1)) // (replication - 1))

    def devices_for(self, bucket: int) -> Tuple[int, ...]:
        bucket %= self.n_buckets
        primary = bucket % self.n_devices
        group = primary // self.group_size
        base = group * self.group_size
        offset = primary - base
        return tuple(base + (offset + j) % self.group_size
                     for j in range(self.replication))
