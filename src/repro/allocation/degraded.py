"""Degraded-mode allocation: serving around failed devices.

Replication buys fault tolerance as well as QoS: with ``c`` copies and
``f`` failed devices every bucket still has at least ``c - f`` live
replicas, and the pairwise balance of a design survives restriction, so
the design-theoretic guarantee degrades gracefully to

    ``S_degraded(M) = (c - f - 1) M^2 + (c - f) M``.

:class:`DegradedAllocation` is a view over any allocation scheme that
filters failed devices out of every bucket's replica tuple.
"""

from __future__ import annotations

from typing import Iterable, Set, Tuple

from repro.allocation.base import AllocationScheme
from repro.core.guarantees import guarantee_capacity

__all__ = ["DegradedAllocation", "DataUnavailableError",
           "degraded_capacity"]


class DataUnavailableError(RuntimeError):
    """All replicas of a bucket are on failed devices."""


def degraded_capacity(accesses: int, replication: int,
                      n_failed: int) -> int:
    """Guarantee capacity after ``n_failed`` device failures.

    Conservative: assumes every failure removes one replica of every
    bucket (the worst case).  Zero once failures reach ``c - 1``... at
    ``c - 1`` failures a single replica remains, which still serves
    ``M`` buckets per device but without any declustering guarantee, so
    we report the single-copy bound ``M``.
    """
    if n_failed < 0:
        raise ValueError("n_failed must be >= 0")
    live = replication - n_failed
    if live <= 0:
        return 0
    if live == 1:
        return accesses  # single copy: only k <= M on one device
    return guarantee_capacity(accesses, live)


class DegradedAllocation(AllocationScheme):
    """A failure-masking view over ``base``.

    Parameters
    ----------
    base:
        The healthy allocation scheme.
    failed:
        Device indices currently failed.  Buckets whose replicas all
        fall in this set raise :class:`DataUnavailableError` on lookup.
    """

    def __init__(self, base: AllocationScheme, failed: Iterable[int]):
        self.base = base
        self.failed: Set[int] = {int(d) for d in failed}
        for d in self.failed:
            if not 0 <= d < base.n_devices:
                raise ValueError(f"failed device {d} out of range")
        self.n_devices = base.n_devices
        self.n_buckets = base.n_buckets
        # Report the *effective* replication: the worst-case live copy
        # count.  Admission control and guarantee-level retrieval key
        # off this attribute, so degraded capacity follows automatically.
        self.replication = max(0, base.replication - len(self.failed))

    @property
    def n_failed(self) -> int:
        return len(self.failed)

    @property
    def effective_replication(self) -> int:
        """Guaranteed live replicas per bucket (worst case)."""
        return self.replication

    def devices_for(self, bucket: int) -> Tuple[int, ...]:
        live = tuple(d for d in self.base.devices_for(bucket)
                     if d not in self.failed)
        if not live:
            raise DataUnavailableError(
                f"bucket {bucket % self.n_buckets}: all replicas on "
                f"failed devices {sorted(self.failed)}")
        return live

    def guarantee(self, accesses: int) -> int:
        """Degraded admission capacity for this failure set."""
        return degraded_capacity(accesses, self.base.replication,
                                 self.n_failed)

    def validate(self) -> None:  # overrides the fixed-length check
        for b in range(self.n_buckets):
            devs = self.devices_for(b)
            if len(set(devs)) != len(devs):
                raise ValueError(f"bucket {b}: duplicate devices {devs}")
            for d in devs:
                if not 0 <= d < self.n_devices:
                    raise ValueError(
                        f"bucket {b}: device {d} out of range")
