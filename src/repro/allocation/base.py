"""Abstract allocation scheme interface."""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Dict, List, Tuple

__all__ = ["AllocationScheme"]


class AllocationScheme(ABC):
    """Maps data buckets to ordered device tuples.

    Subclasses define :meth:`devices_for`.  The first device in the
    returned tuple is the *primary* copy (used by the initial mapping of
    design-theoretic retrieval); the rest are replicas in preference
    order.
    """

    #: Number of devices in the array.
    n_devices: int
    #: Number of replicas per bucket.
    replication: int
    #: Number of distinct buckets the scheme supports (buckets wrap
    #: modulo this when the data space is larger).
    n_buckets: int

    @abstractmethod
    def devices_for(self, bucket: int) -> Tuple[int, ...]:
        """Ordered devices holding ``bucket``'s replicas.

        ``bucket`` may be any non-negative integer; schemes wrap it
        modulo :attr:`n_buckets`.
        """

    def primary(self, bucket: int) -> int:
        """Device holding the first copy of ``bucket``."""
        return self.devices_for(bucket)[0]

    def candidates(self, buckets) -> List[Tuple[int, ...]]:
        """Vectorised :meth:`devices_for` over an iterable of buckets."""
        return [self.devices_for(int(b)) for b in buckets]

    def layout(self) -> Dict[int, List[int]]:
        """Device -> list of buckets stored on it (over all buckets).

        Reproduces the right-hand charts of the paper's Figure 7.
        """
        table: Dict[int, List[int]] = {d: [] for d in range(self.n_devices)}
        for b in range(self.n_buckets):
            for d in self.devices_for(b):
                table[d].append(b)
        return table

    def validate(self) -> None:
        """Structural sanity check over all supported buckets."""
        for b in range(self.n_buckets):
            devs = self.devices_for(b)
            if len(devs) != self.replication:
                raise ValueError(
                    f"bucket {b}: expected {self.replication} devices, "
                    f"got {devs}")
            if len(set(devs)) != len(devs):
                raise ValueError(f"bucket {b}: duplicate devices {devs}")
            for d in devs:
                if not 0 <= d < self.n_devices:
                    raise ValueError(f"bucket {b}: device {d} out of range")

    def __repr__(self) -> str:
        return (f"<{type(self).__name__} N={self.n_devices} "
                f"c={self.replication} buckets={self.n_buckets}>")
