"""Dependent periodic allocation (Tosun & Ferhatosmanoglu, ICPP 2002).

The ``j``-th copy of a bucket is a *shifted* version of the first:
``device_j = (primary + j * shift) mod N``.  Strong for range/connected
queries, weaker for arbitrary queries (paper §II-B2).
"""

from __future__ import annotations

from math import gcd
from typing import Tuple

from repro.allocation.base import AllocationScheme

__all__ = ["DependentPeriodicAllocation"]


class DependentPeriodicAllocation(AllocationScheme):
    """Periodic allocation with a fixed inter-copy shift.

    Parameters
    ----------
    n_devices, replication:
        Array shape.
    shift:
        Device offset between consecutive copies.  ``shift * j mod N``
        must be distinct for ``j = 0..c-1``; a shift coprime to ``N``
        always works.
    """

    def __init__(self, n_devices: int, replication: int = 3,
                 shift: int | None = None, n_buckets: int | None = None):
        if replication > n_devices:
            raise ValueError("replication cannot exceed device count")
        if shift is None:
            # smallest shift >= 2 coprime to N keeps copies spread out;
            # fall back to 1 (chained layout) when none exists.
            shift = next((s for s in range(2, n_devices)
                          if gcd(s, n_devices) == 1), 1)
        offsets = {(shift * j) % n_devices for j in range(replication)}
        if len(offsets) != replication:
            raise ValueError(
                f"shift {shift} collapses copies on N={n_devices}")
        self.n_devices = n_devices
        self.replication = replication
        self.shift = shift
        self.n_buckets = n_buckets or (
            (n_devices * (n_devices - 1)) // (replication - 1))

    def devices_for(self, bucket: int) -> Tuple[int, ...]:
        bucket %= self.n_buckets
        return tuple((bucket + self.shift * j) % self.n_devices
                     for j in range(self.replication))
