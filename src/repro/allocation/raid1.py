"""RAID-1 mirrored and RAID-1 chained allocations (paper Figure 7).

Both replicate each bucket over ``c`` of ``N`` devices and, like the
design-theoretic scheme, are extended with rotations so that each
supports the same 36 buckets in the paper's 9-device, 3-copy setting.
"""

from __future__ import annotations

from typing import Tuple

from repro.allocation.base import AllocationScheme
from repro.designs.rotations import rotate_block

__all__ = ["Raid1Mirrored", "Raid1Chained"]


class Raid1Mirrored(AllocationScheme):
    """RAID-1 mirrored: devices split into ``N/c`` fully-mirrored groups.

    Figure 7: with N=9, c=3 the groups are (d0,d1,d2), (d3,d4,d5),
    (d6,d7,d8); bucket ``b`` lives in group ``b mod 3`` and every device
    of the group stores it.  Rotations of the group tuple extend support
    from 12 buckets to 36 by varying the primary device.
    """

    def __init__(self, n_devices: int = 9, replication: int = 3,
                 base_buckets: int | None = None):
        if n_devices % replication != 0:
            raise ValueError(
                f"mirrored groups need c | N; got N={n_devices}, "
                f"c={replication}")
        self.n_devices = n_devices
        self.replication = replication
        self.n_groups = n_devices // replication
        # The paper's base layout has 12 buckets (b0..b11) before
        # rotations; in general use N(N-1)/(c(c-1)) * something is not
        # meaningful for mirroring, so we default to matching the
        # design-theoretic bucket count for a fair comparison.
        if base_buckets is None:
            base_buckets = (n_devices * (n_devices - 1)
                            // ((replication - 1) * replication))
        self.base_buckets = base_buckets
        self.n_buckets = base_buckets * replication

    def devices_for(self, bucket: int) -> Tuple[int, ...]:
        bucket %= self.n_buckets
        base = bucket % self.base_buckets
        shift = bucket // self.base_buckets
        group = base % self.n_groups
        start = group * self.replication
        devs = tuple(range(start, start + self.replication))
        return rotate_block(devs, shift)


class Raid1Chained(AllocationScheme):
    """RAID-1 chained: copies on consecutive devices (mod N).

    Figure 7: if the primary copy of a bucket is on device ``i``, the
    other copies are on ``(i+1) mod N`` and ``(i+2) mod N``.  Primary
    devices advance round-robin with the bucket index, so all 36 buckets
    are supported directly.
    """

    def __init__(self, n_devices: int = 9, replication: int = 3,
                 n_buckets: int | None = None):
        if replication > n_devices:
            raise ValueError("replication cannot exceed device count")
        self.n_devices = n_devices
        self.replication = replication
        if n_buckets is None:
            n_buckets = (n_devices * (n_devices - 1)) // (replication - 1)
        self.n_buckets = n_buckets

    def devices_for(self, bucket: int) -> Tuple[int, ...]:
        bucket %= self.n_buckets
        return tuple((bucket + j) % self.n_devices
                     for j in range(self.replication))
