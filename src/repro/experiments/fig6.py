"""Figure 6 -- trace statistics of the two real-world workloads.

Per interval: maximum and average read requests per second
(Fig 6a/6c) and total reads (Fig 6b/6d), for the Exchange-like and
TPC-E-like workload models.  Absolute numbers are scaled (DESIGN.md);
the shapes to check are the Exchange diurnal double-hump and TPC-E's
flat, much higher per-interval volume.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.experiments.common import ExperimentResult
from repro.runner import Cell, ParallelRunner
from repro.traces.exchange import exchange_like_trace
from repro.traces.stats import interval_statistics
from repro.traces.tpce import TPCE_PART_FRACTIONS, tpce_like_trace

__all__ = ["run", "run_exchange", "run_tpce"]


def _exchange_rows(scale: float, n_intervals: int,
                   seed: int) -> List[List[object]]:
    parts = exchange_like_trace(scale=scale, seed=seed,
                                n_intervals=n_intervals)
    stats = interval_statistics(parts, interval_ms=60.0,
                                rate_window_ms=5.0)
    return [[s.index, s.total_requests, round(s.avg_req_per_sec, 1),
             round(s.max_req_per_sec, 1)] for s in stats]


def _tpce_rows(scale: float, seed: int) -> List[List[object]]:
    parts = tpce_like_trace(scale=scale, seed=seed)
    total = 360.0
    frac_sum = sum(TPCE_PART_FRACTIONS)
    bounds = np.cumsum([total * f / frac_sum
                        for f in TPCE_PART_FRACTIONS])
    stats = interval_statistics(parts, boundaries_ms=list(bounds),
                                rate_window_ms=5.0)
    return [[s.index, s.total_requests, round(s.avg_req_per_sec, 1),
             round(s.max_req_per_sec, 1)] for s in stats]


def run_exchange(scale: float = 0.5, n_intervals: int = 24,
                 seed: int = 0) -> ExperimentResult:
    """Fig 6(a,b): Exchange-like per-interval statistics."""
    return ExperimentResult(
        name="Figure 6(a,b) -- Exchange-like trace statistics",
        headers=["interval", "total reads", "avg req/s", "max req/s"],
        rows=_exchange_rows(scale, n_intervals, seed),
        notes="Shape: diurnal variation across intervals; max >> avg.",
    )


def run_tpce(scale: float = 0.5, seed: int = 0) -> ExperimentResult:
    """Fig 6(c,d): TPC-E-like per-part statistics."""
    return ExperimentResult(
        name="Figure 6(c,d) -- TPC-E-like trace statistics",
        headers=["part", "total reads", "avg req/s", "max req/s"],
        rows=_tpce_rows(scale, seed),
        notes="Shape: six parts, near-flat high rate.",
    )


def run(scale: float = 0.5, seed: int = 0, n_intervals: int = 24,
        runner: Optional[ParallelRunner] = None) -> ExperimentResult:
    """Both halves of Figure 6, concatenated."""
    runner = runner or ParallelRunner()
    ex_rows, tp_rows = runner.run([
        Cell("fig6", "exchange", _exchange_rows,
             (scale, n_intervals, seed)),
        Cell("fig6", "tpce", _tpce_rows, (scale, seed)),
    ])
    rows = ([["exchange"] + r for r in ex_rows]
            + [["tpce"] + r for r in tp_rows])
    return ExperimentResult(
        name="Figure 6 -- trace statistics",
        headers=["workload", "interval", "total reads",
                 "avg req/s", "max req/s"],
        rows=rows,
        notes="Shape: diurnal variation across intervals; max >> avg. "
              "Shape: six parts, near-flat high rate.",
    )
