"""Figure 6 -- trace statistics of the two real-world workloads.

Per interval: maximum and average read requests per second
(Fig 6a/6c) and total reads (Fig 6b/6d), for the Exchange-like and
TPC-E-like workload models.  Absolute numbers are scaled (DESIGN.md);
the shapes to check are the Exchange diurnal double-hump and TPC-E's
flat, much higher per-interval volume.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.experiments.common import ExperimentResult
from repro.traces.exchange import exchange_like_trace
from repro.traces.stats import interval_statistics
from repro.traces.tpce import TPCE_PART_FRACTIONS, tpce_like_trace

__all__ = ["run", "run_exchange", "run_tpce"]


def run_exchange(scale: float = 0.5, n_intervals: int = 24,
                 seed: int = 0) -> ExperimentResult:
    """Fig 6(a,b): Exchange-like per-interval statistics."""
    parts = exchange_like_trace(scale=scale, seed=seed,
                                n_intervals=n_intervals)
    stats = interval_statistics(parts, interval_ms=60.0,
                                rate_window_ms=5.0)
    rows: List[List[object]] = [
        [s.index, s.total_requests, round(s.avg_req_per_sec, 1),
         round(s.max_req_per_sec, 1)] for s in stats]
    return ExperimentResult(
        name="Figure 6(a,b) -- Exchange-like trace statistics",
        headers=["interval", "total reads", "avg req/s", "max req/s"],
        rows=rows,
        notes="Shape: diurnal variation across intervals; max >> avg.",
    )


def run_tpce(scale: float = 0.5, seed: int = 0) -> ExperimentResult:
    """Fig 6(c,d): TPC-E-like per-part statistics."""
    parts = tpce_like_trace(scale=scale, seed=seed)
    total = 360.0
    frac_sum = sum(TPCE_PART_FRACTIONS)
    bounds = np.cumsum([total * f / frac_sum
                        for f in TPCE_PART_FRACTIONS])
    stats = interval_statistics(parts, boundaries_ms=list(bounds),
                                rate_window_ms=5.0)
    rows: List[List[object]] = [
        [s.index, s.total_requests, round(s.avg_req_per_sec, 1),
         round(s.max_req_per_sec, 1)] for s in stats]
    return ExperimentResult(
        name="Figure 6(c,d) -- TPC-E-like trace statistics",
        headers=["part", "total reads", "avg req/s", "max req/s"],
        rows=rows,
        notes="Shape: six parts, near-flat high rate.",
    )


def run(scale: float = 0.5, seed: int = 0,
        n_intervals: int = 24) -> ExperimentResult:
    """Both halves of Figure 6, concatenated."""
    ex = run_exchange(scale=scale, seed=seed, n_intervals=n_intervals)
    tp = run_tpce(scale=scale, seed=seed)
    rows = ([["exchange"] + r for r in ex.rows]
            + [["tpce"] + r for r in tp.rows])
    return ExperimentResult(
        name="Figure 6 -- trace statistics",
        headers=["workload", "interval", "total reads",
                 "avg req/s", "max req/s"],
        rows=rows,
        notes=ex.notes + " " + tp.notes,
    )
