"""Controller experiment -- live adaptive re-replication vs static.

Not a paper figure: the paper's loop (mine per interval, re-replicate
between intervals) is evaluated offline in Figures 8-11; this scenario
runs the *live* controller (:mod:`repro.controller`) on the TPC-E-like
workload and measures what closing the loop online buys.  Three stands
share the same trace, array and statistical QoS (``ε > 0``):

* **static** -- :class:`~repro.controller.strategy.StaticPlacement`:
  the modulo placement never changes (the baseline);
* **adaptive** -- :class:`~repro.controller.strategy.FIMReplan` with an
  unlimited migration budget: the offline loop, replayed live;
* **budgeted** -- the same loop under a per-boundary migration budget,
  deferring the weakest-support moves.

Expected shape (asserted by the golden snapshot and the integration
tests): the adaptive stand beats the static stand on guarantee
violation rate, and the budgeted stand lands between them while
spending a fraction of the migration cost.
"""

from __future__ import annotations

from typing import List, Optional

from repro.controller import (
    ControllerConfig,
    ReplicationController,
    StaticPlacement,
)
from repro.experiments.common import ExperimentResult
from repro.experiments.fig8 import make_parts
from repro.runner import Cell, ParallelRunner

__all__ = ["run", "STANDS"]

#: stand slug -> migration budget (None = unlimited; "static" never
#: migrates), in presentation order
STANDS = {"static": None, "budgeted": 16, "adaptive": None}


def _cell_controller(stand: str, workload: str, scale: float,
                     n_intervals: int, seed: int, n_devices: int,
                     epsilon: float,
                     budget: Optional[int]) -> List[float]:
    """One stand's live run; summary metrics as a flat row."""
    parts = make_parts(workload, scale, n_intervals, seed)
    config = ControllerConfig(n_devices=n_devices, epsilon=epsilon,
                              seed=seed, migration_budget=budget)
    controller = ReplicationController(
        config, strategy=StaticPlacement() if stand == "static"
        else None)
    result = controller.run(parts)
    report = result.report
    rates = result.match_rates[1:]  # part 0 has nothing mined yet
    return [report.violation_rate, report.avg_response_ms,
            report.pct_delayed,
            sum(rates) / len(rates) if rates else 0.0,
            float(sum(a.deltas_applied for a in result.audit)),
            float(sum(a.deltas_deferred for a in result.audit)),
            float(result.total_migration_cost)]


def run(scale: float = 0.4, n_intervals: int = 8, seed: int = 0,
        n_devices: int = 13, epsilon: float = 0.05,
        runner: Optional[ParallelRunner] = None) -> ExperimentResult:
    """Violation rate per stand on the TPC-E-like workload."""
    runner = runner or ParallelRunner()
    cells = [Cell("controller", stand, _cell_controller,
                  (stand, "tpce", scale, n_intervals, seed,
                   n_devices, epsilon, budget))
             for stand, budget in STANDS.items()]
    results = runner.run(cells)
    rows: List[List[object]] = []
    for (stand, budget), row in zip(STANDS.items(), results):
        (rate, avg_ms, pct_delayed, match_rate,
         applied, deferred, cost) = row
        rows.append([stand,
                     "-" if stand == "static" else
                     ("inf" if budget is None else budget),
                     round(rate, 6), round(avg_ms, 6),
                     round(pct_delayed, 2), round(match_rate, 4),
                     int(applied), int(deferred), int(cost)])
    return ExperimentResult(
        name=f"Controller -- live adaptive re-replication vs static "
             f"(TPC-E-like, N={n_devices}, eps={epsilon})",
        headers=["stand", "budget/boundary", "violation rate",
                 "avg resp ms", "% delayed", "avg match rate",
                 "moves applied", "moves deferred", "migration cost"],
        rows=rows,
        notes="One long-running stream per stand; the adaptive "
              "stands re-replicate at interval boundaries from "
              "patterns mined incrementally on the live stream. "
              "Budgeted migration defers the weakest-support moves "
              "to later boundaries.",
    )
