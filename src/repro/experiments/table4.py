"""Table IV -- FIM time and memory (§V-F).

The paper benchmarks ``fim_apriori-lowmem`` on the largest and smallest
intervals of both traces (support 1 and 3).  We measure our own Apriori
on the corresponding intervals of the scaled workload models: wall
time via ``time.perf_counter`` and peak incremental memory via
``tracemalloc``.  Absolute values are not comparable to the paper's C
implementation on 40M-request traces; the reproducible shape is the
ordering (bigger interval => more time/memory; higher support =>
less of both).
"""

from __future__ import annotations

import time
import tracemalloc
from typing import List, Optional, Sequence, Tuple

from repro.experiments.common import ExperimentResult
from repro.experiments.fig8 import make_parts
from repro.mining.apriori import apriori
from repro.mining.transactions import transactions_from_trace
from repro.runner import Cell, ParallelRunner
from repro.traces.records import Trace

__all__ = ["run", "measure_fim", "PAPER_TABLE4"]

#: Paper's Table IV rows: (trace, requests, support, peak mem, time).
PAPER_TABLE4 = (
    ("exch48", "14.3 K", 1, "240 MB", "1.08 s"),
    ("exch52", "6.8 M", 1, "767 MB", "11.43 s"),
    ("tpce6", "104 K", 1, "316 MB", "1.21 s"),
    ("tpce3", "27.6 M", 1, "3.4 GB", "1m30s"),
    ("tpce3", "27.6 M", 3, "2.2 GB", "56.69 s"),
)


def measure_fim(part: Trace, support: int,
                window_ms: float = 0.133) -> Tuple[int, float, float, int]:
    """Mine one interval; returns (n_requests, seconds, peak_MB, n_pairs)."""
    txns = transactions_from_trace(part, window_ms)
    tracemalloc.start()
    t0 = time.perf_counter()
    result = apriori(txns, min_support=support, max_size=2)
    elapsed = time.perf_counter() - t0
    _, peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    return len(part), elapsed, peak / 1e6, len(result.of_size(2))


def _extremes(parts: Sequence[Trace]) -> Tuple[int, int]:
    sizes = [len(p) for p in parts]
    return sizes.index(min(sizes)), sizes.index(max(sizes))


def _cell_fim(workload: str, which: str, support: int, scale: float,
              n_intervals: int,
              seed: int) -> Tuple[int, float, float, int]:
    """Mine one extreme interval of a regenerated workload."""
    parts = make_parts(workload, scale, n_intervals, seed)
    lo, hi = _extremes(parts)
    part = parts[lo if which == "small" else hi]
    return measure_fim(part, support)


def run(scale: float = 1.0, n_intervals: int = 24, seed: int = 0,
        runner: Optional[ParallelRunner] = None) -> ExperimentResult:
    """Regenerate Table IV on the scaled workloads."""
    runner = runner or ParallelRunner()
    cases = [("exch-small", "exchange", "small", 1),
             ("exch-large", "exchange", "large", 1),
             ("tpce-small", "tpce", "small", 1),
             ("tpce-large", "tpce", "large", 1),
             ("tpce-large", "tpce", "large", 3)]
    # Never cached: the value is a wall-time/memory *measurement* of
    # this host, not a pure function of the parameters.
    measured = runner.run([
        Cell("table4", f"{label}-sup={support}", _cell_fim,
             (workload, which, support, scale, n_intervals, seed),
             cacheable=False)
        for label, workload, which, support in cases])
    rows: List[List[object]] = []
    for (label, _, _, support), (n, secs, mb, pairs) \
            in zip(cases, measured):
        rows.append([label, n, support, round(secs, 4), round(mb, 2),
                     pairs])
    return ExperimentResult(
        name="Table IV -- FIM performance (our Apriori, scaled traces)",
        headers=["trace interval", "requests", "support", "time (s)",
                 "peak mem (MB)", "frequent pairs"],
        rows=rows,
        notes=("Paper (C implementation, full traces): "
               + "; ".join(f"{t} {r} sup={s}: {m}, {d}"
                           for t, r, s, m, d in PAPER_TABLE4)
               + ".  Shape: larger interval => more time/memory; "
                 "higher support => less."),
    )
