"""Golden-snapshot registry: pinned experiment runs for regression.

Every entry is a *small, fast, fully deterministic* experiment
configuration whose serialized :class:`~repro.experiments.common.\
ExperimentResult` is stored byte-for-byte under ``tests/golden/``.
The snapshot tests re-run each entry and diff against the stored file
-- any numeric drift (event ordering, float accumulation, RNG
consumption, serialization shape) fails loudly with a real diff
instead of silently shifting results between sessions.

Regenerate after an *intentional* behaviour change with::

    python tools/regen_golden.py            # all snapshots
    python tools/regen_golden.py faults     # one snapshot

and commit the diff alongside the change that explains it.

Registry rules:

* configs must run in a few seconds each (they run in tier-1 CI);
* output must be byte-stable across machines -- no wall-clock, no
  unseeded RNG, no environment-dependent sizes (the determinism
  probes enforce the same property dynamically);
* keys are stable filenames: ``tests/golden/<key>.json``.
"""

from __future__ import annotations

from pathlib import Path
from typing import Callable, Dict

from repro.experiments.common import ExperimentResult

__all__ = ["GOLDEN_RUNS", "golden_dir", "generate", "generate_all"]


def _fig4() -> ExperimentResult:
    from repro.experiments import fig4

    return fig4.run(max_k=12, trials=300, seed=0)


def _table2() -> ExperimentResult:
    from repro.experiments import table2

    return table2.run(samples=400, seed=0)


def _ablation_copy_count() -> ExperimentResult:
    from repro.experiments import ablations

    return ablations.copy_count()


def _ablation_failures() -> ExperimentResult:
    from repro.experiments import ablations

    return ablations.failure_degradation(trials=60, seed=0)


def _faults() -> ExperimentResult:
    from repro.experiments import faults

    return faults.run(n_requests=240, max_failures=4, seed=0)


def _controller() -> ExperimentResult:
    from repro.experiments import controller

    return controller.run(scale=0.3, n_intervals=6, seed=0)


def _cluster() -> ExperimentResult:
    from repro.experiments import cluster

    return cluster.run(scale=0.2, n_intervals=4, seed=0)


#: snapshot key -> deterministic runner (see module docstring rules)
GOLDEN_RUNS: Dict[str, Callable[[], ExperimentResult]] = {
    "fig4": _fig4,
    "table2": _table2,
    "ablation_copy_count": _ablation_copy_count,
    "ablation_failures": _ablation_failures,
    "faults": _faults,
    "controller": _controller,
    "cluster": _cluster,
}


def golden_dir() -> Path:
    """``tests/golden/`` at the repository root."""
    return Path(__file__).resolve().parents[3] / "tests" / "golden"


def generate(key: str) -> str:
    """The canonical serialized snapshot for one registry entry."""
    if key not in GOLDEN_RUNS:
        raise KeyError(
            f"unknown golden run {key!r}; "
            f"choose from {sorted(GOLDEN_RUNS)}")
    return GOLDEN_RUNS[key]().to_json() + "\n"


def generate_all() -> Dict[str, str]:
    """Key -> canonical serialized snapshot, for every entry."""
    return {key: generate(key) for key in GOLDEN_RUNS}
