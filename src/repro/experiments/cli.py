"""Command-line entry point: ``python -m repro.experiments`` or
``repro-experiments``.

Runs one or all experiment runners and prints their text tables.
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable, Dict, List

from repro.experiments import (
    ablations,
    cluster,
    controller,
    faults,
    fig4,
    fig6,
    fig8,
    fig9,
    fig10,
    fig11,
    fig12,
    table2,
    table3,
    table4,
)

__all__ = ["main", "RUNNERS"]

#: every runner takes ``(fast, seed, runner)`` so the CLI's ``--seed``
#: threads through to the generators and ``--jobs``/``--no-cache``
#: through to the parallel engine
RUNNERS: Dict[str, Callable] = {
    "table2": lambda fast, seed=0, runner=None: table2.run(
        samples=500 if fast else 4000, seed=seed, runner=runner),
    "table3": lambda fast, seed=0, runner=None: table3.run(
        total_requests=1000 if fast else 10_000, seed=seed,
        runner=runner),
    "table4": lambda fast, seed=0, runner=None: table4.run(
        scale=0.3 if fast else 1.0, seed=seed, runner=runner),
    "fig4": lambda fast, seed=0, runner=None: fig4.run(
        trials=300 if fast else 3000, seed=seed, runner=runner),
    "fig6": lambda fast, seed=0, runner=None: fig6.run(
        scale=0.2 if fast else 0.5, seed=seed, runner=runner),
    "fig8": lambda fast, seed=0, runner=None: fig8.run(
        scale=0.2 if fast else 0.5, n_intervals=8 if fast else 24,
        seed=seed, runner=runner),
    "fig9": lambda fast, seed=0, runner=None: fig9.run(
        scale=0.2 if fast else 0.5, seed=seed, runner=runner),
    "fig10": lambda fast, seed=0, runner=None: fig10.run(
        scale=0.15 if fast else 0.4, n_intervals=6 if fast else 16,
        seed=seed, runner=runner),
    "fig11": lambda fast, seed=0, runner=None: fig11.run(
        scale=0.2 if fast else 0.5, n_intervals=8 if fast else 24,
        seed=seed, runner=runner),
    "fig12": lambda fast, seed=0, runner=None: fig12.run(
        scale=0.15 if fast else 0.4, n_intervals=6 if fast else 12,
        seed=seed, runner=runner),
    "faults": lambda fast, seed=0, runner=None: faults.run(
        n_requests=240 if fast else 720, seed=seed, runner=runner),
    "controller": lambda fast, seed=0, runner=None: controller.run(
        scale=0.3 if fast else 0.4, seed=seed, runner=runner),
    "cluster": lambda fast, seed=0, runner=None: cluster.run(
        scale=0.2 if fast else 0.5, n_intervals=4 if fast else 8,
        seed=seed, runner=runner),
}


#: numeric columns worth charting per figure experiment
CHART_COLUMNS: Dict[str, List[str]] = {
    "fig4": ["P_k (measured)"],
    "fig6": ["total reads", "max req/s"],
    "fig8": ["QoS avg", "orig avg", "% delayed"],
    "fig9": ["QoS avg", "orig avg", "% delayed"],
    "fig11": ["% matched"],
    "fig12": ["online delay", "design-theoretic delay"],
    "faults": ["violation rate"],
    "controller": ["violation rate"],
    "cluster": ["violation rate"],
}


def _chart(name: str, result) -> str:
    """Sparkline view of a figure experiment's numeric columns."""
    from repro.experiments.plotting import series_chart

    columns = CHART_COLUMNS.get(name)
    if not columns:
        return ""
    rows = [r for r in result.rows
            if all(isinstance(r[result.headers.index(c)],
                              (int, float)) for c in columns)]
    if not rows:
        return ""
    x = [rows[0][0], rows[-1][0]] if rows else []
    series = {c: [float(r[result.headers.index(c)]) for r in rows]
              for c in columns}
    return series_chart([r[0] for r in rows], series,
                        title=f"[chart] {result.name}")


def main(argv: List[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description="Regenerate the paper's tables and figures.")
    parser.add_argument("experiments", nargs="*",
                        choices=[*RUNNERS, "ablations", "all"],
                        default=["all"],
                        help="which artefacts to regenerate")
    parser.add_argument("--fast", action="store_true",
                        help="smaller workloads for a quick look")
    parser.add_argument("--seed", type=int, default=0,
                        help="root RNG seed threaded to every runner")
    parser.add_argument("--jobs", type=int, default=1, metavar="N",
                        help="worker processes for the experiment cells "
                             "(results are byte-identical to --jobs 1)")
    parser.add_argument("--no-cache", action="store_true",
                        help="disable the on-disk result cache")
    parser.add_argument("--cache-prune", action="store_true",
                        help="prune the result cache (oldest entries "
                             "first) down to --cache-max-mb before "
                             "running; without --cache-max-mb, clears "
                             "it entirely")
    parser.add_argument("--cache-max-mb", type=float, default=None,
                        metavar="MB",
                        help="result-cache size cap; enforced after "
                             "the run (and before it with "
                             "--cache-prune)")
    parser.add_argument("--obs", action="store_true",
                        help="record observability (metrics, spans, "
                             "per-module series) and emit artefacts "
                             "next to the figure data; numeric "
                             "outputs are unchanged")
    parser.add_argument("--obs-dir", metavar="DIR", default=None,
                        help="where to write obs artefacts (default: "
                             "--out DIR, else .benchmarks/obs)")
    parser.add_argument("--chart", action="store_true",
                        help="append ASCII sparkline charts to figures")
    parser.add_argument("--out", metavar="DIR",
                        help="also save each rendering to DIR/<name>.txt")
    args = parser.parse_args(argv)
    out_dir = None
    if args.out:
        from pathlib import Path

        out_dir = Path(args.out)
        out_dir.mkdir(parents=True, exist_ok=True)

    def emit(name: str, result) -> None:
        text = result.render()
        print(text)
        if args.chart:
            chart = _chart(name, result)
            if chart:
                print()
                print(chart)
                text += "\n\n" + chart
        if out_dir is not None:
            (out_dir / f"{name}.txt").write_text(text + "\n")
        print()

    from repro.runner import ParallelRunner, ResultCache

    cache = None if args.no_cache else ResultCache()
    cap_bytes = None if args.cache_max_mb is None else \
        int(args.cache_max_mb * 1024 * 1024)
    if cache is not None and args.cache_prune:
        pruned = cache.prune(cap_bytes or 0)
        print(f"cache: pruned {pruned['removed']} entries "
              f"({pruned['removed_bytes']} bytes), "
              f"{pruned['kept_bytes']} bytes kept")
    runner = ParallelRunner(jobs=args.jobs, cache=cache)

    obs_dir = None
    if args.obs:
        from pathlib import Path

        obs_dir = Path(args.obs_dir or args.out or
                       Path(".benchmarks") / "obs")
        obs_dir.mkdir(parents=True, exist_ok=True)

    def observed_run(name: str, fn):
        """Run one experiment; with --obs, inside a recording session
        whose artefacts are written next to the figure data."""
        if obs_dir is None:
            return fn()
        import json

        from repro import obs
        from repro.obs import export as obs_export

        with obs.observed() as session:
            result = fn()
        payload = session.to_payload()
        (obs_dir / f"{name}.obs.json").write_text(
            json.dumps(payload, sort_keys=True) + "\n")
        (obs_dir / f"{name}.obs-summary.json").write_text(
            obs_export.to_json_summary(payload))
        trace = obs_export.to_chrome_trace(payload)
        obs_export.validate_chrome_trace(trace)
        (obs_dir / f"{name}.trace.json").write_text(
            json.dumps(trace, sort_keys=True) + "\n")
        (obs_dir / f"{name}.series.csv").write_text(
            obs_export.to_csv_series(payload))
        (obs_dir / f"{name}.prom").write_text(
            obs_export.to_prometheus(payload))
        print(f"[obs] wrote {obs_dir / name}.{{obs.json,"
              f"obs-summary.json,trace.json,series.csv,prom}}")
        return result

    wanted = args.experiments or ["all"]
    if "all" in wanted:
        wanted = [*RUNNERS, "ablations"]
    for name in wanted:
        if name == "ablations":
            for i, result in enumerate(observed_run(
                    "ablations",
                    lambda: ablations.run(seed=args.seed,
                                          runner=runner))):
                emit(f"ablation_{i}", result)
            continue
        emit(name, observed_run(
            name, lambda: RUNNERS[name](args.fast, seed=args.seed,
                                        runner=runner)))
    if cache is not None and cap_bytes is not None:
        cache.prune(cap_bytes)
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
