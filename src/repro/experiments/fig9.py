"""Figure 9 -- TPC-E deterministic QoS with online retrieval (§V-D).

Same structure as Figure 8, on the TPC-E-like workload with the
(13,3,1) design.  Paper shape: QoS avg and max pinned at 0.132507 ms;
original trace average close but above the guarantee (paper: 0.135145
ms mean), original max clearly above in every interval; delayed
requests ~2-3 % with ~0.03 ms average delay.
"""

from __future__ import annotations

from typing import Optional

from repro.experiments.common import ExperimentResult
from repro.experiments.fig8 import run_cells
from repro.runner import ParallelRunner

__all__ = ["run", "PAPER_NOTES"]

PAPER_NOTES = (
    "Paper shape: QoS avg/max = 0.132507 ms everywhere; original avg "
    "slightly above (0.135145 ms mean), original max clearly above; "
    "~2-3% delayed, ~0.03 ms average delay."
)


def run(scale: float = 0.5, seed: int = 0,
        runner: Optional[ParallelRunner] = None) -> ExperimentResult:
    """Regenerate Figure 9 on the TPC-E-like workload."""
    result = run_cells("fig9", "tpce", scale, 0, seed, n_devices=13,
                       title="Figure 9 -- TPC-E deterministic QoS "
                             "(online retrieval)",
                       runner=runner)
    result.notes = PAPER_NOTES
    return result
