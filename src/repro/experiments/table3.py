"""Table III -- response times of the allocation schemes (§V-C).

Three synthetic workloads (5 blocks / 0.133 ms, 14 / 0.266 ms,
27 / 0.399 ms; 10 000 requests each, blocks drawn from the 36-bucket
pool) run against RAID-1 mirrored, RAID-1 chained and the (9,3,1)
design-theoretic allocation.  The paper's headline: only the
design-theoretic scheme keeps every response inside the interval
(max <= M * 0.132507 ms); RAID-1 mirrored collapses as the request
size grows; chained sits in between.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.allocation.base import AllocationScheme
from repro.allocation.design_theoretic import DesignTheoreticAllocation
from repro.allocation.raid1 import Raid1Chained, Raid1Mirrored
from repro.experiments.common import ExperimentResult
from repro.flash.driver import BatchTracePlayer
from repro.flash.params import MSR_SSD_PARAMS
from repro.runner import Cell, ParallelRunner
from repro.traces.synthetic import TABLE3_WORKLOADS, synthetic_trace

__all__ = ["run", "schemes", "PAPER_NOTES"]

PAPER_NOTES = (
    "Paper shape: (9,3,1) max response == M*0.132507 in every row "
    "(guarantee met); RAID-1 mirrored worst and degrading with request "
    "size; RAID-1 chained in between; both baselines exceed the "
    "interval on max response."
)


def schemes(n_devices: int = 9, replication: int = 3,
            ) -> Dict[str, tuple]:
    """The three Table III schemes (Figure 7) with their drivers.

    The RAID baselines run the plain greedy I/O driver (least-loaded
    replica, no remapping) -- the smart retrieval is the proposed
    framework's contribution; the design-theoretic scheme uses the
    §III-C combined retrieval.
    """
    return {
        "RAID-1 Mirrored": (Raid1Mirrored(n_devices, replication),
                            "greedy"),
        "RAID-1 Chained": (Raid1Chained(n_devices, replication),
                           "greedy"),
        "(9,3,1) Design-theoretic": (
            DesignTheoreticAllocation.from_parameters(
                n_devices, replication), "combined"),
    }


def _cell_scheme(row_idx: int, scheme_name: str, total_requests: int,
                 seed: int, n_devices: int,
                 replication: int) -> Tuple[float, float, float]:
    """One (workload row, scheme) pair: (avg, std, max) response.

    The trace is regenerated in the worker from primitives -- every
    scheme in a row sees the identical trace (same seed), matching the
    former serial loop.
    """
    reqs, interval = TABLE3_WORKLOADS[row_idx]
    trace = synthetic_trace(reqs, interval,
                            total_requests=total_requests, seed=seed)
    alloc, mode = schemes(n_devices, replication)[scheme_name]
    player = BatchTracePlayer(alloc, interval, retrieval=mode)
    series, _ = player.play(trace.arrival_ms, trace.block)
    st = series.overall()
    return st.avg, st.std, st.max


def run(total_requests: int = 10_000, seed: int = 0,
        n_devices: int = 9, replication: int = 3,
        runner: Optional[ParallelRunner] = None) -> ExperimentResult:
    """Regenerate Table III (avg / std / max response per scheme)."""
    runner = runner or ParallelRunner()
    grid = [(row_idx, name)
            for row_idx in range(len(TABLE3_WORKLOADS))
            for name in schemes(n_devices, replication)]
    stats = runner.run([
        Cell("table3", f"row{row_idx}-{name}", _cell_scheme,
             (row_idx, name, total_requests, seed, n_devices,
              replication))
        for row_idx, name in grid])
    rows: List[List[object]] = []
    for (row_idx, name), (avg, std, mx) in zip(grid, stats):
        reqs, interval = TABLE3_WORKLOADS[row_idx]
        guarantee = (row_idx + 1) * MSR_SSD_PARAMS.read_ms
        rows.append([reqs, interval, name,
                     round(avg, 6), round(std, 6), round(mx, 6),
                     "yes" if mx <= guarantee + 1e-9 else "NO"])
    return ExperimentResult(
        name="Table III -- comparison of allocation schemes (ms)",
        headers=["req size", "interval", "scheme", "avg", "std", "max",
                 "within guarantee"],
        rows=rows,
        notes=PAPER_NOTES,
    )
