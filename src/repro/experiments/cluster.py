"""Cluster experiment -- sharded scale-out vs a single array.

Not a paper artefact: the paper's framework is a single flash array;
this family measures what the scale-out layer (:mod:`repro.cluster`)
adds.  The same Exchange-like workload plays through four stands:

* **single** -- one array, the §V-D pipeline (the baseline every
  other stand's per-array playback is byte-compatible with).
* **hash** -- a consistent-hash sharded cluster with cross-array
  replication of hot FIM patterns and least-loaded replica routing.
* **range** -- the same cluster under range sharding (contiguous
  block ranges), isolating the sharding function's effect on balance.
* **hash+kill** -- the hash cluster with one whole array crashed
  mid-run (array-scoped fault): mirrored reads fail over, home-only
  traffic on the dead array is lost and accounted, and the roll-up
  stays well-formed.

Shards execute as parallel-runner cells (one per array), so the
cluster stands exercise the same worker pool as every other
experiment family.
"""

from __future__ import annotations

from typing import List, Optional

from repro.cluster import ClusterConfig, ShardedCluster
from repro.experiments.common import ExperimentResult, play_workload
from repro.faults import FaultEvent, FaultSchedule
from repro.traces.exchange import exchange_like_trace

__all__ = ["run", "STANDS", "cluster_report"]

#: stand slug -> (n_arrays, sharding kind, kill an array mid-run)
STANDS = {
    "single": (1, "hash", False),
    "hash": (4, "hash", False),
    "range": (4, "range", False),
    "hash+kill": (4, "hash", True),
}

#: range sharding needs the block-space size; the Exchange-like model
#: draws blocks from a pool this bound comfortably covers
N_BLOCKS = 1 << 14


def make_config(stand: str, n_devices: int, seed: int) -> ClusterConfig:
    """The :class:`ClusterConfig` behind one stand slug."""
    n_arrays, kind, _ = STANDS[stand]
    return ClusterConfig(
        n_arrays=n_arrays, n_devices=n_devices,
        sharding=kind, n_blocks=N_BLOCKS,
        cross_replication=min(2, n_arrays), seed=seed)


def make_faults(stand: str, config: ClusterConfig,
                kill_at_ms: float) -> Optional[FaultSchedule]:
    """The mid-run whole-array crash for the ``+kill`` stand."""
    if not STANDS[stand][2]:
        return None
    return FaultSchedule(
        [FaultEvent("crash", config.n_arrays - 1, kill_at_ms,
                    scope="array")],
        n_modules=config.n_arrays * config.n_devices)


def cluster_report(stand: str, parts, n_devices: int, seed: int,
                   runner=None):
    """Play the workload through one stand's cluster."""
    config = make_config(stand, n_devices, seed)
    total_ms = max(float(p.arrival_ms[-1]) for p in parts if len(p))
    faults = make_faults(stand, config, kill_at_ms=total_ms / 2)
    cluster = ShardedCluster(config, faults=faults)
    return cluster.play(parts, runner=runner)


def run(scale: float = 0.5, n_intervals: int = 8,
        n_devices: int = 9, seed: int = 0,
        runner=None) -> ExperimentResult:
    """Cluster-wide QoS per stand, one workload."""
    parts = exchange_like_trace(scale=scale, seed=seed,
                                n_intervals=n_intervals)
    single = play_workload(parts, n_devices=n_devices, seed=seed)
    rows: List[List[object]] = []
    for stand in STANDS:
        if stand == "single":
            # the baseline pipeline itself, so the table's first row
            # is directly comparable with the fig8/table3 families
            overall = single.report.overall
            rows.append([
                stand, 1, "-", round(overall.avg, 6),
                round(overall.max, 6), round(overall.pct_delayed, 2),
                0, 0, 0, single.report.n_violations,
                round(single.report.violation_rate, 6)])
            continue
        report = cluster_report(stand, parts, n_devices, seed,
                                runner=runner)
        overall = report.overall
        mirrored = max((b.n_mirrored for b in report.audit),
                       default=0)
        rows.append([
            stand, len(report.arrays), report.config.sharding,
            round(overall.avg, 6), round(overall.max, 6),
            round(report.pct_delayed, 2), mirrored,
            sum(report.routed), report.n_unrouted,
            report.n_violations,
            round(report.violation_rate, 6)])
    return ExperimentResult(
        name=f"Cluster -- sharded scale-out vs single array "
             f"(Exchange-like, scale={scale})",
        headers=["stand", "arrays", "sharding", "avg resp ms",
                 "max resp ms", "% delayed", "mirrored blocks",
                 "routed reads", "unrouted", "violations",
                 "violation rate"],
        rows=rows,
        notes="Shards execute as parallel-runner cells; per-shard "
              "interval series merge into the cluster-wide stats "
              "(mergeable histogram state, so the roll-up equals a "
              "single report over the concatenated samples).  The "
              "+kill stand crashes one whole array mid-run: mirrored "
              "reads fail over via the replica router, unmirrored "
              "reads homed on the dead array are lost and counted "
              "as violations.",
    )
