"""The paper's worked example as a reproducible artefact.

Covers the illustrative figures of §III:

* **Table I** -- three applications joining at T0..T3 and the
  admission decisions;
* **Figure 3** -- nine non-conflicting block requests retrieved in a
  single access;
* **Figure 5** -- retrieval of each period's requests, including the
  T3 remapping (block (0,1,2) to device 2, block (1,3,8) to device 3).

Everything is computed by the actual framework code, so this doubles as
an end-to-end acceptance check of the §III machinery.
"""

from __future__ import annotations

from typing import List

from repro.core.applications import (
    Application,
    ApplicationAdmission,
    table1_scenario,
)
from repro.experiments.common import ExperimentResult
from repro.retrieval.maxflow import maxflow_retrieval
from repro.retrieval.policy import combined_retrieval

__all__ = ["run", "FIG3_REQUESTS"]

#: The nine non-conflicting requests of Figure 3.
FIG3_REQUESTS = (
    (0, 1, 2), (1, 2, 0), (2, 0, 1), (3, 8, 1), (4, 8, 0),
    (5, 7, 0), (6, 0, 3), (7, 0, 5), (8, 1, 3),
)


def run() -> ExperimentResult:
    """Regenerate the §III walkthrough (Table I + Figures 3 and 5)."""
    rows: List[List[object]] = []

    # --- Table I admission --------------------------------------------
    admission = ApplicationAdmission(replication=3, accesses=1)
    for name, size, period in (("app1", 2, 0), ("app2", 2, 1),
                               ("app3", 1, 2)):
        ok = admission.admit(Application(name, size), period=period)
        rows.append(["admission", f"T{period}", name,
                     f"size {size}", "admitted" if ok else "rejected",
                     f"total {admission.total_request_size}"])
    late = admission.admit(Application("app4", 1))
    rows.append(["admission", "-", "app4", "size 1",
                 "admitted" if late else "rejected", "system full"])

    # --- Figure 5 retrieval per period ---------------------------------
    for period, requests in table1_scenario().items():
        cands = [r.devices for r in requests]
        schedule = combined_retrieval(cands, 9)
        devices = ",".join(str(d) for d in schedule.assignment)
        remapped = sum(1 for r, d in zip(requests, schedule.assignment)
                       if d != r.devices[0])
        rows.append(["figure5", f"T{period}",
                     f"{len(requests)} requests",
                     f"{schedule.accesses} access(es)",
                     f"devices [{devices}]",
                     f"{remapped} remapped"])

    # --- Figure 3: nine non-conflicting requests -----------------------
    schedule = maxflow_retrieval(list(FIG3_REQUESTS), 9)
    rows.append(["figure3", "-", "9 requests",
                 f"{schedule.accesses} access(es)",
                 "all devices distinct"
                 if len(set(schedule.assignment)) == 9 else "CONFLICT",
                 ""])

    return ExperimentResult(
        name="Walkthrough -- paper §III worked example",
        headers=["artefact", "period", "subject", "result", "detail",
                 "note"],
        rows=rows,
        notes="Paper: apps 1-3 admitted filling S=5, app4 refused; "
              "T0-T2 retrieve in 1 access without remapping, T3 in 1 "
              "access after 2 remappings; Figure 3's nine requests fit "
              "one access.",
    )
