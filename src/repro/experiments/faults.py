"""Fault experiments -- QoS under module failures, per scheme.

Not a paper artefact: the paper argues (§III) that replicated
declustering buys fault tolerance alongside QoS, but never measures
degraded mode.  This family quantifies it.  For each allocation scheme
and each failure count ``f``, modules ``0..f-1`` crash at ``t = 0``
(:class:`repro.faults.FaultSchedule`), the same round-robin read trace
plays through the online driver with failure-aware retrieval and
failover, and the run reports response time and guarantee-violation
rate.

Expected shape (asserted by the golden snapshots and the integration
tests):

* **single** (unreplicated striping, ``c = 1``) -- every failure loses
  ``1/N`` of the data; the violation rate climbs strictly with ``f``.
* **chained** (RAID-1 chained declustering, ``c = 2``) -- one failure
  is absorbed by the surviving replicas; data loss starts at the first
  *adjacent* pair of failures.
* **design** (design-theoretic, ``c = 3``) -- stays within QoS until
  the failure set covers a whole design block (``f >= c``).
"""

from __future__ import annotations

from typing import List, Optional

from repro.allocation import (
    DesignTheoreticAllocation,
    Raid1Chained,
    SingleCopyAllocation,
)
from repro.experiments.common import ExperimentResult
from repro.faults import FaultSchedule
from repro.flash.batch import played_metrics
from repro.flash.driver import OnlineTracePlayer
from repro.flash.params import MSR_SSD_PARAMS
from repro.runner import Cell, ParallelRunner

__all__ = ["run", "SCHEMES", "make_allocation"]

#: scheme slug -> replication degree, in presentation order
SCHEMES = {"single": 1, "chained": 2, "design": 3}


def make_allocation(scheme: str, n_devices: int):
    """The allocation behind one scheme slug."""
    if scheme == "single":
        return SingleCopyAllocation(n_devices)
    if scheme == "chained":
        return Raid1Chained(n_devices, replication=2)
    if scheme == "design":
        return DesignTheoreticAllocation.from_parameters(n_devices, 3)
    raise ValueError(f"unknown scheme {scheme!r}")


def _cell_faults(scheme: str, n_failed: int, n_requests: int,
                 n_devices: int, seed: int) -> List[float]:
    """One (scheme, failure-count) cell.

    The trace is shared across cells -- round-robin buckets at a
    moderate arrival rate -- so the only variable is the fault
    schedule.  ``seed`` keeps the signature cache-friendly and leaves
    room for stochastic fault models later; the scripted crash
    schedule itself is deterministic.
    """
    del seed  # scripted schedule; kept in the cache key on purpose
    alloc = make_allocation(scheme, n_devices)
    schedule = FaultSchedule.crashes(range(n_failed)) \
        if n_failed else None
    player = OnlineTracePlayer(alloc, interval_ms=0.4,
                               accesses=1, params=MSR_SSD_PARAMS,
                               faults=schedule)
    gap = 0.25
    arrivals = [i * gap for i in range(n_requests)]
    buckets = [i % alloc.n_buckets for i in range(n_requests)]
    _, played = player.play(arrivals, buckets)
    guarantee = player.accesses * MSR_SSD_PARAMS.read_ms
    return list(played_metrics(played, guarantee))


def run(n_requests: int = 720, max_failures: int = 4,
        n_devices: int = 9, seed: int = 0,
        runner: Optional[ParallelRunner] = None) -> ExperimentResult:
    """Response time and violation rate vs failed-module count."""
    runner = runner or ParallelRunner()
    grid = [(scheme, f) for scheme in SCHEMES
            for f in range(max_failures + 1)]
    cells = [Cell("faults", f"{scheme}/f={f}", _cell_faults,
                  (scheme, f, n_requests, n_devices, seed))
             for scheme, f in grid]
    results = runner.run(cells)
    rows: List[List[object]] = []
    for (scheme, f), (avg_ms, pct_delayed, failed, rate) in zip(
            grid, results):
        rows.append([scheme, SCHEMES[scheme], f, round(avg_ms, 6),
                     round(pct_delayed, 2), int(failed),
                     round(rate, 6)])
    return ExperimentResult(
        name=f"Faults -- degraded-mode QoS vs failed modules "
             f"(N={n_devices})",
        headers=["scheme", "copies c", "failed modules",
                 "avg resp ms", "% delayed", "lost requests",
                 "violation rate"],
        rows=rows,
        notes="Failure-aware retrieval masks dead modules; the "
              "violation rate counts lost requests and guarantee "
              "misses.  Replication absorbs failures until the "
              "degree is exhausted; unreplicated striping degrades "
              "with every failure.",
    )
