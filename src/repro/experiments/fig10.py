"""Figure 10 -- statistical QoS vs epsilon (§V-E).

Sweeping the violation budget ``ε`` on both workloads with online
retrieval: (a,c) the percentage of delayed requests falls as ``ε``
grows, while (b,d) the average response time rises -- conflicting
requests that deterministic QoS would hold back are allowed to queue.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.experiments.common import ExperimentResult, play_workload
from repro.traces.exchange import exchange_like_trace
from repro.traces.records import Trace
from repro.traces.tpce import tpce_like_trace

__all__ = ["run", "run_workload", "DEFAULT_EPSILONS"]

DEFAULT_EPSILONS = (0.0, 0.0001, 0.0005, 0.001, 0.005, 0.02)


def run_workload(parts: Sequence[Trace], n_devices: int, label: str,
                 epsilons: Sequence[float] = DEFAULT_EPSILONS,
                 ) -> List[List[object]]:
    """Sweep ``epsilons`` over one workload; returns result rows."""
    rows: List[List[object]] = []
    for eps in epsilons:
        run_ = play_workload(parts, n_devices=n_devices, epsilon=eps,
                             mode="online")
        st = run_.report.overall
        rows.append([label, eps, round(st.pct_delayed, 3),
                     round(st.avg, 6), round(st.max, 6)])
    return rows


def run(scale: float = 0.4, n_intervals: int = 16, seed: int = 0,
        epsilons: Sequence[float] = DEFAULT_EPSILONS) -> ExperimentResult:
    """Regenerate Figure 10 (both workloads, ε sweep)."""
    exch = exchange_like_trace(scale=scale, seed=seed,
                               n_intervals=n_intervals)
    tpce = tpce_like_trace(scale=scale, seed=seed)
    rows = (run_workload(exch, 9, "exchange", epsilons)
            + run_workload(tpce, 13, "tpce", epsilons))
    return ExperimentResult(
        name="Figure 10 -- statistical QoS vs epsilon",
        headers=["workload", "epsilon", "% delayed", "avg response",
                 "max response"],
        rows=rows,
        notes=("Paper shape: %% delayed monotonically decreases with "
               "epsilon; average response time increases."),
    )
