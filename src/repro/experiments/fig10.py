"""Figure 10 -- statistical QoS vs epsilon (§V-E).

Sweeping the violation budget ``ε`` on both workloads with online
retrieval: (a,c) the percentage of delayed requests falls as ``ε``
grows, while (b,d) the average response time rises -- conflicting
requests that deterministic QoS would hold back are allowed to queue.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.experiments.common import ExperimentResult, play_workload
from repro.experiments.fig8 import make_parts
from repro.runner import Cell, ParallelRunner
from repro.traces.records import Trace

__all__ = ["run", "run_workload", "DEFAULT_EPSILONS"]

DEFAULT_EPSILONS = (0.0, 0.0001, 0.0005, 0.001, 0.005, 0.02)


def _cell_epsilon(workload: str, scale: float, n_intervals: int,
                  seed: int, n_devices: int,
                  eps: float) -> Tuple[float, float, float]:
    """One sweep point: (pct_delayed, avg, max) at this ``ε``."""
    parts = make_parts(workload, scale, n_intervals, seed)
    run_ = play_workload(parts, n_devices=n_devices, epsilon=eps,
                         mode="online")
    st = run_.report.overall
    return st.pct_delayed, st.avg, st.max


def run_workload(parts: Sequence[Trace], n_devices: int, label: str,
                 epsilons: Sequence[float] = DEFAULT_EPSILONS,
                 ) -> List[List[object]]:
    """Sweep ``epsilons`` over one workload; returns result rows."""
    rows: List[List[object]] = []
    for eps in epsilons:
        run_ = play_workload(parts, n_devices=n_devices, epsilon=eps,
                             mode="online")
        st = run_.report.overall
        rows.append([label, eps, round(st.pct_delayed, 3),
                     round(st.avg, 6), round(st.max, 6)])
    return rows


def run(scale: float = 0.4, n_intervals: int = 16, seed: int = 0,
        epsilons: Sequence[float] = DEFAULT_EPSILONS,
        runner: Optional[ParallelRunner] = None) -> ExperimentResult:
    """Regenerate Figure 10 (both workloads, ε sweep)."""
    runner = runner or ParallelRunner()
    sweep = [(label, n_dev, eps)
             for label, n_dev in (("exchange", 9), ("tpce", 13))
             for eps in epsilons]
    points = runner.run([
        Cell("fig10", f"{label}-eps={eps}", _cell_epsilon,
             (label, scale, n_intervals, seed, n_dev, eps))
        for label, n_dev, eps in sweep])
    rows = [[label, eps, round(pct, 3), round(avg, 6), round(mx, 6)]
            for (label, _, eps), (pct, avg, mx) in zip(sweep, points)]
    return ExperimentResult(
        name="Figure 10 -- statistical QoS vs epsilon",
        headers=["workload", "epsilon", "% delayed", "avg response",
                 "max response"],
        rows=rows,
        notes=("Paper shape: %% delayed monotonically decreases with "
               "epsilon; average response time increases."),
    )
