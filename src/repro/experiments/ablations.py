"""Ablation studies on the framework's design choices.

Not paper artefacts, but the studies DESIGN.md calls out:

* **Copy count** -- guarantee capacity vs ``c``.
* **Device count** -- how capacity scales with ``N`` at fixed ``c``.
* **Allocation zoo** -- the §II-B2 scheme survey under arbitrary
  batches, and **query types** -- the same schemes under range /
  arbitrary queries (the paper's qualitative ranking, measured).
* **Retrieval cost** -- DTR vs max-flow wall time per batch size.
* **FIM support threshold** -- match rate vs mining cost.
* **Write interference** -- QoS erosion under replica-consistent
  writes.
* **Failure degradation** and **rebuild trade-off** -- the fault
  tolerance replication buys.
* **Heterogeneous retrieval** -- speed-aware scheduling on mixed
  arrays.
* **Intra-module parallelism** -- packages behind a channel bus.
* **Rule prefetching** -- predictive power of mined pairs.
* **Flash vs HDD** -- the paper's §II-A motivation, measured.
* **Adaptive epsilon** -- closed-loop tuning of statistical QoS.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.runner import ParallelRunner

import numpy as np

from repro.allocation import (
    DependentPeriodicAllocation,
    DesignTheoreticAllocation,
    OrthogonalAllocation,
    PartitionedAllocation,
    Raid1Chained,
    Raid1Mirrored,
    RandomDuplicateAllocation,
)
from repro.core.guarantees import guarantee_capacity
from repro.experiments.common import ExperimentResult
from repro.flash.params import MSR_SSD_PARAMS
from repro.graph import kernels
from repro.mining.apriori import apriori
from repro.mining.matching import FIMBlockMatcher
from repro.mining.transactions import transactions_from_trace
from repro.retrieval.design_theoretic import design_theoretic_retrieval
from repro.retrieval.maxflow import maxflow_retrieval
from repro.traces.exchange import exchange_like_trace

__all__ = ["copy_count", "device_count", "allocation_zoo",
           "query_types", "retrieval_cost", "fim_support", "fim_history",
           "write_interference", "failure_degradation",
           "heterogeneous_retrieval", "intra_module_parallelism",
           "rule_prefetching", "rebuild_tradeoff", "flash_vs_hdd",
           "adaptive_epsilon", "run"]


def copy_count(n_devices: int = 9, max_m: int = 3) -> ExperimentResult:
    """Guarantee capacity S(M) for c = 2 vs c = 3 on one array size."""
    rows: List[List[object]] = []
    for c in (2, 3):
        for m in range(1, max_m + 1):
            rows.append([c, m, guarantee_capacity(m, c)])
    return ExperimentResult(
        name="Ablation -- copy count vs guarantee capacity",
        headers=["copies c", "accesses M", "S(M)"],
        rows=rows,
        notes="S grows linearly in c at fixed M: more copies buy "
              "admission capacity at storage cost.",
    )


def device_count(replication: int = 3,
                 device_counts=(7, 9, 13, 15, 19, 21)) -> ExperimentResult:
    """Buckets supported and capacity for growing arrays."""
    rows: List[List[object]] = []
    for n in device_counts:
        alloc = DesignTheoreticAllocation.from_parameters(n, replication)
        rows.append([n, alloc.n_buckets,
                     guarantee_capacity(1, replication),
                     guarantee_capacity(2, replication)])
    return ExperimentResult(
        name="Ablation -- device count",
        headers=["devices N", "buckets", "S(1)", "S(2)"],
        rows=rows,
        notes="Bucket support grows as N(N-1)/(c-1); the per-interval "
              "guarantee S depends only on c and M.",
    )


def _batch_accesses(batches: List[List], n_devices: int) -> List[int]:
    """Optimal access count per batch, in bulk.

    On the kernel path all (equal-length) batches are solved in one
    vectorized :func:`repro.graph.kernels.minimum_accesses_many` call;
    otherwise one exact max-flow per batch.  Identical values either
    way: a schedule found at the first feasible level has maximum load
    exactly that level, so ``maxflow_retrieval(...).accesses`` *is*
    the minimum feasible access count.
    """
    if (kernels.ENABLED and batches
            and n_devices <= kernels.BITSET_MAX_DEVICES
            and len({len(b) for b in batches}) == 1):
        masks = kernels.batch_mask_array(batches, n_devices)
        return [int(a) for a in
                kernels.minimum_accesses_many(masks, n_devices)]
    return [maxflow_retrieval(b, n_devices).accesses for b in batches]


def allocation_zoo(batch_size: int = 9, trials: int = 400,
                   seed: int = 0) -> ExperimentResult:
    """Worst/mean optimal access count per allocation scheme.

    Random batches of ``batch_size`` distinct buckets, scheduled
    optimally (max-flow); the spread across schemes shows why the
    paper picks design-theoretic allocation.
    """
    n = 9
    schemes: Dict[str, object] = {
        "design-theoretic": DesignTheoreticAllocation.from_parameters(n, 3),
        "raid1-mirrored": Raid1Mirrored(n, 3),
        "raid1-chained": Raid1Chained(n, 3),
        "rda": RandomDuplicateAllocation(n, 3, n_buckets=36, seed=seed),
        "partitioned": PartitionedAllocation(n, 3),
        "periodic": DependentPeriodicAllocation(n, 3),
        "orthogonal(c=2)": OrthogonalAllocation(n),
    }
    rng = np.random.default_rng(seed)
    rows: List[List[object]] = []
    for name, alloc in schemes.items():
        # Draw every trial first (RNG stream unchanged), then solve
        # the whole set in one vectorized kernel call.
        batches = []
        for _ in range(trials):
            picks = rng.choice(alloc.n_buckets,
                               size=min(batch_size, alloc.n_buckets),
                               replace=False)
            batches.append([alloc.devices_for(int(b)) for b in picks])
        accs = _batch_accesses(batches, n)
        rows.append([name, alloc.replication, max(accs),
                     round(sum(accs) / trials, 3)])
    return ExperimentResult(
        name=f"Ablation -- allocation zoo (batch={batch_size}, N={n})",
        headers=["scheme", "copies", "worst accesses", "mean accesses"],
        rows=rows,
        notes="Optimal (max-flow) retrieval for every scheme; the "
              "difference is purely the placement.",
    )


def query_types(batch_size: int = 9, trials: int = 400,
                seed: int = 0) -> ExperimentResult:
    """Scheme performance per query type (paper §II-B2's ranking).

    *Arbitrary* queries draw random buckets; *range* queries draw
    consecutive bucket runs.  The paper's qualitative claims under
    test: partitioned and dependent-periodic allocation "perform well"
    for range queries but degrade on arbitrary ones, while the
    design-theoretic scheme's guarantee is query-type independent.
    """
    n = 9
    schemes: Dict[str, object] = {
        "design-theoretic": DesignTheoreticAllocation.from_parameters(
            n, 3),
        "partitioned": PartitionedAllocation(n, 3),
        "periodic": DependentPeriodicAllocation(n, 3),
        "raid1-mirrored": Raid1Mirrored(n, 3),
        "rda": RandomDuplicateAllocation(n, 3, n_buckets=36, seed=seed),
    }
    rng = np.random.default_rng(seed)
    rows: List[List[object]] = []
    for name, alloc in schemes.items():
        batches: Dict[str, List[List]] = {"arbitrary": [], "range": []}
        for _ in range(trials):
            arb = rng.choice(alloc.n_buckets, size=batch_size,
                             replace=False)
            start = int(rng.integers(0, alloc.n_buckets))
            rng_query = [(start + j) % alloc.n_buckets
                         for j in range(batch_size)]
            for kind, picks in (("arbitrary", arb),
                                ("range", rng_query)):
                batches[kind].append(
                    [alloc.devices_for(int(b)) for b in picks])
        stats = {kind: _batch_accesses(batches[kind], n)
                 for kind in ("arbitrary", "range")}
        rows.append([
            name,
            round(float(np.mean(stats["range"])), 3),
            int(np.max(stats["range"])),
            round(float(np.mean(stats["arbitrary"])), 3),
            int(np.max(stats["arbitrary"])),
        ])
    return ExperimentResult(
        name=f"Ablation -- query types (batch={batch_size}, N={n})",
        headers=["scheme", "range mean", "range worst",
                 "arbitrary mean", "arbitrary worst"],
        rows=rows,
        notes="§II-B2 ranking: periodic/partitioned strong on range "
              "queries but weaker on arbitrary ones; design-theoretic "
              "holds its guarantee for both.",
    )


def retrieval_cost(sizes=(5, 14, 27, 50, 100), trials: int = 50,
                   seed: int = 0) -> ExperimentResult:
    """Wall time of DTR vs max-flow per batch size (§III-C trade-off)."""
    alloc = DesignTheoreticAllocation.from_parameters(9, 3)
    blocks = [alloc.devices_for(b) for b in range(alloc.n_buckets)]
    rng = np.random.default_rng(seed)
    rows: List[List[object]] = []
    for b in sizes:
        batches = [[blocks[i] for i in rng.integers(0, 36, size=b)]
                   for _ in range(trials)]
        t0 = time.perf_counter()
        for batch in batches:
            design_theoretic_retrieval(batch, 9)
        t_dtr = (time.perf_counter() - t0) / trials
        t0 = time.perf_counter()
        for batch in batches:
            maxflow_retrieval(batch, 9)
        t_flow = (time.perf_counter() - t0) / trials
        rows.append([b, round(1e6 * t_dtr, 1), round(1e6 * t_flow, 1),
                     round(t_flow / t_dtr, 2) if t_dtr else ""])
    return ExperimentResult(
        name="Ablation -- retrieval cost (DTR vs max-flow)",
        headers=["batch size", "DTR (us)", "max-flow (us)", "ratio"],
        rows=rows,
        notes="The §III-C policy runs DTR first and pays max-flow "
              "only on suboptimal outcomes.  With the specialised "
              "capacitated matcher (docs/performance.md) the exact "
              "solver runs at DTR-like cost at these batch sizes, so "
              "the paper's O(b) vs O(b^3) gap is no longer the "
              "binding concern in this implementation.",
    )


def fim_support(supports=(1, 2, 3, 5), scale: float = 0.5,
                seed: int = 0) -> ExperimentResult:
    """Match rate and mining time vs minimum support (Exchange-like)."""
    parts = exchange_like_trace(scale=scale, seed=seed, n_intervals=8)
    alloc = DesignTheoreticAllocation.from_parameters(9, 3)
    matcher = FIMBlockMatcher(alloc)
    rows: List[List[object]] = []
    for sup in supports:
        rates, secs = [], 0.0
        prev = None
        for part in parts:
            if prev is not None:
                txns = transactions_from_trace(prev, 0.133)
                t0 = time.perf_counter()
                res = matcher.match(apriori(txns, sup, max_size=2))
                secs += time.perf_counter() - t0
                rates.append(res.match_rate(part.block))
            prev = part
        rows.append([sup, round(100 * float(np.mean(rates)), 2),
                     round(secs, 4)])
    return ExperimentResult(
        name="Ablation -- FIM minimum support",
        headers=["min support", "mean % matched", "total mining (s)"],
        rows=rows,
        notes="Higher support prunes rare pairs: cheaper mining, "
              "lower match coverage (paper §IV-A / Table IV).",
    )


def write_interference(write_fractions=(0.0, 0.05, 0.1, 0.2),
                       rate_per_ms: float = 12.0,
                       duration_ms: float = 100.0,
                       seed: int = 0) -> ExperimentResult:
    """Deterministic QoS erosion under replica-consistent writes.

    Writes occupy all ``c`` replicas (and pay program latency), so the
    same arrival rate produces more conflicts as the write fraction
    grows -- the cost of replication the paper's read-only evaluation
    leaves implicit.
    """
    from repro.flash.driver import OnlineTracePlayer

    alloc = DesignTheoreticAllocation.from_parameters(9, 3)
    rng = np.random.default_rng(seed)
    n = int(rate_per_ms * duration_ms)
    arrivals = np.sort(rng.uniform(0, duration_ms, size=n))
    buckets = rng.integers(0, 36, size=n)
    rows: List[List[object]] = []
    for wf in write_fractions:
        reads = rng.random(n) >= wf
        player = OnlineTracePlayer(alloc, 0.133)
        series, _ = player.play(list(arrivals), list(buckets),
                                reads=list(reads))
        st = series.overall()
        rows.append([wf, round(st.pct_delayed, 2),
                     round(st.avg_delay, 4), round(st.avg, 5),
                     round(st.max, 5)])
    return ExperimentResult(
        name="Ablation -- write interference (deterministic QoS)",
        headers=["write fraction", "% delayed", "avg delay (ms)",
                 "avg response", "max response"],
        rows=rows,
        notes="Writes hit every replica: conflicts and delays grow "
              "with the write share at a fixed arrival rate.",
    )


def failure_degradation(max_failures: int = 2, batch_size: int = 5,
                        trials: int = 400,
                        seed: int = 0) -> ExperimentResult:
    """Guarantee and measured retrieval cost under device failures."""
    from repro.allocation.degraded import (
        DegradedAllocation,
        degraded_capacity,
    )

    base = DesignTheoreticAllocation.from_parameters(9, 3)
    rng = np.random.default_rng(seed)
    rows: List[List[object]] = []
    for f in range(max_failures + 1):
        alloc = (DegradedAllocation(base, range(f)) if f else base)
        batches = []
        for _ in range(trials):
            picks = rng.choice(base.n_buckets, size=batch_size,
                               replace=False)
            batches.append([alloc.devices_for(int(b)) for b in picks])
        accs = _batch_accesses(batches, base.n_devices)
        rows.append([f, degraded_capacity(1, 3, f),
                     degraded_capacity(2, 3, f), max(accs),
                     round(sum(accs) / trials, 3)])
    return ExperimentResult(
        name="Ablation -- failure degradation ((9,3,1), batch=5)",
        headers=["failed devices", "S(1)", "S(2)", "worst accesses",
                 "mean accesses"],
        rows=rows,
        notes="The design's pairwise balance survives restriction: "
              "capacity degrades to the (c-f)-copy guarantee instead "
              "of collapsing.",
    )


def heterogeneous_retrieval(slow_factor: float = 3.0,
                            n_slow: int = 3, batch_size: int = 9,
                            trials: int = 300,
                            seed: int = 0) -> ExperimentResult:
    """Speed-aware vs speed-oblivious scheduling on a mixed array.

    A mixed array (e.g. replacement modules of a different grade) has
    ``n_slow`` devices ``slow_factor``x slower.  The classic max-flow
    scheduler balances *counts*; the generalized scheduler
    (Altiparmak & Tosun [14]) balances *time* and wins on makespan.
    """
    from repro.retrieval.generalized import generalized_retrieval

    alloc = DesignTheoreticAllocation.from_parameters(9, 3)
    blocks = [alloc.devices_for(b) for b in range(36)]
    base = MSR_SSD_PARAMS.read_ms
    service = [base * slow_factor if d < n_slow else base
               for d in range(9)]
    rng = np.random.default_rng(seed)
    naive_total = general_total = 0.0
    naive_worst = general_worst = 0.0
    for _ in range(trials):
        picks = rng.choice(36, size=batch_size, replace=False)
        cands = [blocks[int(b)] for b in picks]
        naive = maxflow_retrieval(cands, 9)
        loads = [0.0] * 9
        for d in naive.assignment:
            loads[d] += service[d]
        naive_ms = max(loads)
        general = generalized_retrieval(cands, 9, service)
        naive_total += naive_ms
        general_total += general.makespan
        naive_worst = max(naive_worst, naive_ms)
        general_worst = max(general_worst, general.makespan)
    rows = [
        ["count-balanced max-flow", round(naive_total / trials, 4),
         round(naive_worst, 4)],
        ["generalized (speed-aware)", round(general_total / trials, 4),
         round(general_worst, 4)],
    ]
    return ExperimentResult(
        name=f"Ablation -- heterogeneous retrieval "
             f"({n_slow} devices {slow_factor}x slower)",
        headers=["scheduler", "mean makespan (ms)",
                 "worst makespan (ms)"],
        rows=rows,
        notes="Speed-oblivious balancing parks work on slow modules; "
              "the generalized scheduler minimises completion time.",
    )


def intra_module_parallelism(package_counts=(1, 2, 4, 8),
                             n_requests: int = 32) -> ExperimentResult:
    """Channel-level flash geometry: packages per module vs throughput.

    Array reads overlap across packages while transfers serialise on
    the channel bus, so module throughput climbs from ``1/read_ms``
    toward ``1/transfer_ms`` as packages are added (paper Fig 1's
    module internals).
    """
    from repro.flash.array import IORequest
    from repro.flash.geometry import ChannelFlashModule
    from repro.sim import Environment

    rows: List[List[object]] = []
    for packages in package_counts:
        env = Environment()
        module = ChannelFlashModule(env, 0, n_packages=packages)
        ios = []
        for i in range(n_requests):
            io = IORequest(arrival=0.0, bucket=i)
            io.done = env.event()
            module.submit(io)
            ios.append(io)
        env.run()
        makespan = max(io.completed_at for io in ios)
        rows.append([packages, round(makespan, 4),
                     round(n_requests / makespan, 2)])
    return ExperimentResult(
        name="Ablation -- intra-module parallelism",
        headers=["packages", "makespan (ms)", "throughput (req/ms)"],
        rows=rows,
        notes="Throughput saturates at the channel-transfer bound "
              "1/transfer_ms once array reads fully overlap.",
    )


def rule_prefetching(scale: float = 0.3,
                     min_confidence: float = 0.6,
                     seed: int = 0) -> ExperimentResult:
    """Association-rule prefetching on both workload models.

    Rules mined from interval ``i-1`` prefetch blocks during interval
    ``i``; the hit rate measures how much *predictive* power the
    frequent pairs carry -- high for the TPC-E-like hot set, near zero
    for the Exchange-like mail traffic (the Figure 11 gap, seen from a
    different angle).
    """
    from repro.mining.prefetch import simulate_prefetching
    from repro.traces.tpce import tpce_like_trace

    rows: List[List[object]] = []
    workloads = [
        ("exchange", exchange_like_trace(scale=scale, seed=seed,
                                         n_intervals=8)),
        ("tpce", tpce_like_trace(scale=scale, seed=seed)),
    ]
    for label, parts in workloads:
        st = simulate_prefetching(parts, min_confidence=min_confidence)
        rows.append([label, st.total, st.prefetches,
                     round(100 * st.hit_rate, 2),
                     round(100 * st.accuracy, 2)])
    return ExperimentResult(
        name="Ablation -- association-rule prefetching",
        headers=["workload", "requests", "prefetches", "hit rate %",
                 "prefetch accuracy %"],
        rows=rows,
        notes="Mined-rule prefetching pays off only where patterns "
              "persist across intervals (TPC-E), echoing Fig 11.",
    )


def rebuild_tradeoff(parallelisms=(1, 2, 4, 8),
                     blocks_per_bucket: int = 20,
                     rate_per_ms: float = 40.0,
                     duration_ms: float = 50.0,
                     seed: int = 0) -> ExperimentResult:
    """Rebuild speed vs foreground interference after a module failure.

    Replication enables online rebuild of a failed module from the
    surviving replicas; more parallel rebuild streams shorten the
    reduced-redundancy window but steal more service slots from
    foreground reads -- until the replacement module's program
    throughput floors the rebuild time.
    """
    from repro.flash.rebuild import RebuildSimulator

    alloc = DesignTheoreticAllocation.from_parameters(9, 3)
    rng = np.random.default_rng(seed)
    n = int(rate_per_ms * duration_ms)
    arrivals = np.sort(rng.uniform(0, duration_ms, n))
    buckets = rng.integers(0, 36, n)
    rows: List[List[object]] = []
    for par in parallelisms:
        sim = RebuildSimulator(alloc, failed_device=0,
                               blocks_per_bucket=blocks_per_bucket,
                               parallelism=par)
        rep = sim.run(list(arrivals), list(buckets))
        rows.append([par, round(rep.rebuild_time_ms, 1), rep.n_rebuilt,
                     round(rep.foreground_slowdown, 4),
                     round(rep.foreground.max, 4)])
    return ExperimentResult(
        name="Ablation -- rebuild speed vs foreground impact",
        headers=["rebuild streams", "rebuild time (ms)",
                 "blocks rebuilt", "fg slowdown", "fg max (ms)"],
        rows=rows,
        notes="Faster rebuild shortens the reduced-redundancy window "
              "at the cost of foreground latency; the floor is the "
              "replacement module's program throughput.",
    )


def flash_vs_hdd(requests_per_interval: int = 5,
                 interval_ms: float = 10.0,
                 total_requests: int = 3000,
                 seed: int = 0) -> ExperimentResult:
    """The paper's motivation claim (§II-A), measured.

    The *same* design-theoretic allocation and batch scheduler on a
    flash array vs a 15K-RPM HDD array: flash responses are flat at the
    service time (deterministic guarantees possible); HDD responses
    scatter over seek + rotational latency (only best effort possible).
    """
    from repro.flash.driver import BatchTracePlayer
    from repro.flash.hdd import ENTERPRISE_15K, HDDModule
    from repro.traces.synthetic import synthetic_trace

    alloc = DesignTheoreticAllocation.from_parameters(9, 3)
    trace = synthetic_trace(requests_per_interval, interval_ms,
                            total_requests=total_requests, seed=seed)
    rows: List[List[object]] = []
    players = {
        "flash array": BatchTracePlayer(alloc, interval_ms),
        "15K-RPM HDD array": BatchTracePlayer(
            alloc, interval_ms,
            module_factory=lambda env, i: HDDModule(
                env, i, ENTERPRISE_15K, seed=seed)),
    }
    for label, player in players.items():
        series, _ = player.play(trace.arrival_ms, trace.block)
        st = series.overall()
        cov = st.std / st.avg if st.avg else 0.0
        rows.append([label, round(st.avg, 5), round(st.std, 5),
                     round(st.max, 5), round(cov, 4)])
    return ExperimentResult(
        name="Ablation -- flash vs HDD (paper §II-A motivation)",
        headers=["array", "avg (ms)", "std (ms)", "max (ms)",
                 "coeff. of variation"],
        rows=rows,
        notes="Identical allocation and scheduling; only the medium "
              "differs.  Flash: zero variance (guarantees possible); "
              "HDD: seek+rotation scatter (best effort only).",
    )


def adaptive_epsilon(target_pct: float = 2.0, scale: float = 0.4,
                     n_intervals: int = 16,
                     seed: int = 1) -> ExperimentResult:
    """Closed-loop epsilon tuning toward a delayed-%% target.

    The paper leaves choosing epsilon to the operator (§V-E); an AIMD
    controller holds the delayed fraction near a target across the
    Exchange-like workload's varying intervals.
    """
    from repro.core.adaptive import AdaptiveEpsilonController

    parts = exchange_like_trace(scale=scale, seed=seed,
                                n_intervals=n_intervals)
    ctrl = AdaptiveEpsilonController(target_pct, epsilon0=1e-4,
                                     gain=0.6)
    res = ctrl.drive(parts, n_devices=9)
    rows: List[List[object]] = [
        [i, f"{e:.6f}", round(d, 2), round(r, 6)]
        for i, (e, d, r) in enumerate(zip(res.epsilons,
                                          res.delayed_pct,
                                          res.avg_response))]
    mean_tail = float(np.mean(res.delayed_pct[2:]))
    rows.append(["mean(>2)", "", round(mean_tail, 2), ""])
    return ExperimentResult(
        name=f"Ablation -- adaptive epsilon (target "
             f"{target_pct}%% delayed)",
        headers=["interval", "epsilon", "% delayed", "avg response"],
        rows=rows,
        notes="AIMD feedback keeps the delayed fraction near the "
              "target despite interval-to-interval workload swings.",
    )


def fim_history(history_lengths=(1, 2, 4, 8), scale: float = 0.5,
                decay: float = 0.6, seed: int = 0) -> ExperimentResult:
    """Mining-history depth vs FIM match rate (paper §V-D).

    "Longer history can be used for better matching of the design
    blocks to the data blocks": mine the last ``H`` intervals with
    exponential decay instead of only the previous one, and measure
    the Figure-11 match rate on the Exchange-like workload.
    """
    parts = exchange_like_trace(scale=scale, seed=seed, n_intervals=12)
    alloc = DesignTheoreticAllocation.from_parameters(9, 3)
    matcher = FIMBlockMatcher(alloc)
    mined = [apriori(transactions_from_trace(p, 0.133), 1, max_size=2)
             for p in parts]
    rows: List[List[object]] = []
    for h in history_lengths:
        rates = []
        for i in range(1, len(parts)):
            history = mined[max(0, i - h):i]
            res = matcher.match_history(history, decay=decay)
            rates.append(res.match_rate(parts[i].block))
        rows.append([h, round(100 * float(np.mean(rates)), 2)])
    return ExperimentResult(
        name="Ablation -- FIM history depth",
        headers=["history intervals", "mean % matched"],
        rows=rows,
        notes="Deeper history recognises more recurring blocks "
              "(diminishing returns as old patterns expire).",
    )


def _cell_ablation(name: str,
                   kwargs: Dict[str, int]) -> ExperimentResult:
    """Run one ablation by name (module-level, so cells pickle)."""
    return globals()[name](**kwargs)


def run(seed: int = 0,
        runner: "Optional[ParallelRunner]" = None,
        ) -> List[ExperimentResult]:
    """All ablations with default parameters, seeded from one root.

    ``copy_count``, ``device_count`` and ``intra_module_parallelism``
    are exhaustive (no sampling), so they take no seed.
    """
    from repro.runner import Cell, ParallelRunner

    runner = runner or ParallelRunner()
    specs = [("copy_count", {}), ("device_count", {}),
             ("allocation_zoo", {"seed": seed}),
             ("query_types", {"seed": seed}),
             ("retrieval_cost", {"seed": seed}),
             ("fim_support", {"seed": seed}),
             ("fim_history", {"seed": seed}),
             ("write_interference", {"seed": seed}),
             ("failure_degradation", {"seed": seed}),
             ("heterogeneous_retrieval", {"seed": seed}),
             ("intra_module_parallelism", {}),
             ("rule_prefetching", {"seed": seed}),
             ("rebuild_tradeoff", {"seed": seed}),
             ("flash_vs_hdd", {"seed": seed}),
             ("adaptive_epsilon", {"seed": seed + 1})]
    # retrieval_cost and fim_support time wall clock in-cell, so they
    # are measurements of this host, not cacheable pure functions.
    timed = {"retrieval_cost", "fim_support"}
    return runner.run([
        Cell("ablations", name, _cell_ablation, (name, kwargs),
             cacheable=name not in timed)
        for name, kwargs in specs])
