"""ASCII rendering of experiment series.

The environment has no plotting stack, so the figure experiments render
as text: a compact unicode bar chart per series and sparklines for
interval traces.  Used by ``repro-experiments`` output and handy in
notebooks/CI logs.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

__all__ = ["bar_chart", "sparkline", "series_chart"]

_SPARK = "▁▂▃▄▅▆▇█"
_BAR = "█"


def _scale(values: Sequence[float], levels: int) -> List[int]:
    lo = min(values)
    hi = max(values)
    if hi - lo < 1e-12:
        return [0 for _ in values]
    return [int((v - lo) / (hi - lo) * (levels - 1) + 1e-9)
            for v in values]


def sparkline(values: Sequence[float]) -> str:
    """One-line unicode sparkline (min..max auto-scaled)."""
    if not values:
        return ""
    return "".join(_SPARK[i] for i in _scale(values, len(_SPARK)))


def bar_chart(labels: Sequence[object], values: Sequence[float],
              width: int = 40, title: str = "",
              fmt: str = "{:.4g}") -> str:
    """Horizontal bar chart, one row per (label, value)."""
    if len(labels) != len(values):
        raise ValueError("labels and values must align")
    if not values:
        return title
    peak = max(values)
    label_w = max(len(str(l)) for l in labels)
    lines = [title] if title else []
    for label, value in zip(labels, values):
        bar = _BAR * (int(value / peak * width + 1e-9) if peak > 0
                      else 0)
        lines.append(f"{str(label).rjust(label_w)} | "
                     f"{bar} {fmt.format(value)}")
    return "\n".join(lines)


def series_chart(x: Sequence[object],
                 series: dict,
                 width: int = 60, title: str = "") -> str:
    """Multiple named series as aligned sparklines with ranges.

    ``series`` maps name -> values (each aligned with ``x``).
    """
    lines = [title] if title else []
    if x:
        lines.append(f"x: {x[0]} .. {x[-1]}  ({len(x)} points)")
    name_w = max((len(n) for n in series), default=0)
    for name, values in series.items():
        if len(values) != len(x):
            raise ValueError(f"series {name!r} misaligned with x")
        if values:
            lines.append(
                f"{name.rjust(name_w)} {sparkline(values)} "
                f"[{min(values):.4g} .. {max(values):.4g}]")
    return "\n".join(lines)
