"""Shared plumbing for the experiment runners."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro import obs
from repro.core.qos import QoSFlashArray, QoSReport
from repro.flash.metrics import IntervalSeries
from repro.mining.apriori import apriori
from repro.mining.matching import FIMBlockMatcher, MatchResult
from repro.mining.transactions import transactions_from_trace
from repro.traces.records import Trace

__all__ = ["ExperimentResult", "render_table", "WorkloadRun",
           "play_workload", "play_original"]


def render_table(headers: Sequence[str],
                 rows: Sequence[Sequence[object]],
                 title: str = "") -> str:
    """Plain-text table renderer used by every experiment report."""
    cells = [[str(h) for h in headers]]
    for row in rows:
        cells.append([
            f"{v:.4f}" if isinstance(v, float) else str(v) for v in row])
    widths = [max(len(r[i]) for r in cells) for i in range(len(headers))]
    lines = []
    if title:
        lines.append(title)
    sep = "-+-".join("-" * w for w in widths)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(cells[0], widths)))
    lines.append(sep)
    for row in cells[1:]:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


@dataclass
class ExperimentResult:
    """Generic result container: headers + rows + context."""

    name: str
    headers: List[str]
    rows: List[List[object]]
    notes: str = ""

    def render(self) -> str:
        out = render_table(self.headers, self.rows, title=self.name)
        if self.notes:
            out += "\n" + self.notes
        return out

    def column(self, header: str) -> List[object]:
        idx = self.headers.index(header)
        return [r[idx] for r in self.rows]

    # -- persistence -------------------------------------------------------
    def to_json(self) -> str:
        """Serialise (used by the results pipeline and CI artefacts)."""
        import json

        return json.dumps({
            "name": self.name,
            "headers": self.headers,
            "rows": self.rows,
            "notes": self.notes,
        }, indent=2)

    @classmethod
    def from_json(cls, text: str) -> "ExperimentResult":
        """Inverse of :meth:`to_json`."""
        import json

        data = json.loads(text)
        missing = {"name", "headers", "rows"} - set(data)
        if missing:
            raise ValueError(f"missing fields: {sorted(missing)}")
        return cls(name=data["name"], headers=list(data["headers"]),
                   rows=[list(r) for r in data["rows"]],
                   notes=data.get("notes", ""))


@dataclass
class WorkloadRun:
    """Everything one FIM-mapped workload play-through produces."""

    report: QoSReport
    match_rates: List[float]
    #: interval index of each trace part's requests in the report
    part_of_request: List[int]

    @property
    def series(self) -> IntervalSeries:
        return self.report.series

    def per_part_series(self) -> IntervalSeries:
        """Response stats re-bucketed by *trace part* (15-min interval)
        instead of the QoS scheduling interval."""
        series = IntervalSeries()
        for pr in self.report.requests:
            part_idx = self.part_of_request[pr.index]
            series.record(part_idx, pr.io.response_ms,
                          pr.io.delay_ms if pr.delayed else 0.0)
        return series


def play_workload(parts: Sequence[Trace], n_devices: int,
                  epsilon: float = 0.0,
                  mode: str = "online",
                  replication: int = 3,
                  qos_interval_ms: float = 0.133,
                  fim_window_ms: float = 0.133,
                  min_support: int = 1,
                  seed: int = 0,
                  engine: str = "auto") -> WorkloadRun:
    """The full §V-D pipeline: FIM mapping + QoS playback.

    For each trace part, data blocks are mapped to design blocks with
    the matcher trained on the *previous* part (the paper's rule; the
    first part uses the modulo fallback), then the whole request stream
    is played through the QoS array.

    Parameters
    ----------
    parts:
        Per-interval traces (e.g. from
        :func:`repro.traces.exchange.exchange_like_trace`).
    n_devices:
        9 for Exchange-like, 13 for TPC-E-like (paper §V-D).
    epsilon:
        0 = deterministic QoS; > 0 = statistical.
    mode:
        ``"online"`` (paper §V-D/E) or ``"batch"``
        (design-theoretic interval alignment, §V-G).
    """
    qos = QoSFlashArray(n_devices=n_devices, replication=replication,
                        interval_ms=qos_interval_ms, epsilon=epsilon,
                        seed=seed, engine=engine)
    matcher = FIMBlockMatcher(qos.allocation)
    match = MatchResult.empty(qos.allocation.n_buckets)
    arrivals: List[float] = []
    buckets: List[int] = []
    part_of_request: List[int] = []
    match_rates: List[float] = []
    prev: Optional[Trace] = None
    for part_idx, part in enumerate(parts):
        if prev is not None:
            txns = transactions_from_trace(prev, fim_window_ms)
            match = matcher.match(apriori(txns, min_support, max_size=2))
            match_rates.append(match.match_rate(part.block))
        else:
            match_rates.append(0.0)
        arrivals.extend(float(t) for t in part.arrival_ms)
        buckets.extend(match.map_blocks(part.block))
        part_of_request.extend([part_idx] * len(part))
        prev = part
    if mode == "online":
        report = qos.run_online(arrivals, buckets)
    elif mode == "batch":
        report = qos.run_batch(arrivals, buckets)
    else:
        raise ValueError(f"unknown mode {mode!r}")
    return WorkloadRun(report=report, match_rates=match_rates,
                       part_of_request=part_of_request)


def play_original(parts: Sequence[Trace], n_devices: int,
                  engine: str = "auto") -> IntervalSeries:
    """The "original stand" baseline of §V-D.

    Every block request is retrieved from the device stated in the
    trace (no replication, no QoS); devices serve FCFS.  Returns
    response statistics bucketed by trace part.

    The baseline has no admission control, so with ``engine="auto"``
    (or ``"fast"``) the per-device response times come straight from
    the vectorized Lindley recurrence
    (:func:`repro.flash.fastpath.fcfs_completion_times`) --
    bit-identical to the DES, which ``engine="des"`` still runs.
    """
    from repro.flash.driver import resolve_engine

    if resolve_engine(engine) == "fast":
        return _play_original_fast(parts, n_devices)

    from repro.flash.array import FlashArray, IORequest
    from repro.sim import Environment

    stream: List[Tuple[float, int, int, int]] = []
    for part_idx, part in enumerate(parts):
        for t, dev, blk in zip(part.arrival_ms, part.device, part.block):
            stream.append((float(t), int(dev), int(blk), part_idx))
    stream.sort(key=lambda r: r[0])

    env = Environment()
    array = FlashArray(env, n_devices)
    records: List[Tuple[int, IORequest]] = []

    def run():
        for t, dev, blk, part_idx in stream:
            if t > env.now:
                yield env.timeout_until(t)
            io = IORequest(arrival=t, bucket=blk)
            array.issue(io, dev % n_devices)
            records.append((part_idx, io))

    env.process(run())
    env.run()

    series = IntervalSeries()
    for part_idx, io in records:
        series.record(part_idx, io.response_ms)
    if obs.ACTIVE:
        import numpy as np

        obs.SESSION.observe_responses_array(np.asarray(
            [io.response_ms for _, io in records], dtype=np.float64))
    return series


def _play_original_fast(parts: Sequence[Trace],
                        n_devices: int) -> IntervalSeries:
    """Vectorized twin of the DES baseline loop above.

    Each device is an independent FCFS constant-rate server fed its
    requests in arrival order, so per-device completion times are one
    :func:`~repro.flash.fastpath.fcfs_completion_times` call.  Sample
    lists are filled per part in the DES's stream order (stable sort by
    arrival), which makes the resulting :class:`IntervalSeries`
    indistinguishable from the event-loop run -- same floats, same
    list order.
    """
    import numpy as np

    from repro.flash.batch import stacked_fcfs_completion_times, \
        stream_offsets
    from repro.flash.params import FlashParams

    series = IntervalSeries()
    if not parts:
        return series
    service = FlashParams().read_ms
    arrival = np.concatenate([
        np.asarray(p.arrival_ms, dtype=np.float64) for p in parts])
    device = np.concatenate([
        np.asarray(p.device, dtype=np.int64) for p in parts]) % n_devices
    part_idx = np.concatenate([
        np.full(len(p), i, dtype=np.intp) for i, p in enumerate(parts)])
    order = np.argsort(arrival, kind="stable")
    issue = arrival[order]
    device = device[order]
    part_idx = part_idx[order]
    # All devices evaluated as one stacked Lindley computation
    # (per-stream bit-identical to fcfs_completion_times).
    grouping, offsets = stream_offsets(device, n_devices)
    u = issue[grouping]
    response = np.empty(issue.size, dtype=np.float64)
    response[grouping] = \
        stacked_fcfs_completion_times(u, offsets, service) - u
    for p in np.unique(part_idx):
        series.stats(int(p)).record_array(response[part_idx == p])
    if obs.ACTIVE:
        # same stream-order bulk record as the DES loop above; the
        # fold state is order-independent, so payloads stay identical
        obs.SESSION.observe_responses_array(response)
    return series
