"""Figure 4 -- optimal retrieval probabilities of the (9,3,1) design.

Sampling with replacement from the 36 rotated design blocks; for each
request size ``k`` the probability that the batch retrieves in the
optimal ``ceil(k/9)`` accesses.  Paper reference points: P6=0.99,
P7=0.98, P8=0.95, P9=0.75, P10=1; dips recur at multiples of 9.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.allocation.design_theoretic import DesignTheoreticAllocation
from repro.core.sampling import OptimalRetrievalSampler
from repro.experiments.common import ExperimentResult
from repro.runner import Cell, ParallelRunner

__all__ = ["run", "PAPER_FIG4"]

#: The probabilities the paper reads off Figure 4.
PAPER_FIG4: Dict[int, float] = {5: 1.0, 6: 0.99, 7: 0.98, 8: 0.95,
                                9: 0.75, 10: 1.0}


def _cell_pk(k: int, trials: int, seed: int, n_devices: int,
             replication: int) -> float:
    """One point of the curve (the sampler derives its own per-``k``
    stream from ``seed``, so cells match the former serial loop)."""
    alloc = DesignTheoreticAllocation.from_parameters(n_devices,
                                                      replication)
    sampler = OptimalRetrievalSampler(alloc, trials=trials, seed=seed)
    return sampler.probability(k)


def run(max_k: int = 20, trials: int = 3000, seed: int = 0,
        n_devices: int = 9, replication: int = 3,
        runner: Optional[ParallelRunner] = None) -> ExperimentResult:
    """Regenerate the Figure 4 curve for ``k = 1..max_k``."""
    runner = runner or ParallelRunner()
    probabilities = runner.run([
        Cell("fig4", f"k={k}", _cell_pk,
             (k, trials, seed, n_devices, replication))
        for k in range(1, max_k + 1)])
    rows: List[List[object]] = []
    for k, p in zip(range(1, max_k + 1), probabilities):
        paper = PAPER_FIG4.get(k)
        rows.append([k, "" if paper is None else f"{paper:.2f}",
                     round(p, 4)])
    return ExperimentResult(
        name=f"Figure 4 -- optimal retrieval probabilities "
             f"({n_devices},{replication},1)",
        headers=["k", "P_k (paper)", "P_k (measured)"],
        rows=rows,
        notes="Dips at k near multiples of N; 1.0 just past them.",
    )
