"""Figure 8 -- Exchange deterministic QoS with online retrieval (§V-D).

Four panels per trace interval:

* (a) average response time: deterministic QoS (flat at 0.132507 ms)
  vs the original trace (above the guarantee),
* (b) maximum response time: same comparison, larger gap,
* (c) average delay of the delayed requests (paper: 0.1--0.25 ms,
  ~0.14 ms mean),
* (d) percentage of delayed requests (paper: 3--13 %, ~7 % mean).
"""

from __future__ import annotations

from typing import List, Sequence

from repro.experiments.common import (
    ExperimentResult,
    WorkloadRun,
    play_original,
    play_workload,
)
from repro.traces.exchange import exchange_like_trace
from repro.traces.records import Trace

__all__ = ["run", "run_parts", "PAPER_NOTES"]

PAPER_NOTES = (
    "Paper shape: QoS avg/max flat at 0.132507 ms in every interval; "
    "original trace above the guarantee throughout; avg delay "
    "0.1-0.25 ms (mean ~0.14); delayed requests 3-13% (mean ~7%)."
)


def run_parts(parts: Sequence[Trace], n_devices: int,
              title: str) -> ExperimentResult:
    """Shared Fig 8/9 runner over pre-generated trace parts."""
    qos_run: WorkloadRun = play_workload(parts, n_devices=n_devices,
                                         epsilon=0.0, mode="online")
    qos_series = qos_run.per_part_series()
    orig_series = play_original(parts, n_devices)
    rows: List[List[object]] = []
    for i in range(len(parts)):
        q = qos_series.stats(i)
        o = orig_series.stats(i)
        rows.append([
            i,
            round(q.avg, 6), round(o.avg, 6),
            round(q.max, 6), round(o.max, 6),
            round(q.avg_delay, 4), round(q.pct_delayed, 2),
        ])
    return ExperimentResult(
        name=title,
        headers=["interval", "QoS avg", "orig avg", "QoS max",
                 "orig max", "avg delay (ms)", "% delayed"],
        rows=rows,
        notes=PAPER_NOTES,
    )


def run(scale: float = 0.5, n_intervals: int = 24,
        seed: int = 0) -> ExperimentResult:
    """Regenerate Figure 8 on the Exchange-like workload."""
    parts = exchange_like_trace(scale=scale, seed=seed,
                                n_intervals=n_intervals)
    return run_parts(parts, n_devices=9,
                     title="Figure 8 -- Exchange deterministic QoS "
                           "(online retrieval)")
