"""Figure 8 -- Exchange deterministic QoS with online retrieval (§V-D).

Four panels per trace interval:

* (a) average response time: deterministic QoS (flat at 0.132507 ms)
  vs the original trace (above the guarantee),
* (b) maximum response time: same comparison, larger gap,
* (c) average delay of the delayed requests (paper: 0.1--0.25 ms,
  ~0.14 ms mean),
* (d) percentage of delayed requests (paper: 3--13 %, ~7 % mean).
"""

from __future__ import annotations

from functools import lru_cache
from typing import List, Optional, Sequence, Tuple

from repro.experiments.common import (
    ExperimentResult,
    WorkloadRun,
    play_original,
    play_workload,
)
from repro.runner import Cell, ParallelRunner
from repro.traces.exchange import exchange_like_trace
from repro.traces.records import Trace
from repro.traces.tpce import tpce_like_trace

__all__ = ["run", "run_parts", "run_cells", "make_parts",
           "PAPER_NOTES"]

PAPER_NOTES = (
    "Paper shape: QoS avg/max flat at 0.132507 ms in every interval; "
    "original trace above the guarantee throughout; avg delay "
    "0.1-0.25 ms (mean ~0.14); delayed requests 3-13% (mean ~7%)."
)


def make_parts(workload: str, scale: float, n_intervals: int,
               seed: int) -> List[Trace]:
    """Regenerate a workload model by name (cells call this in the
    worker, so only primitives cross the process boundary).

    Memoized per process: sweep cells (e.g. the fig10 epsilon grid)
    share one workload across many cells, and the runner's persistent
    workers keep the cache warm, so each worker synthesizes the trace
    once instead of once per cell.
    """
    return list(_make_parts_cached(workload, scale, n_intervals, seed))


@lru_cache(maxsize=8)
def _make_parts_cached(workload: str, scale: float, n_intervals: int,
                       seed: int) -> Tuple[Trace, ...]:
    if workload == "exchange":
        return tuple(exchange_like_trace(scale=scale, seed=seed,
                                         n_intervals=n_intervals))
    if workload == "tpce":
        return tuple(tpce_like_trace(scale=scale, seed=seed))
    raise ValueError(f"unknown workload {workload!r}")


def _cell_qos(workload: str, scale: float, n_intervals: int, seed: int,
              n_devices: int) -> List[Tuple[float, float, float, float]]:
    """Deterministic-QoS play-through; per-part summary tuples."""
    parts = make_parts(workload, scale, n_intervals, seed)
    qos_run: WorkloadRun = play_workload(parts, n_devices=n_devices,
                                         epsilon=0.0, mode="online")
    series = qos_run.per_part_series()
    return [(series.stats(i).avg, series.stats(i).max,
             series.stats(i).avg_delay, series.stats(i).pct_delayed)
            for i in range(len(parts))]


def _cell_orig(workload: str, scale: float, n_intervals: int, seed: int,
               n_devices: int) -> List[Tuple[float, float]]:
    """Original-stand baseline; per-part (avg, max)."""
    parts = make_parts(workload, scale, n_intervals, seed)
    series = play_original(parts, n_devices)
    return [(series.stats(i).avg, series.stats(i).max)
            for i in range(len(parts))]


def _assemble(qos: Sequence[Tuple[float, float, float, float]],
              orig: Sequence[Tuple[float, float]],
              title: str) -> ExperimentResult:
    rows: List[List[object]] = []
    for i, ((q_avg, q_max, q_delay, q_pct), (o_avg, o_max)) \
            in enumerate(zip(qos, orig)):
        rows.append([
            i,
            round(q_avg, 6), round(o_avg, 6),
            round(q_max, 6), round(o_max, 6),
            round(q_delay, 4), round(q_pct, 2),
        ])
    return ExperimentResult(
        name=title,
        headers=["interval", "QoS avg", "orig avg", "QoS max",
                 "orig max", "avg delay (ms)", "% delayed"],
        rows=rows,
        notes=PAPER_NOTES,
    )


def run_parts(parts: Sequence[Trace], n_devices: int,
              title: str) -> ExperimentResult:
    """Shared Fig 8/9 runner over pre-generated trace parts."""
    qos_run: WorkloadRun = play_workload(parts, n_devices=n_devices,
                                         epsilon=0.0, mode="online")
    qos_series = qos_run.per_part_series()
    orig_series = play_original(parts, n_devices)
    qos = [(qos_series.stats(i).avg, qos_series.stats(i).max,
            qos_series.stats(i).avg_delay,
            qos_series.stats(i).pct_delayed)
           for i in range(len(parts))]
    orig = [(orig_series.stats(i).avg, orig_series.stats(i).max)
            for i in range(len(parts))]
    return _assemble(qos, orig, title)


def run_cells(experiment: str, workload: str, scale: float,
              n_intervals: int, seed: int, n_devices: int,
              title: str,
              runner: Optional[ParallelRunner]) -> ExperimentResult:
    """Shared Fig 8/9 cell fan-out: one QoS cell, one baseline cell."""
    runner = runner or ParallelRunner()
    params = (workload, scale, n_intervals, seed, n_devices)
    qos, orig = runner.run([
        Cell(experiment, f"{workload}-qos", _cell_qos, params),
        Cell(experiment, f"{workload}-orig", _cell_orig, params),
    ])
    return _assemble(qos, orig, title)


def run(scale: float = 0.5, n_intervals: int = 24, seed: int = 0,
        runner: Optional[ParallelRunner] = None) -> ExperimentResult:
    """Regenerate Figure 8 on the Exchange-like workload."""
    return run_cells("fig8", "exchange", scale, n_intervals, seed,
                     n_devices=9,
                     title="Figure 8 -- Exchange deterministic QoS "
                           "(online retrieval)",
                     runner=runner)
