"""Figure 12 -- retrieval-algorithm delay comparison (§V-G).

The same workloads played with online retrieval (bottom line) and with
interval-aligned design-theoretic retrieval (top line); the filled gap
is the alignment penalty: the batch algorithm moves mid-interval
arrivals to the next interval boundary, adding delay the online
algorithm avoids.  Paper: online saves ~0.12 ms (Exchange) and
~0.17 ms (TPC-E) of average delay.
"""

from __future__ import annotations

import statistics
from typing import List, Optional, Sequence

from repro.experiments.common import ExperimentResult, play_workload
from repro.experiments.fig8 import make_parts
from repro.runner import Cell, ParallelRunner
from repro.traces.records import Trace

__all__ = ["run", "run_workload"]


def _per_part_delays(parts: Sequence[Trace], n_devices: int,
                     mode: str) -> List[float]:
    """Mean *extra* latency per part: everything beyond one service time.

    For the online algorithm this is the conflict/budget wait; for the
    interval-aligned design-theoretic algorithm it additionally
    contains the alignment to the next interval boundary -- exactly the
    penalty Figure 12 visualises.
    """
    run_ = play_workload(parts, n_devices=n_devices, epsilon=0.0,
                         mode=mode)
    service = run_.report.guarantee_ms
    sums = [0.0] * len(parts)
    counts = [0] * len(parts)
    for pr in run_.report.requests:
        part = run_.part_of_request[pr.index]
        extra = (pr.io.completed_at - pr.io.arrival) - service
        sums[part] += max(0.0, extra)
        counts[part] += 1
    return [s / c if c else 0.0 for s, c in zip(sums, counts)]


def _cell_delays(workload: str, scale: float, n_intervals: int,
                 seed: int, n_devices: int, mode: str) -> List[float]:
    parts = make_parts(workload, scale, n_intervals, seed)
    return _per_part_delays(parts, n_devices, mode)


def _workload_rows(label: str, online: Sequence[float],
                   batch: Sequence[float]) -> List[List[object]]:
    rows: List[List[object]] = []
    for i, (o, b) in enumerate(zip(online, batch)):
        rows.append([label, i, round(o, 4), round(b, 4),
                     round(b - o, 4)])
    mean_gap = statistics.mean(b - o for o, b in zip(online, batch))
    rows.append([label, "mean", "", "", round(mean_gap, 4)])
    return rows


def run_workload(parts: Sequence[Trace], n_devices: int,
                 label: str) -> List[List[object]]:
    """Per-interval average delay: online vs design-theoretic."""
    online = _per_part_delays(parts, n_devices, "online")
    batch = _per_part_delays(parts, n_devices, "batch")
    return _workload_rows(label, online, batch)


def run(scale: float = 0.4, n_intervals: int = 12, seed: int = 0,
        runner: Optional[ParallelRunner] = None) -> ExperimentResult:
    """Regenerate Figure 12 for both workloads."""
    runner = runner or ParallelRunner()
    grid = [(label, n_dev, mode)
            for label, n_dev in (("exchange", 9), ("tpce", 13))
            for mode in ("online", "batch")]
    delays = runner.run([
        Cell("fig12", f"{label}-{mode}", _cell_delays,
             (label, scale, n_intervals, seed, n_dev, mode))
        for label, n_dev, mode in grid])
    rows = (_workload_rows("exchange", delays[0], delays[1])
            + _workload_rows("tpce", delays[2], delays[3]))
    return ExperimentResult(
        name="Figure 12 -- avg delay: online vs design-theoretic",
        headers=["workload", "interval", "online delay",
                 "design-theoretic delay", "gap"],
        rows=rows,
        notes=("Paper shape: online strictly below design-theoretic; "
               "gap ~0.12 ms (Exchange), ~0.17 ms (TPC-E) at the "
               "paper's contention level."),
    )
