"""Table II -- comparison of retrieval algorithms on the (9,3,1) design.

For each request-set size ``s = 1..6`` the paper lists the access
counts of design-theoretic retrieval (DTR) and the online algorithm
(OLR).  DTR values are the deterministic guarantee
``M(s) = min{M : s <= (c-1)M^2 + cM}``; OLR entries read "1 or 2" where
the online greedy's outcome depends on the actual set.

We reproduce the table empirically: for each ``s`` we enumerate (or
sample, for large spaces) request sets of ``s`` *distinct* design
blocks of the rotated (9,3,1) design and collect the set of observed
access counts for both algorithms, plus the theoretical DTR guarantee.
"""

from __future__ import annotations

from itertools import combinations
from typing import List, Optional, Set, Tuple

import numpy as np

from repro.allocation.design_theoretic import DesignTheoreticAllocation
from repro.core.guarantees import required_accesses
from repro.experiments.common import ExperimentResult
from repro.retrieval.design_theoretic import design_theoretic_retrieval
from repro.retrieval.online import online_access_count
from repro.runner import Cell, ParallelRunner, spawn_seeds

__all__ = ["run", "PAPER_TABLE2"]

#: The paper's Table II: s -> (DTR, OLR) strings.
PAPER_TABLE2 = {
    1: ("1", "1"),
    2: ("1", "1"),
    3: ("1", "1"),
    4: ("1", "1 or 2"),
    5: ("1", "1 or 2"),
    6: ("2", "2"),
}


def _format(values: Set[int]) -> str:
    ordered = sorted(values)
    if len(ordered) == 1:
        return str(ordered[0])
    return " or ".join(str(v) for v in ordered)


def _cell_size(s: int, samples: int,
               seed: int) -> Tuple[List[int], List[int], int]:
    """Observed DTR/OLR access counts for request size ``s``.

    Each size draws from its own seeded generator (derived from the
    root seed via ``SeedSequence.spawn``), so sizes are independent
    cells rather than consumers of one shared stream.
    """
    alloc = DesignTheoreticAllocation.from_parameters(9, 3)
    blocks = [alloc.devices_for(b) for b in range(alloc.n_buckets)]
    dtr_seen: Set[int] = set()
    olr_seen: Set[int] = set()
    if s <= 3:
        pools = combinations(range(alloc.n_buckets), s)
        batches = (list(c) for c in pools)
    else:
        rng = np.random.default_rng(seed)
        batches = (
            list(rng.choice(alloc.n_buckets, size=s, replace=False))
            for _ in range(samples))
    guarantee = required_accesses(s, alloc.replication)
    for batch in batches:
        cands = [blocks[b] for b in batch]
        dtr = design_theoretic_retrieval(
            cands, alloc.n_devices, guarantee_level=True,
            replication=alloc.replication)
        dtr_seen.add(dtr.accesses)
        olr_seen.add(online_access_count(cands, alloc.n_devices))
    return sorted(dtr_seen), sorted(olr_seen), guarantee


def run(max_size: int = 6, samples: int = 4000, seed: int = 0,
        runner: Optional[ParallelRunner] = None) -> ExperimentResult:
    """Regenerate Table II.

    For ``s <= 3`` all combinations are enumerated; larger sizes use
    ``samples`` random distinct sets.
    """
    runner = runner or ParallelRunner()
    seeds = spawn_seeds(seed, max_size)
    outcomes = runner.run([
        Cell("table2", f"s={s}", _cell_size, (s, samples, seeds[s - 1]))
        for s in range(1, max_size + 1)])
    rows: List[List[object]] = []
    for s, (dtr_seen, olr_seen, guarantee) in enumerate(outcomes, 1):
        paper_dtr, paper_olr = PAPER_TABLE2.get(s, ("?", "?"))
        rows.append([s, paper_dtr, _format(set(dtr_seen)),
                     paper_olr, _format(set(olr_seen)), guarantee])
    return ExperimentResult(
        name="Table II -- comparison of retrieval algorithms (9,3,1)",
        headers=["s", "DTR (paper)", "DTR (measured)",
                 "OLR (paper)", "OLR (measured)", "guarantee M(s)"],
        rows=rows,
        notes=("DTR runs at the guarantee level (interval semantics); "
               "OLR is the arrival-order greedy.  '1 or 2' = outcome "
               "depends on the actual request set."),
    )
