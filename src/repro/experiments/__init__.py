"""Experiment runners: one per table/figure of the paper's evaluation.

Each module exposes a ``run(...)`` returning a structured result with a
``render()`` text table and the paper's reference values alongside the
measured ones.  The benchmark suite under ``benchmarks/`` wraps these
runners; ``python -m repro.experiments`` runs them from the shell.

=========  =====================================================
 Runner     Paper artefact
=========  =====================================================
 table2     Table II  -- DTR vs OLR access counts
 table3     Table III -- allocation-scheme response times
 table4     Table IV  -- FIM time and memory
 fig4       Figure 4  -- optimal retrieval probabilities
 fig6       Figure 6  -- trace statistics
 fig8       Figure 8  -- Exchange deterministic QoS (online)
 fig9       Figure 9  -- TPC-E deterministic QoS (online)
 fig10      Figure 10 -- statistical QoS vs epsilon
 fig11      Figure 11 -- FIM match percentage
 fig12      Figure 12 -- online vs design-theoretic delay
 ablations  design-choice studies (not a paper artefact)
 faults     degraded-mode QoS vs failed modules (not a paper artefact)
=========  =====================================================
"""

from repro.experiments import (  # noqa: F401
    ablations,
    faults,
    walkthrough,
    fig4,
    fig6,
    fig8,
    fig9,
    fig10,
    fig11,
    fig12,
    table2,
    table3,
    table4,
)

__all__ = [
    "ablations",
    "faults",
    "walkthrough",
    "fig4",
    "fig6",
    "fig8",
    "fig9",
    "fig10",
    "fig11",
    "fig12",
    "table2",
    "table3",
    "table4",
]
