"""Figure 11 -- percentage of blocks matched by FIM (§V-F).

For each interval, the fraction of its requested blocks that were part
of the frequent pairs mined from the *previous* interval (0 for the
first).  Paper: Exchange averages ~17 %, TPC-E ~87 % -- the OLTP
workload's hot set recurs, mail traffic barely does.
"""

from __future__ import annotations

import statistics
from typing import List, Optional, Sequence

from repro.experiments.common import ExperimentResult, play_workload
from repro.experiments.fig8 import make_parts
from repro.runner import Cell, ParallelRunner
from repro.traces.records import Trace

__all__ = ["run", "match_rates", "PAPER_MEANS"]

PAPER_MEANS = {"exchange": 0.17, "tpce": 0.87}


def match_rates(parts: Sequence[Trace], n_devices: int,
                min_support: int = 1) -> List[float]:
    """Per-interval FIM match rates (first interval is 0)."""
    run_ = play_workload(parts, n_devices=n_devices, epsilon=0.0,
                         mode="online", min_support=min_support)
    return run_.match_rates


def _cell_rates(workload: str, scale: float, n_intervals: int,
                seed: int, n_devices: int) -> List[float]:
    parts = make_parts(workload, scale, n_intervals, seed)
    return match_rates(parts, n_devices)


def run(scale: float = 0.5, n_intervals: int = 24, seed: int = 0,
        runner: Optional[ParallelRunner] = None) -> ExperimentResult:
    """Regenerate Figure 11 for both workloads."""
    runner = runner or ParallelRunner()
    workloads = (("exchange", 9), ("tpce", 13))
    per_workload = runner.run([
        Cell("fig11", label, _cell_rates,
             (label, scale, n_intervals, seed, n_dev))
        for label, n_dev in workloads])
    rows: List[List[object]] = []
    for (label, _), rates in zip(workloads, per_workload):
        for i, r in enumerate(rates):
            rows.append([label, i, round(100 * r, 2)])
        mean = statistics.mean(rates[1:]) if len(rates) > 1 else 0.0
        rows.append([label, "mean(>0)", round(100 * mean, 2)])
    return ExperimentResult(
        name="Figure 11 -- % of blocks matched by FIM",
        headers=["workload", "interval", "% matched"],
        rows=rows,
        notes=(f"Paper means: exchange "
               f"{100 * PAPER_MEANS['exchange']:.0f}%, "
               f"tpce {100 * PAPER_MEANS['tpce']:.0f}%; first interval "
               f"is 0 (nothing mined yet)."),
    )
