"""Replica-aware conflict model for deterministic online QoS.

Under deterministic QoS a request is *delayed* exactly when all ``c``
of its replica devices are busy at arrival (§IV-B preference order:
idle replica, else wait).  For Poisson arrivals of rate ``lam`` served
in deterministic time ``s`` and spread over ``N`` devices, each device
behaves like an M/D/1 server with utilisation ``rho = lam * s / N``;
treating the ``c`` replicas' busy states as independent gives

    ``P(delayed) ~= rho^c``

and, conditioned on a conflict, the wait is the minimum residual
service among ``c`` busy deterministic servers, each residual being
uniform on ``(0, s)``:

    ``E[delay | delayed] ~= s / (c + 1)``.

Both are first-order approximations (they ignore queue depth beyond
one residual and the positive correlation bursts induce); the
validation benchmark shows they track simulation within a small factor
at the utilisations the paper's workloads run at.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["ConflictModel"]


@dataclass(frozen=True)
class ConflictModel:
    """Closed-form delay predictions for deterministic online QoS.

    Parameters
    ----------
    n_devices:
        Array size ``N``.
    replication:
        Copy count ``c``.
    service_ms:
        Deterministic per-request service time ``s``.
    """

    n_devices: int
    replication: int
    service_ms: float

    def __post_init__(self):
        if self.n_devices < 1:
            raise ValueError("n_devices must be >= 1")
        if self.replication < 1:
            raise ValueError("replication must be >= 1")
        if self.service_ms <= 0:
            raise ValueError("service_ms must be positive")

    def utilisation(self, rate_per_ms: float) -> float:
        """Per-device utilisation ``rho = lam * s / N``."""
        if rate_per_ms < 0:
            raise ValueError("rate must be >= 0")
        return rate_per_ms * self.service_ms / self.n_devices

    def p_delayed(self, rate_per_ms: float) -> float:
        """Predicted delayed-request probability ``rho^c``."""
        rho = min(1.0, self.utilisation(rate_per_ms))
        return rho ** self.replication

    def mean_delay_ms(self) -> float:
        """Predicted mean delay of a delayed request ``s / (c+1)``."""
        return self.service_ms / (self.replication + 1)

    def max_stable_rate(self) -> float:
        """Throughput ceiling ``N / s`` (requests per ms)."""
        return self.n_devices / self.service_ms

    def predict(self, rate_per_ms: float) -> dict:
        """All predictions for one arrival rate."""
        return {
            "utilisation": self.utilisation(rate_per_ms),
            "p_delayed": self.p_delayed(rate_per_ms),
            "mean_delay_ms": self.mean_delay_ms(),
            "max_stable_rate": self.max_stable_rate(),
        }
