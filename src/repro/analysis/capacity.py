"""Throughput and utilisation bounds of a QoS configuration."""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.guarantees import guarantee_capacity

__all__ = ["CapacityModel"]


@dataclass(frozen=True)
class CapacityModel:
    """Capacity arithmetic for an ``(N, c, M, T)`` configuration.

    Two ceilings bound admitted throughput:

    * the **admission** ceiling ``S(M) / T`` -- what the deterministic
      admission controller lets through, and
    * the **physical** ceiling ``N / s`` -- aggregate device service
      rate (reads; writes cost ``c`` device-slots each).
    """

    n_devices: int
    replication: int
    accesses: int
    interval_ms: float
    service_ms: float

    def __post_init__(self):
        if min(self.n_devices, self.replication, self.accesses) < 1:
            raise ValueError("counts must be >= 1")
        if self.interval_ms <= 0 or self.service_ms <= 0:
            raise ValueError("times must be positive")

    @property
    def admission_limit(self) -> int:
        """``S(M)``: admitted requests per interval."""
        return guarantee_capacity(self.accesses, self.replication)

    @property
    def admission_rate(self) -> float:
        """Admission ceiling in requests per ms."""
        return self.admission_limit / self.interval_ms

    @property
    def physical_rate(self) -> float:
        """Aggregate device service rate in requests per ms."""
        return self.n_devices / self.service_ms

    @property
    def sustainable_rate(self) -> float:
        """The binding ceiling (minimum of the two)."""
        return min(self.admission_rate, self.physical_rate)

    @property
    def admission_bound_binding(self) -> bool:
        """True when admission, not hardware, limits throughput."""
        return self.admission_rate <= self.physical_rate

    def utilisation_at(self, rate_per_ms: float) -> float:
        """Fraction of the sustainable rate consumed by ``rate``."""
        if rate_per_ms < 0:
            raise ValueError("rate must be >= 0")
        return rate_per_ms / self.sustainable_rate

    def write_cost(self, write_fraction: float) -> float:
        """Device-slots per logical request for a read/write mix.

        Writes occupy every replica, so a fraction ``w`` of writes
        costs ``(1 - w) + w * c`` device services per request.
        """
        if not 0 <= write_fraction <= 1:
            raise ValueError("write_fraction must be in [0, 1]")
        return (1 - write_fraction) + write_fraction * self.replication

    def sustainable_rate_mixed(self, write_fraction: float,
                               write_service_ms: float) -> float:
        """Physical ceiling for a read/write mix (requests per ms)."""
        if write_service_ms <= 0:
            raise ValueError("write_service_ms must be positive")
        w = write_fraction
        cost_ms = ((1 - w) * self.service_ms
                   + w * self.replication * write_service_ms)
        return self.n_devices / cost_ms if cost_ms > 0 else float("inf")
