"""Analytical models of the QoS system.

Closed-form companions to the simulator:

* :mod:`~repro.analysis.queueing` -- a replica-aware conflict model
  predicting the delayed-request fraction and mean delay of
  deterministic online QoS from workload utilisation, validated
  against simulation in ``benchmarks/test_analysis_validation.py``;
* :mod:`~repro.analysis.capacity` -- throughput and utilisation bounds
  of a configuration.
"""

from repro.analysis.capacity import CapacityModel
from repro.analysis.queueing import ConflictModel

__all__ = ["CapacityModel", "ConflictModel"]
