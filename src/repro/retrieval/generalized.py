"""Generalized optimal response-time retrieval.

The paper's §III-C cites the authors' follow-up work ([14] Altiparmak &
Tosun, *Generalized optimal response time retrieval of replicated data
from storage arrays*) which drops two idealisations of the basic
max-flow formulation: devices may have **heterogeneous service times**
(e.g. a mixed array, or flash modules with different page timings) and
**non-zero initial busy times** (in-progress work).

Formulation: for a candidate makespan ``theta``, device ``d`` can serve

    ``cap_d(theta) = floor((theta - busy_d) / service_d)``

requests.  A schedule finishing by ``theta`` exists iff the bipartite
assignment with those capacities covers every request.  The optimum is
found by searching ``theta`` over the finite set of *event times*
``busy_d + k * service_d`` -- the only values where any ``cap_d``
changes -- via binary search, with a max-flow feasibility probe per
step.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.graph.dinic import max_flow
from repro.graph.flownet import FlowNetwork
from repro.retrieval.schedule import RetrievalSchedule

__all__ = ["generalized_retrieval", "GeneralizedSchedule"]


class GeneralizedSchedule(RetrievalSchedule):
    """A schedule plus its makespan under heterogeneous timing."""

    def __init__(self, assignment: Tuple[int, ...], n_devices: int,
                 makespan: float,
                 completion: Tuple[float, ...]):
        super().__init__(assignment=assignment, n_devices=n_devices)
        object.__setattr__(self, "makespan", makespan)
        object.__setattr__(self, "completion", completion)


def _capacities(theta: float, busy: Sequence[float],
                service: Sequence[float]) -> List[int]:
    caps = []
    for b, s in zip(busy, service):
        caps.append(max(0, int((theta - b) / s + 1e-9)))
    return caps


def _feasible(candidates: Sequence[Sequence[int]], n_devices: int,
              caps: Sequence[int]) -> Optional[List[int]]:
    n_items = len(candidates)
    source, sink = 0, 1 + n_items + n_devices
    net = FlowNetwork(sink + 1)
    item_edges, item_bins = [], []
    for i, cands in enumerate(candidates):
        bins = [d for d in dict.fromkeys(cands) if caps[d] > 0]
        if not bins:
            return None
        net.add_edge(source, 1 + i, 1)
        edges = [net.add_edge(1 + i, 1 + n_items + d, 1) for d in bins]
        item_edges.append(edges)
        item_bins.append(bins)
    for d in range(n_devices):
        if caps[d] > 0:
            net.add_edge(1 + n_items + d, sink, caps[d])
    if max_flow(net, source, sink) < n_items:
        return None
    assignment = [-1] * n_items
    for i in range(n_items):
        for edge, d in zip(item_edges[i], item_bins[i]):
            if net.flow_on(edge) > 0:
                assignment[i] = d
                break
    return assignment


def generalized_retrieval(
    candidates: Sequence[Sequence[int]],
    n_devices: int,
    service_ms: Sequence[float],
    busy_ms: Optional[Sequence[float]] = None,
) -> GeneralizedSchedule:
    """Minimum-makespan schedule on heterogeneous, busy devices.

    Parameters
    ----------
    candidates:
        Per-request replica device lists.
    n_devices:
        Array size.
    service_ms:
        Per-device service time for one request (all positive).
    busy_ms:
        Per-device time until the device is free (default all 0).

    Returns
    -------
    GeneralizedSchedule
        Assignment, the optimal makespan, and each request's
        completion time under in-order service on its device.
    """
    if len(service_ms) != n_devices:
        raise ValueError("service_ms must have one entry per device")
    if any(s <= 0 for s in service_ms):
        raise ValueError("service times must be positive")
    busy = list(busy_ms) if busy_ms is not None else [0.0] * n_devices
    if len(busy) != n_devices:
        raise ValueError("busy_ms must have one entry per device")
    if any(b < 0 for b in busy):
        raise ValueError("busy times must be >= 0")

    b = len(candidates)
    if b == 0:
        return GeneralizedSchedule((), n_devices, 0.0, ())

    # Candidate makespans: busy_d + k * service_d for k = 1..b, but only
    # for devices that appear among the candidates.
    used = sorted({d for cands in candidates for d in cands})
    thetas = sorted({busy[d] + k * service_ms[d]
                     for d in used for k in range(1, b + 1)})
    lo, hi = 0, len(thetas) - 1
    best: Optional[Tuple[float, List[int]]] = None
    while lo <= hi:
        mid = (lo + hi) // 2
        theta = thetas[mid]
        caps = _capacities(theta, busy, service_ms)
        assignment = _feasible(candidates, n_devices, caps)
        if assignment is not None:
            best = (theta, assignment)
            hi = mid - 1
        else:
            lo = mid + 1
    if best is None:
        raise RuntimeError("no feasible schedule (empty candidates?)")
    theta, assignment = best

    # Completion times: requests on a device finish back-to-back after
    # its busy time, in assignment order.
    next_slot = list(busy)
    completion = []
    for d in assignment:
        next_slot[d] += service_ms[d]
        completion.append(next_slot[d])
    return GeneralizedSchedule(tuple(assignment), n_devices, theta,
                               tuple(completion))
