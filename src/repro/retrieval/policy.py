"""The combined retrieval policy of paper §III-C.

"Our retrieval algorithm first checks the retrieval optimality using
the design-theoretic retrieval; if the access amount is greater than
the optimal (``ceil(b/N)``), we solve the maximum flow problem."

Design-theoretic retrieval is ``O(b)``, max-flow ``O(b^3)``; the policy
pays the expensive path only when the cheap one is provably suboptimal.
"""

from __future__ import annotations

from typing import Sequence

from repro.check import sanitizers
from repro.graph import kernels
from repro.retrieval.design_theoretic import design_theoretic_retrieval
from repro.retrieval.maxflow import maxflow_retrieval
from repro.retrieval.schedule import RetrievalSchedule

__all__ = ["combined_retrieval"]


def combined_retrieval(candidates: Sequence[Sequence[int]],
                       n_devices: int) -> RetrievalSchedule:
    """DTR first; exact max-flow fallback when DTR misses the optimum.

    The returned schedule is always access-optimal.  On the kernel
    path the whole decision (DTR or fallback) is memoized on the exact
    ordered candidate tuple -- trace playback re-presents the same
    interval batches constantly, and both branches are deterministic
    functions of the ordered batch.
    """
    if kernels.ENABLED:
        key = kernels.schedule_key(candidates, n_devices, "combined")
        cached = kernels.SCHEDULE_CACHE.get(key)
        if cached is not kernels.MISS:
            if sanitizers.ACTIVE:
                sanitizers.check_schedule(
                    candidates, list(cached.assignment),
                    cached.accesses)
            return cached
        schedule = design_theoretic_retrieval(candidates, n_devices)
        if not schedule.is_optimal:
            schedule = maxflow_retrieval(candidates, n_devices)
        kernels.SCHEDULE_CACHE.put(key, schedule)
        return schedule
    schedule = design_theoretic_retrieval(candidates, n_devices)
    if schedule.is_optimal:
        return schedule
    return maxflow_retrieval(candidates, n_devices)
