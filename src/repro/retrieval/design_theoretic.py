"""Design-theoretic retrieval (paper §III-C; Tosun, ITCC 2005).

The algorithm of the paper's Figure 5:

1. **Initial mapping** -- every request is assigned to the device
   holding its *first* copy.
2. **Remapping** -- while some device holds more requests than the
   target level allows, relocate requests to alternate copies.  A
   relocation may be a chain: request A moves off the hot device onto a
   full device whose request B moves on to a free one, and so on.  The
   chain search is a BFS over devices, i.e. exactly one unit of flow
   augmentation, so remapping provably reaches any feasible level.

Pairwise balance of the design guarantees feasibility at level ``M``
for any ``b <= S(M) = (c-1)M^2 + cM`` requests, so the algorithm always
meets the paper's deterministic guarantee.  Each chain touches every
device at most once, keeping the cost near-linear in ``b`` for the
bounded batch sizes the framework admits -- the ``O(b)`` behaviour the
paper quotes.

Two level policies are offered:

* ``guarantee_level=False`` (default): start at the optimum
  ``ceil(b/N)`` and escalate only on infeasibility; the result is the
  exact minimum access count.
* ``guarantee_level=True``: target the design guarantee level
  ``M(b) = min{M : b <= S(M)}`` directly -- the interval-based
  semantics behind Table II's DTR row, where 6 requests are always
  scheduled across 2 accesses.
"""

from __future__ import annotations

from collections import deque
from typing import List, Optional, Sequence

from repro.core.guarantees import required_accesses
from repro.retrieval.schedule import RetrievalSchedule, optimal_accesses

__all__ = ["design_theoretic_retrieval"]


def _augment(dev: int, level: int, loads: List[int],
             per_device: List[List[int]],
             candidates: Sequence[Sequence[int]],
             assignment: List[int]) -> bool:
    """Move one request off overloaded ``dev`` via a relocation chain.

    BFS over devices: an edge ``u -> v`` exists when some request
    currently on ``u`` also has a copy on ``v``.  Any device with load
    below ``level`` terminates the chain.  Returns False when no chain
    exists (level infeasible for this component).
    """
    n = len(loads)
    parent_dev: List[int] = [-1] * n
    parent_req: List[int] = [-1] * n
    seen = [False] * n
    seen[dev] = True
    queue = deque([dev])
    goal = -1
    while queue and goal < 0:
        u = queue.popleft()
        for req in per_device[u]:
            for v in candidates[req]:
                if v == u or seen[v]:
                    continue
                seen[v] = True
                parent_dev[v] = u
                parent_req[v] = req
                if loads[v] < level:
                    goal = v
                    break
                queue.append(v)
            if goal >= 0:
                break
    if goal < 0:
        return False
    # Walk the chain back, shifting one request per hop.
    v = goal
    while v != dev:
        u = parent_dev[v]
        req = parent_req[v]
        per_device[u].remove(req)
        per_device[v].append(req)
        assignment[req] = v
        v = u
    loads[goal] += 1
    loads[dev] -= 1
    return True


def design_theoretic_retrieval(
    candidates: Sequence[Sequence[int]],
    n_devices: int,
    start_level: Optional[int] = None,
    guarantee_level: bool = False,
    replication: Optional[int] = None,
) -> RetrievalSchedule:
    """Schedule ``candidates`` by initial mapping + chain remapping.

    Parameters
    ----------
    candidates:
        Per-request ordered device tuples (first entry = primary copy).
    n_devices:
        Array size.
    start_level:
        Explicit initial target for the max per-device load (overrides
        the policies below).
    guarantee_level:
        Target the design guarantee level ``M(b)`` instead of the
        optimum (see module docstring).
    replication:
        Copy count ``c`` used to compute the guarantee level; defaults
        to the length of the first candidate tuple.
    """
    b = len(candidates)
    if b == 0:
        return RetrievalSchedule((), n_devices)

    if start_level is not None:
        level = max(1, start_level)
    elif guarantee_level:
        c = replication if replication is not None else len(candidates[0])
        level = required_accesses(b, c)
    else:
        level = optimal_accesses(b, n_devices)

    assignment: List[int] = [cands[0] for cands in candidates]
    loads = [0] * n_devices
    per_device: List[List[int]] = [[] for _ in range(n_devices)]
    for i, d in enumerate(assignment):
        loads[d] += 1
        per_device[d].append(i)

    while True:
        feasible = True
        for dev in range(n_devices):
            while loads[dev] > level:
                if not _augment(dev, level, loads, per_device,
                                candidates, assignment):
                    feasible = False
                    break
            if not feasible:
                break
        if feasible:
            break
        level += 1

    return RetrievalSchedule(tuple(assignment), n_devices)
