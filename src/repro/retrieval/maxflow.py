"""Optimal retrieval via maximum flow (paper §III-C, refs [14, 15]).

Network: source -> request (capacity 1), request -> replica device
(capacity 1), device -> sink (capacity ``M``).  A full flow of value
``b`` exists iff the batch is retrievable in ``M`` accesses; the
smallest such ``M`` (searched upward from ``ceil(b/N)``) is the optimal
schedule, read off the saturated request->device edges.
"""

from __future__ import annotations

from typing import Collection, Optional, Sequence

from repro.allocation.degraded import DataUnavailableError
from repro.check import sanitizers
from repro.graph import kernels
from repro.graph.kuhn import capacitated_assignment
from repro.retrieval.schedule import RetrievalSchedule, optimal_accesses

__all__ = ["maxflow_retrieval", "is_retrievable_in",
           "maxflow_retrieval_with_carry", "mask_candidates"]


def mask_candidates(candidates: Sequence[Sequence[int]],
                    excluded: Collection[int],
                    ) -> Sequence[Sequence[int]]:
    """Candidate lists with the ``excluded`` (failed) devices removed.

    The failure-aware entry point of the retrieval layer: dead or
    degraded modules (:mod:`repro.faults`) leave every candidate set
    before scheduling, preserving replica preference order.  Raises
    :class:`repro.allocation.degraded.DataUnavailableError` when a
    request loses all of its replicas -- at that failure level the
    batch is not retrievable at any access count.
    """
    if not excluded:
        return candidates
    dead = frozenset(excluded)
    out = []
    for i, cands in enumerate(candidates):
        live = tuple(d for d in cands if d not in dead)
        if not live:
            raise DataUnavailableError(
                f"request {i}: all replica devices {tuple(cands)} "
                f"are failed")
        out.append(live)
    return out


def is_retrievable_in(candidates: Sequence[Sequence[int]], n_devices: int,
                      accesses: int,
                      excluded: Optional[Collection[int]] = None) -> bool:
    """Feasibility: can the batch complete within ``accesses`` rounds?

    On the kernel path (:mod:`repro.graph.kernels`, the default) the
    answer comes from a memoized bitset feasibility check -- it is a
    boolean, so the cache key is the *canonical* mask multiset and
    Zipf-repeated batches hit regardless of request order.  The legacy
    answer is one run of the specialised capacitated matcher
    (:mod:`repro.graph.kuhn`); both are exact, so the call sites cannot
    tell them apart.

    ``excluded`` masks failed devices out of every candidate set
    first; a request with no live replica makes the batch infeasible
    (False) rather than raising.
    """
    if excluded:
        try:
            candidates = mask_candidates(candidates, excluded)
        except DataUnavailableError:
            return False
    if kernels.ENABLED:
        return kernels.feasible_cached(candidates, n_devices, accesses)
    return capacitated_assignment(
        candidates, n_devices, accesses) is not None


def maxflow_retrieval(candidates: Sequence[Sequence[int]],
                      n_devices: int,
                      excluded: Optional[Collection[int]] = None,
                      ) -> RetrievalSchedule:
    """Compute the minimum-access schedule exactly.

    Runs in ``O(b^{1.5} c)`` per feasibility probe on these unit
    networks -- inside the paper's ``O(b^3)`` bound -- with the number
    of probes bounded by how far the optimum sits above ``ceil(b/N)``
    (at most a couple of steps for design-based allocations).

    On the kernel path the verbatim legacy schedule is memoized on the
    *exact ordered* candidate tuple (the matcher's device choices are
    order-sensitive, so a canonical key would return merely equivalent
    schedules and break byte-identity).

    ``excluded`` masks failed devices out of every candidate set first
    (failure-aware retrieval); raises
    :class:`~repro.allocation.degraded.DataUnavailableError` when a
    request has no live replica.  The memo key is computed *after*
    masking, so degraded and healthy schedules never collide.
    """
    if excluded:
        candidates = mask_candidates(candidates, excluded)
    b = len(candidates)
    if b == 0:
        return RetrievalSchedule((), n_devices)
    use_cache = kernels.ENABLED
    if use_cache:
        key = kernels.schedule_key(candidates, n_devices, "maxflow")
        cached = kernels.SCHEDULE_CACHE.get(key)
        if cached is not kernels.MISS:
            if sanitizers.ACTIVE:
                sanitizers.check_schedule(
                    candidates, list(cached.assignment),
                    cached.accesses)
            return cached
    m = optimal_accesses(b, n_devices)
    while True:
        assignment = capacitated_assignment(candidates, n_devices, m)
        if assignment is not None:
            if sanitizers.ACTIVE:
                sanitizers.check_schedule(candidates, assignment, m)
            schedule = RetrievalSchedule(tuple(assignment), n_devices)
            if use_cache:
                kernels.SCHEDULE_CACHE.put(key, schedule)
            return schedule
        m += 1
        if m > b:  # pragma: no cover - any non-empty candidates terminate
            raise RuntimeError("retrieval search failed to terminate")


def maxflow_retrieval_with_carry(candidates: Sequence[Sequence[int]],
                                 n_devices: int,
                                 carry: Sequence[float],
                                 ) -> RetrievalSchedule:
    """Minimum-makespan schedule when devices start with backlog.

    ``carry[d]`` is the outstanding work on device ``d`` in units of
    one service time (fractional allowed).  The search finds the
    smallest round count ``M`` such that every request fits one of its
    replica devices with ``assigned_d + ceil(carry_d) <= M``.

    Used by the interval-batch driver so that an interval's schedule
    does not pile new work onto devices still draining the previous
    interval -- the queue-aware behaviour a real I/O driver shows.
    """
    import math

    b = len(candidates)
    if b == 0:
        return RetrievalSchedule((), n_devices)
    carry_units = [math.ceil(c - 1e-9) for c in carry]
    if any(c < 0 for c in carry_units):
        raise ValueError("carry must be non-negative")
    if all(c == 0 for c in carry_units):
        return maxflow_retrieval(candidates, n_devices)
    m = optimal_accesses(b, n_devices)
    while True:
        # Per-device residual capacity at level m; devices with zero
        # residual are removed from the candidate lists outright.
        residual = [max(0, m - c) for c in carry_units]
        pruned = [[d for d in cands if residual[d] > 0]
                  for cands in candidates]
        if all(p for p in pruned):
            assignment = _variable_capacity_assignment(
                pruned, n_devices, residual)
            if assignment is not None:
                if sanitizers.ACTIVE:
                    sanitizers.check_schedule(candidates, assignment,
                                              residual)
                return RetrievalSchedule(tuple(assignment), n_devices)
        m += 1
        if m > b + max(carry_units):  # pragma: no cover
            raise RuntimeError("carry retrieval failed to terminate")


def _variable_capacity_assignment(candidates, n_devices, capacities):
    """Like bounded_degree_assignment but with per-bin capacities."""
    from repro.graph.dinic import max_flow
    from repro.graph.flownet import FlowNetwork

    n_items = len(candidates)
    source = 0
    sink = 1 + n_items + n_devices
    net = FlowNetwork(sink + 1)
    item_edges = []
    item_bins = []
    for i, cands in enumerate(candidates):
        bins = list(dict.fromkeys(cands))
        net.add_edge(source, 1 + i, 1)
        edges = [net.add_edge(1 + i, 1 + n_items + d, 1) for d in bins]
        item_edges.append(edges)
        item_bins.append(bins)
    for d in range(n_devices):
        net.add_edge(1 + n_items + d, sink, int(capacities[d]))
    if max_flow(net, source, sink) < n_items:
        return None
    assignment = [-1] * n_items
    for i in range(n_items):
        for edge, d in zip(item_edges[i], item_bins[i]):
            if net.flow_on(edge) > 0:
                assignment[i] = d
                break
    return assignment
