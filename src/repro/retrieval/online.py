"""Online retrieval (paper §IV-B).

Requests are served in FCFS order the moment they arrive instead of
being aligned to interval boundaries.  Device choice:

* if a replica device is **idle**, use it (first idle copy in copy
  order, matching the initial-mapping preference of DTR);
* otherwise use the replica device with the **earliest finish time**;
* requests arriving at exactly the same instant are scheduled together
  with the batch (design-theoretic + max-flow) policy, then dispatched
  to their assigned devices.

Two views are provided: a pure access-count greedy
(:func:`online_access_count`, used for the Table II comparison) and the
stateful, time-based :class:`OnlineRetriever` used by the simulator.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.graph.kernels import WarmStartMatcher
from repro.retrieval.policy import combined_retrieval

__all__ = ["OnlineRetriever", "OnlineDecision", "online_access_count",
           "SlidingWindowScheduler"]


def online_access_count(candidates: Sequence[Sequence[int]],
                        n_devices: int) -> int:
    """Access rounds used by the online greedy on a one-at-a-time batch.

    Each request is assigned, in arrival order and without knowledge of
    later requests, to its least-loaded replica device (first in copy
    order on ties).  This is the ``OLR`` column of Table II: unlike the
    batch algorithm it can be one access worse than optimal because an
    early request may take a device a later request will need.
    """
    loads = [0] * n_devices
    for cands in candidates:
        best = cands[0]
        for d in cands:
            if loads[d] < loads[best]:
                best = d
        loads[best] += 1
    return max(loads) if candidates else 0


@dataclass(frozen=True)
class OnlineDecision:
    """Outcome of scheduling one request online."""

    device: int
    start: float
    finish: float
    arrival: float

    @property
    def response_time(self) -> float:
        """Time from arrival to completion."""
        return self.finish - self.arrival

    @property
    def wait(self) -> float:
        """Queueing delay before service starts."""
        return self.start - self.arrival


class OnlineRetriever:
    """Stateful earliest-finish-time scheduler over ``n_devices``.

    The retriever tracks each device's busy-until time.  Callers feed
    requests in non-decreasing arrival order (FCFS); simultaneous
    arrivals should be grouped and passed to :meth:`serve_batch`.
    """

    def __init__(self, n_devices: int, service_time: float):
        if n_devices < 1:
            raise ValueError("need at least one device")
        if service_time <= 0:
            raise ValueError("service time must be positive")
        self.n_devices = n_devices
        self.service_time = service_time
        self.busy_until = [0.0] * n_devices
        self._last_arrival = float("-inf")

    # -- single request ---------------------------------------------------
    def pick_device(self, arrival: float, candidates: Sequence[int]) -> int:
        """Choose a device per the paper's online rule (no state change)."""
        for d in candidates:
            if self.busy_until[d] <= arrival:
                return d
        return min(candidates, key=lambda d: self.busy_until[d])

    def serve(self, arrival: float,
              candidates: Sequence[int]) -> OnlineDecision:
        """Schedule one request arriving at ``arrival``."""
        self._check_order(arrival)
        d = self.pick_device(arrival, candidates)
        return self._dispatch(arrival, d)

    # -- simultaneous batch -------------------------------------------------
    def serve_batch(self, arrival: float,
                    candidates: Sequence[Sequence[int]],
                    ) -> List[OnlineDecision]:
        """Schedule requests that arrived at exactly the same time.

        Per §IV-B these are "retrieved together as previously": the
        batch policy computes an access-optimal device assignment
        (with remapping), then each request queues on its device.
        """
        self._check_order(arrival)
        if len(candidates) == 1:
            return [self.serve(arrival, candidates[0])]
        schedule = combined_retrieval(candidates, self.n_devices)
        return [self._dispatch(arrival, d) for d in schedule.assignment]

    # -- internals ----------------------------------------------------------
    def _check_order(self, arrival: float) -> None:
        if arrival < self._last_arrival:
            raise ValueError(
                f"arrivals must be non-decreasing "
                f"({arrival} after {self._last_arrival})")
        self._last_arrival = arrival

    def _dispatch(self, arrival: float, device: int) -> OnlineDecision:
        start = max(arrival, self.busy_until[device])
        finish = start + self.service_time
        self.busy_until[device] = finish
        return OnlineDecision(device=device, start=start, finish=finish,
                              arrival=arrival)

    def idle_devices(self, at: float) -> Tuple[int, ...]:
        """Devices idle at time ``at``."""
        return tuple(d for d in range(self.n_devices)
                     if self.busy_until[d] <= at)

    def earliest_idle(self, candidates: Sequence[int]) -> float:
        """Earliest time any of ``candidates`` becomes free."""
        return min(self.busy_until[d] for d in candidates)


class SlidingWindowScheduler:
    """Warm-started feasibility over a sliding window of requests.

    Wraps :class:`repro.graph.kernels.WarmStartMatcher` for windowed /
    online retrieval: requests :meth:`admit` and :meth:`retire` one at
    a time, and the scheduler keeps an exact maximum matching alive by
    repairing it with augmenting paths instead of re-solving the whole
    window on each change (the paper's online setting, §IV-B, where
    batch membership shifts by one request at a time).

    :attr:`feasible` answers "does the current window fit the access
    budget?" exactly after every update, and :meth:`min_accesses`
    gives the window's optimal access count by warm-starting each
    level's matching from the current assignment.

    ``excluded`` names failed devices (:mod:`repro.faults`): they are
    stripped from every admitted request's candidate list, so the
    matching -- and therefore feasibility -- is computed over live
    replicas only.  Admitting a request whose replicas are all
    excluded raises
    :class:`repro.allocation.degraded.DataUnavailableError`.
    """

    def __init__(self, n_devices: int, accesses: int,
                 excluded: Sequence[int] = ()):
        self._matcher = WarmStartMatcher(n_devices, accesses)
        #: candidate lists of the live window, keyed by request id
        #: (as admitted, i.e. before exclusion masking)
        self._window: Dict[int, Tuple[int, ...]] = {}
        self._excluded = frozenset(excluded)
        if any(not 0 <= d < n_devices for d in self._excluded):
            raise ValueError("excluded device out of range")

    def __len__(self) -> int:
        return len(self._window)

    @property
    def n_devices(self) -> int:
        return self._matcher.n_devices

    @property
    def accesses(self) -> int:
        """The access budget the window is matched against."""
        return self._matcher.capacity

    @property
    def feasible(self) -> bool:
        """Exact: every request in the window fits the budget."""
        return self._matcher.feasible

    @property
    def excluded(self) -> frozenset:
        """Failed devices masked out of every candidate list."""
        return self._excluded

    def admit(self, candidates: Sequence[int]) -> int:
        """Add one request to the window; returns its id."""
        if self._excluded:
            live = tuple(d for d in candidates
                         if d not in self._excluded)
            if not live:
                from repro.allocation.degraded import \
                    DataUnavailableError

                raise DataUnavailableError(
                    f"all replica devices {tuple(candidates)} "
                    f"are failed")
            rid = self._matcher.add(live)
        else:
            rid = self._matcher.add(candidates)
        self._window[rid] = tuple(candidates)
        return rid

    def retire(self, request_id: int) -> None:
        """Remove one request (served or expired) from the window."""
        del self._window[request_id]
        self._matcher.remove(request_id)

    def assignment_of(self, request_id: int) -> int:
        """Device of a matched request, ``-1`` while unmatched."""
        return self._matcher.assignment_of(request_id)

    def min_accesses(self) -> int:
        """Optimal access count for the current window (exact)."""
        return self._matcher.min_accesses()

    def window(self) -> Dict[int, Tuple[int, ...]]:
        """Snapshot of the live window (id -> candidate tuple)."""
        return dict(self._window)

    def stats(self) -> Dict[str, int]:
        return self._matcher.stats()
