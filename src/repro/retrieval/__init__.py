"""Retrieval scheduling of replicated block requests.

Three algorithms from the paper:

* **Design-theoretic retrieval** (§III-C): initial first-copy mapping
  plus greedy remapping; ``O(b)`` and guaranteed optimal for request
  sizes within the design guarantee ``S``.
* **Max-flow retrieval** (§III-C, refs [14,15]): exact optimum via
  Dinic's algorithm; used as the fallback when design-theoretic
  retrieval exceeds the ``ceil(b/N)`` optimum.
* **Online retrieval** (§IV-B): requests served as they arrive, FCFS,
  preferring an idle replica device, else the earliest-finishing one.
"""

from repro.retrieval.design_theoretic import design_theoretic_retrieval
from repro.retrieval.maxflow import maxflow_retrieval
from repro.retrieval.online import OnlineRetriever
from repro.retrieval.policy import combined_retrieval
from repro.retrieval.schedule import RetrievalSchedule, optimal_accesses

__all__ = [
    "OnlineRetriever",
    "RetrievalSchedule",
    "combined_retrieval",
    "design_theoretic_retrieval",
    "maxflow_retrieval",
    "optimal_accesses",
]
