"""Retrieval schedule value type and shared helpers."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

__all__ = ["RetrievalSchedule", "optimal_accesses", "device_loads"]


def optimal_accesses(n_requests: int, n_devices: int) -> int:
    """The lower bound ``ceil(b / N)`` on parallel accesses (paper §II-B)."""
    if n_requests < 0:
        raise ValueError("request count must be >= 0")
    if n_devices < 1:
        raise ValueError("device count must be >= 1")
    return -(-n_requests // n_devices)


def device_loads(assignment: Sequence[int], n_devices: int) -> List[int]:
    """Per-device request counts for an assignment vector."""
    loads = [0] * n_devices
    for d in assignment:
        loads[d] += 1
    return loads


@dataclass(frozen=True)
class RetrievalSchedule:
    """The result of scheduling one batch of block requests.

    Attributes
    ----------
    assignment:
        ``assignment[i]`` is the device chosen for request ``i``.
    n_devices:
        Array size, for load computations.
    """

    assignment: Tuple[int, ...]
    n_devices: int

    @property
    def n_requests(self) -> int:
        return len(self.assignment)

    @property
    def accesses(self) -> int:
        """Parallel access rounds = maximum per-device load."""
        if not self.assignment:
            return 0
        return max(device_loads(self.assignment, self.n_devices))

    @property
    def is_optimal(self) -> bool:
        """True if the schedule meets the ``ceil(b/N)`` bound."""
        return self.accesses == optimal_accesses(
            self.n_requests, self.n_devices)

    def loads(self) -> List[int]:
        """Per-device load vector."""
        return device_loads(self.assignment, self.n_devices)

    def rounds(self) -> Dict[int, List[Tuple[int, int]]]:
        """Group requests into access rounds.

        Returns ``{round_index: [(request_index, device), ...]}`` where
        each device appears at most once per round -- the parallel
        retrieval timetable of the paper's Figure 5.
        """
        next_round = [0] * self.n_devices
        table: Dict[int, List[Tuple[int, int]]] = {}
        for i, d in enumerate(self.assignment):
            r = next_round[d]
            next_round[d] += 1
            table.setdefault(r, []).append((i, d))
        return table

    def render_timeline(self, labels: Sequence[str] | None = None,
                        ) -> str:
        """Figure-5-style text timetable: devices x access rounds.

        Each cell shows which request a device serves in that round
        (``labels[i]`` if given, else the request index); ``.`` marks
        an idle device.
        """
        if labels is not None and len(labels) != self.n_requests:
            raise ValueError("labels must align with requests")
        rounds = self.rounds()
        n_rounds = len(rounds)
        grid = [["." for _ in range(n_rounds)]
                for _ in range(self.n_devices)]
        for r, members in rounds.items():
            for i, d in members:
                grid[d][r] = labels[i] if labels else str(i)
        width = max((len(c) for row in grid for c in row), default=1)
        width = max(width, len(f"r{n_rounds - 1}") if n_rounds else 2)
        header = "device | " + " ".join(
            f"r{r}".rjust(width) for r in range(n_rounds))
        lines = [header, "-" * len(header)]
        for d, row in enumerate(grid):
            lines.append(f"d{d:<5} | "
                         + " ".join(c.rjust(width) for c in row))
        return "\n".join(lines)


def validate_schedule(schedule: "RetrievalSchedule",
                      candidates: Sequence[Sequence[int]]) -> None:
    """Raise ``ValueError`` unless ``schedule`` is a valid answer.

    Checks cardinality, device ranges, and that every request landed
    on one of its replica devices.  Used by the property tests and by
    callers composing custom retrieval strategies.
    """
    if schedule.n_requests != len(candidates):
        raise ValueError(
            f"schedule covers {schedule.n_requests} requests, "
            f"input has {len(candidates)}")
    for i, (dev, cands) in enumerate(zip(schedule.assignment,
                                         candidates)):
        if not 0 <= dev < schedule.n_devices:
            raise ValueError(f"request {i}: device {dev} out of range")
        if dev not in cands:
            raise ValueError(
                f"request {i}: device {dev} is not a replica "
                f"(candidates {tuple(cands)})")


__all__.append("validate_schedule")
