"""Interval handling: splitting traces into the paper's time windows.

Real traces come pre-broken into intervals (Exchange: 15-minute
windows; TPC-E: six 10-16 minute parts); the QoS framework additionally
works in short scheduling intervals ``T``.  Both granularities reduce
to the same operation: bucketing requests by time boundaries.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from repro.traces.records import Trace

__all__ = ["split_intervals", "split_at", "interval_index"]


def interval_index(arrival_ms: np.ndarray, interval_ms: float) -> np.ndarray:
    """Vectorised interval index for each arrival."""
    if interval_ms <= 0:
        raise ValueError("interval_ms must be positive")
    return np.floor(arrival_ms / interval_ms + 1e-9).astype(np.int64)


def split_intervals(trace: Trace, interval_ms: float,
                    n_intervals: int | None = None) -> List[Trace]:
    """Split into equal windows of ``interval_ms``.

    Returns one (possibly empty) :class:`Trace` per window, covering
    ``[0, n_intervals * interval_ms)``; ``n_intervals`` defaults to
    just past the last arrival.
    """
    idx = interval_index(trace.arrival_ms, interval_ms)
    if n_intervals is None:
        n_intervals = int(idx.max()) + 1 if len(trace) else 0
    return [trace.filter(idx == i) for i in range(n_intervals)]


def split_at(trace: Trace, boundaries_ms: Sequence[float]) -> List[Trace]:
    """Split at explicit boundaries (for unequal TPC-E parts).

    ``boundaries_ms`` are the *end* times of each window; window ``i``
    covers ``[boundaries[i-1], boundaries[i])`` with an implicit start
    at 0.
    """
    out: List[Trace] = []
    prev = 0.0
    for end in boundaries_ms:
        if end <= prev:
            raise ValueError("boundaries must be strictly increasing")
        out.append(trace.time_slice(prev, end))
        prev = end
    return out
