"""Trace transforms: scaling, sampling, merging, clipping.

The utilities behind DESIGN.md's scaling note: real traces are orders
of magnitude larger than laptop experiments want, and the properties
the experiments consume survive principled shrinking -- *time scaling*
preserves per-service-time contention, *downsampling* preserves the
block population, *merging* composes multi-tenant workloads.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.traces.records import TRACE_DTYPE, Trace

__all__ = ["time_scale", "downsample", "merge", "clip",
           "remap_blocks"]


def time_scale(trace: Trace, factor: float) -> Trace:
    """Multiply all arrival times by ``factor``.

    ``factor < 1`` compresses the trace (higher request rate),
    ``> 1`` stretches it.  Blocks and sizes are untouched.
    """
    if factor <= 0:
        raise ValueError("factor must be positive")
    data = trace.data.copy()
    data["arrival_ms"] *= factor
    return Trace(data)


def downsample(trace: Trace, fraction: float, seed: int = 0) -> Trace:
    """Keep a uniform random ``fraction`` of requests.

    Sampling is per-request and order-preserving; use it to thin a
    trace while keeping its temporal shape and block population.
    """
    if not 0 < fraction <= 1:
        raise ValueError("fraction must be in (0, 1]")
    if fraction == 1.0 or len(trace) == 0:
        return Trace(trace.data.copy())
    rng = np.random.default_rng(seed)
    mask = rng.random(len(trace)) < fraction
    return trace.filter(mask)


def merge(traces: Sequence[Trace]) -> Trace:
    """Interleave several traces into one arrival-sorted stream."""
    return Trace.concat(traces).sorted()


def clip(trace: Trace, start_ms: float = 0.0,
         end_ms: Optional[float] = None,
         rebase: bool = True) -> Trace:
    """Cut out ``[start_ms, end_ms)`` and optionally rebase to t=0."""
    if end_ms is not None and end_ms <= start_ms:
        raise ValueError("end_ms must exceed start_ms")
    end = end_ms if end_ms is not None else float("inf")
    a = trace.arrival_ms
    out = trace.filter((a >= start_ms) & (a < end))
    if rebase and len(out):
        out = out.shifted(-start_ms)
    return out


def remap_blocks(trace: Trace, modulo: int,
                 offset: int = 0) -> Trace:
    """Fold block numbers into ``[offset, offset + modulo)``.

    The quick-and-dirty alternative to FIM matching (§IV-A's
    ``dataBlockNumber % numberOfDesignBlocks`` fallback applied up
    front), useful for feeding arbitrary traces to a fixed design.
    """
    if modulo < 1:
        raise ValueError("modulo must be >= 1")
    data = trace.data.copy()
    data["block"] = data["block"] % modulo + offset
    return Trace(data)
