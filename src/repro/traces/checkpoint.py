"""Scientific checkpoint/restart workload.

The paper's introduction lists "scientific applications with real time
storage requirements" among the framework's motivating users.  The
canonical HPC I/O pattern is *checkpoint/restart*: long compute phases
with sparse reads, punctuated by synchronized bursts in which every
rank dumps its state -- a pure write storm that stresses exactly the
replica-consistent write path of the online driver.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from repro.traces.records import Trace

__all__ = ["CheckpointModel"]


@dataclass(frozen=True)
class CheckpointModel:
    """Generator of checkpoint/restart traces.

    Attributes
    ----------
    n_ranks:
        Parallel application ranks; each writes ``blocks_per_rank``
        blocks per checkpoint.
    checkpoint_period_ms:
        Time between checkpoint storms.
    n_checkpoints:
        Storms in the trace.
    blocks_per_rank:
        State size per rank, in 8 KB blocks.
    burst_span_ms:
        How tightly a storm's writes cluster.
    background_read_rate:
        Poisson rate (req/ms) of compute-phase reads.
    n_blocks:
        Data-block universe for background reads.
    seed:
        RNG seed.
    """

    n_ranks: int = 8
    checkpoint_period_ms: float = 20.0
    n_checkpoints: int = 4
    blocks_per_rank: int = 4
    burst_span_ms: float = 0.5
    background_read_rate: float = 2.0
    n_blocks: int = 4096
    seed: int = 0

    def __post_init__(self):
        if self.n_ranks < 1 or self.n_checkpoints < 1:
            raise ValueError("need at least one rank and checkpoint")
        if self.checkpoint_period_ms <= 0 or self.burst_span_ms < 0:
            raise ValueError("invalid timing parameters")
        if self.background_read_rate < 0:
            raise ValueError("read rate must be >= 0")

    @property
    def duration_ms(self) -> float:
        return self.checkpoint_period_ms * self.n_checkpoints

    def generate(self) -> Tuple[Trace, List[bool]]:
        """Returns ``(trace, reads)`` aligned for the online player."""
        rng = np.random.default_rng(self.seed)
        arrivals: List[float] = []
        blocks: List[int] = []
        reads: List[bool] = []

        # compute-phase background reads
        n_bg = rng.poisson(self.background_read_rate
                           * self.duration_ms)
        for t in np.sort(rng.uniform(0, self.duration_ms, n_bg)):
            arrivals.append(float(t))
            blocks.append(int(rng.integers(0, self.n_blocks)))
            reads.append(True)

        # checkpoint storms: every rank writes its state region
        for c in range(self.n_checkpoints):
            t0 = (c + 1) * self.checkpoint_period_ms \
                - self.burst_span_ms
            for rank in range(self.n_ranks):
                offsets = np.sort(
                    rng.uniform(0, self.burst_span_ms,
                                self.blocks_per_rank))
                base = self.n_blocks + rank * self.blocks_per_rank
                for j, off in enumerate(offsets):
                    arrivals.append(float(t0 + off))
                    blocks.append(base + j)
                    reads.append(False)

        order = np.argsort(np.asarray(arrivals), kind="stable")
        trace = Trace.from_arrays(
            np.asarray(arrivals)[order],
            np.asarray(blocks, dtype=np.int64)[order],
            is_read=np.asarray(reads, dtype=bool)[order])
        return trace, [bool(trace.is_read[i]) for i in range(len(trace))]
