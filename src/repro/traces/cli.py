"""``repro-trace``: generate, convert and summarise traces.

Subcommands
-----------

``generate``
    Produce a synthetic (§V-B1), Exchange-like or TPC-E-like trace and
    write it as DiskSim ASCII or CSV.
``convert``
    Convert between DiskSim ASCII and CSV.
``stats``
    Print per-interval statistics (the Figure 6 columns).
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional

from repro.traces.io import (
    read_csv,
    read_disksim_ascii,
    write_csv,
    write_disksim_ascii,
)
from repro.traces.records import Trace
from repro.traces.stats import interval_statistics
from repro.traces.intervals import split_intervals

__all__ = ["main"]


def _read(path: Path) -> Trace:
    if path.suffix.lower() == ".csv":
        return read_csv(path)
    return read_disksim_ascii(path)


def _write(trace: Trace, path: Path) -> None:
    if path.suffix.lower() == ".csv":
        write_csv(trace, path)
    else:
        write_disksim_ascii(trace, path)


def _cmd_generate(args) -> int:
    if args.workload == "synthetic":
        from repro.traces.synthetic import synthetic_trace

        trace = synthetic_trace(args.requests_per_interval,
                                args.interval_ms,
                                total_requests=args.total,
                                seed=args.seed)
    elif args.workload == "exchange":
        from repro.traces.exchange import exchange_like_trace

        parts = exchange_like_trace(scale=args.scale, seed=args.seed,
                                    n_intervals=args.intervals)
        trace = Trace.concat(parts)
    elif args.workload == "tpce":
        from repro.traces.tpce import tpce_like_trace

        trace = Trace.concat(tpce_like_trace(scale=args.scale,
                                             seed=args.seed))
    else:  # pragma: no cover - argparse restricts choices
        raise ValueError(args.workload)
    _write(trace, Path(args.output))
    print(f"wrote {len(trace)} requests to {args.output}")
    return 0


def _cmd_convert(args) -> int:
    trace = _read(Path(args.input))
    _write(trace, Path(args.output))
    print(f"converted {len(trace)} requests: "
          f"{args.input} -> {args.output}")
    return 0


def _cmd_stats(args) -> int:
    trace = _read(Path(args.input)).sorted()
    parts = split_intervals(trace, args.interval_ms)
    stats = interval_statistics(parts, interval_ms=args.interval_ms,
                                rate_window_ms=args.rate_window_ms)
    print(f"{'interval':>8} | {'total':>8} | {'avg req/s':>12} | "
          f"{'max req/s':>12}")
    for s in stats:
        print(f"{s.index:>8} | {s.total_requests:>8} | "
              f"{s.avg_req_per_sec:>12.1f} | {s.max_req_per_sec:>12.1f}")
    print(f"TOTAL {len(trace)} requests over {len(stats)} intervals")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-trace",
        description="Generate, convert and summarise block traces.")
    sub = parser.add_subparsers(dest="command", required=True)

    gen = sub.add_parser("generate", help="generate a workload trace")
    gen.add_argument("workload",
                     choices=["synthetic", "exchange", "tpce"])
    gen.add_argument("output", help="output file (.trace or .csv)")
    gen.add_argument("--seed", type=int, default=0)
    gen.add_argument("--scale", type=float, default=0.5,
                     help="volume scale for exchange/tpce")
    gen.add_argument("--intervals", type=int, default=24,
                     help="interval count for exchange")
    gen.add_argument("--requests-per-interval", type=int, default=5)
    gen.add_argument("--interval-ms", type=float, default=0.133)
    gen.add_argument("--total", type=int, default=10_000)
    gen.set_defaults(func=_cmd_generate)

    conv = sub.add_parser("convert", help="convert between formats")
    conv.add_argument("input")
    conv.add_argument("output")
    conv.set_defaults(func=_cmd_convert)

    st = sub.add_parser("stats", help="per-interval statistics")
    st.add_argument("input")
    st.add_argument("--interval-ms", type=float, default=60.0)
    st.add_argument("--rate-window-ms", type=float, default=5.0)
    st.set_defaults(func=_cmd_stats)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
