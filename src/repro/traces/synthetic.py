"""Synthetic workload generation (paper §V-B1).

"We have developed a trace generation tool that ... requires the number
of devices, interval duration, and the number of blocks to be requested
for each interval, and produces the trace by randomly selecting the
blocks to be requested from the available design blocks."

All requests in an interval arrive exactly at the interval start, as in
the paper's Table III experiments (5 blocks / 0.133 ms,
14 / 0.266 ms, 27 / 0.399 ms, 10 000 requests each).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.traces.records import Trace

__all__ = ["synthetic_trace", "table3_trace"]


def synthetic_trace(requests_per_interval: int, interval_ms: float,
                    n_blocks_pool: int = 36,
                    total_requests: int = 10_000,
                    replace: bool = False,
                    seed: int = 0) -> Trace:
    """Generate the §V-B1 synthetic trace.

    Parameters
    ----------
    requests_per_interval:
        Blocks requested at each interval start.
    interval_ms:
        Interval duration ``T``.
    n_blocks_pool:
        Pool of available design blocks (paper: 36 for (9,3,1)).
    total_requests:
        Total request count (paper: 10 000); the last interval may be
        short.
    replace:
        Sample blocks with replacement inside an interval.  The default
        (False) keeps each interval's blocks distinct so that the
        design-theoretic guarantee statement applies verbatim.
    seed:
        RNG seed.
    """
    if requests_per_interval < 1:
        raise ValueError("requests_per_interval must be >= 1")
    if not replace and requests_per_interval > n_blocks_pool:
        raise ValueError("cannot draw more distinct blocks than the pool")
    rng = np.random.default_rng(seed)
    arrivals, blocks = [], []
    t = 0.0
    remaining = total_requests
    while remaining > 0:
        k = min(requests_per_interval, remaining)
        picks = rng.choice(n_blocks_pool, size=k, replace=replace)
        arrivals.extend([t] * k)
        blocks.extend(int(b) for b in picks)
        remaining -= k
        t += interval_ms
    return Trace.from_arrays(arrivals, blocks)


#: The three Table III workloads: (requests per interval, interval ms).
TABLE3_WORKLOADS = ((5, 0.133), (14, 0.266), (27, 0.399))


def table3_trace(row: int, seed: int = 0,
                 total_requests: int = 10_000) -> Trace:
    """One of the three Table III traces by row index (0, 1, 2)."""
    reqs, interval = TABLE3_WORKLOADS[row]
    return synthetic_trace(reqs, interval, total_requests=total_requests,
                           seed=seed)
