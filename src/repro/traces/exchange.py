"""Exchange-like workload (paper §V-B2, Figure 6a/b).

The original: a Microsoft Exchange 2007 mail server for 5000 users --
9 active volumes, ~40 M block reads over 24 hours, broken into 96
15-minute intervals.  Our statistical stand-in keeps the structural
facts the experiments consume -- 9 volumes, 96 intervals, a diurnal
rate profile with bursts, Zipf popularity, and *low* pattern
persistence (the paper measures only ~17 % of blocks recurring through
FIM between consecutive intervals) -- at laptop scale: interval
durations and request counts shrink by ``scale`` while per-request
contention (requests per service time) is preserved.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.traces.records import Trace
from repro.traces.workload_model import CorrelatedWorkloadModel, \
    WorkloadInterval

__all__ = ["exchange_like_trace", "exchange_model", "EXCHANGE_N_VOLUMES",
           "EXCHANGE_N_INTERVALS"]

EXCHANGE_N_VOLUMES = 9
EXCHANGE_N_INTERVALS = 96

#: Scaled stand-in for one 15-minute interval.
_INTERVAL_MS = 60.0
_BASE_REQUESTS = 320


def _diurnal_counts(n_intervals: int, base: int,
                    seed: int) -> List[int]:
    """Request budgets following a day-shaped curve with noise.

    The Exchange trace starts at 2:39 pm; load stays high through the
    afternoon, dips overnight and climbs again next morning (the
    double-hump visible in the paper's Figure 6(b)).
    """
    rng = np.random.default_rng(seed ^ 0x5EED)
    hours = 24.0 * np.arange(n_intervals) / n_intervals + 14.65
    phase = 2 * np.pi * (hours % 24.0) / 24.0
    # peak mid-afternoon, trough ~4am
    shape = 1.0 + 0.55 * np.cos(phase - 2 * np.pi * 15.5 / 24.0)
    noise = rng.normal(1.0, 0.12, size=n_intervals).clip(0.6, 1.5)
    counts = np.maximum(8, (base * shape * noise)).astype(int)
    return [int(c) for c in counts]


def exchange_model(scale: float = 1.0, seed: int = 0,
                   n_intervals: int = EXCHANGE_N_INTERVALS,
                   ) -> CorrelatedWorkloadModel:
    """The Exchange-like model; ``scale`` multiplies request volume."""
    if scale <= 0:
        raise ValueError("scale must be positive")
    base = max(1, int(_BASE_REQUESTS * scale))
    counts = _diurnal_counts(n_intervals, base, seed)
    intervals = [WorkloadInterval(_INTERVAL_MS, c) for c in counts]
    return CorrelatedWorkloadModel(
        intervals,
        n_volumes=EXCHANGE_N_VOLUMES,
        n_blocks=131072,
        zipf_a=1.05,
        pair_fraction=0.18,
        persistence=0.40,
        n_hot_pairs=48,
        pair_window_ms=0.05,
        burst_fraction=0.25,
        burst_size_mean=5.0,
        burst_span_ms=0.12,
        seed=seed,
    )


def exchange_like_trace(scale: float = 1.0, seed: int = 0,
                        n_intervals: int = EXCHANGE_N_INTERVALS,
                        ) -> List[Trace]:
    """Per-interval traces of the Exchange-like workload."""
    return exchange_model(scale, seed, n_intervals).generate()
