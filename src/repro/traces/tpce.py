"""TPC-E-like workload (paper §V-B2, Figure 6c/d).

The original: the TPC-E OLTP benchmark at a brokerage firm -- 13 active
volumes, ~101 M block reads over 84 minutes in six 10-16 minute parts.
The stand-in keeps 13 volumes, 6 unequal intervals, a high and nearly
flat request rate, and *very high* pattern persistence (the paper
measures ~87 % of blocks recurring through FIM between consecutive
parts) -- OLTP touches the same hot working set over and over.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.traces.records import Trace
from repro.traces.workload_model import CorrelatedWorkloadModel, \
    WorkloadInterval

__all__ = ["tpce_like_trace", "tpce_model", "TPCE_N_VOLUMES",
           "TPCE_N_INTERVALS", "TPCE_PART_FRACTIONS"]

TPCE_N_VOLUMES = 13
TPCE_N_INTERVALS = 6

#: Relative part lengths mimicking the 10-16 minute spread of the six
#: TPC-E parts.
TPCE_PART_FRACTIONS = (12.0, 16.0, 14.0, 10.0, 16.0, 16.0)

#: Scaled stand-in duration of the whole 84-minute trace.
_TOTAL_MS = 360.0
_BASE_REQUESTS_PER_PART = 900


def tpce_model(scale: float = 1.0, seed: int = 0) -> CorrelatedWorkloadModel:
    """The TPC-E-like model; ``scale`` multiplies request volume."""
    if scale <= 0:
        raise ValueError("scale must be positive")
    rng = np.random.default_rng(seed ^ 0x7CE)
    total_frac = sum(TPCE_PART_FRACTIONS)
    intervals = []
    for frac in TPCE_PART_FRACTIONS:
        dur = _TOTAL_MS * frac / total_frac
        jitter = float(rng.normal(1.0, 0.05))
        n = max(1, int(_BASE_REQUESTS_PER_PART * scale
                       * (frac / 14.0) * jitter))
        intervals.append(WorkloadInterval(dur, n))
    return CorrelatedWorkloadModel(
        intervals,
        n_volumes=TPCE_N_VOLUMES,
        n_blocks=4096,
        zipf_a=1.3,
        pair_fraction=0.90,
        persistence=0.92,
        n_hot_pairs=96,
        pair_window_ms=0.05,
        burst_fraction=0.18,
        burst_size_mean=3.0,
        burst_span_ms=0.10,
        seed=seed,
    )


def tpce_like_trace(scale: float = 1.0, seed: int = 0) -> List[Trace]:
    """Per-interval traces of the TPC-E-like workload."""
    return tpce_model(scale, seed).generate()
