"""Trace file formats.

Two interchange formats:

* **DiskSim ASCII** -- the 5-column format the paper's trace tool
  produces for DiskSim: ``arrival devno blkno size flags`` per line
  (arrival in ms, size in blocks, flags bit 0 set for reads).
* **CSV** -- SNIA-IOTTA-style ``timestamp,device,block,size,op`` rows.
"""

from __future__ import annotations

import io
from pathlib import Path
from typing import TextIO, Union

import numpy as np

from repro.traces.records import BLOCK_BYTES, TRACE_DTYPE, Trace

__all__ = [
    "write_disksim_ascii",
    "read_disksim_ascii",
    "write_csv",
    "read_csv",
]

PathLike = Union[str, Path]

#: DiskSim validation trace flag: bit 0 = read.
_READ_FLAG = 1


def _open(target: Union[PathLike, TextIO], mode: str):
    if hasattr(target, "write") or hasattr(target, "read"):
        return target, False
    return open(target, mode), True


def write_disksim_ascii(trace: Trace, target: Union[PathLike, TextIO]
                        ) -> None:
    """Write ``trace`` in DiskSim ASCII input format."""
    fh, owned = _open(target, "w")
    try:
        for row in trace.data:
            flags = _READ_FLAG if row["is_read"] else 0
            size_blocks = max(1, int(row["size_bytes"]) // BLOCK_BYTES)
            fh.write(f"{row['arrival_ms']:.6f} {row['device']} "
                     f"{row['block']} {size_blocks} {flags}\n")
    finally:
        if owned:
            fh.close()


def read_disksim_ascii(source: Union[PathLike, TextIO]) -> Trace:
    """Read a DiskSim ASCII trace."""
    fh, owned = _open(source, "r")
    try:
        rows = []
        for lineno, line in enumerate(fh, 1):
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            parts = line.split()
            if len(parts) != 5:
                raise ValueError(
                    f"line {lineno}: expected 5 fields, got {len(parts)}")
            arrival, dev, blk, size, flags = parts
            rows.append((float(arrival), int(dev), int(blk),
                         int(size) * BLOCK_BYTES, bool(int(flags) & 1)))
        data = np.array(rows, dtype=TRACE_DTYPE) if rows else \
            np.zeros(0, dtype=TRACE_DTYPE)
        return Trace(data)
    finally:
        if owned:
            fh.close()


def write_csv(trace: Trace, target: Union[PathLike, TextIO]) -> None:
    """Write ``trace`` as SNIA-style CSV with a header line."""
    fh, owned = _open(target, "w")
    try:
        fh.write("timestamp_ms,device,block,size_bytes,op\n")
        for row in trace.data:
            op = "R" if row["is_read"] else "W"
            fh.write(f"{row['arrival_ms']:.6f},{row['device']},"
                     f"{row['block']},{row['size_bytes']},{op}\n")
    finally:
        if owned:
            fh.close()


def read_csv(source: Union[PathLike, TextIO]) -> Trace:
    """Read a SNIA-style CSV trace (header optional)."""
    fh, owned = _open(source, "r")
    try:
        rows = []
        for lineno, line in enumerate(fh, 1):
            line = line.strip()
            if not line:
                continue
            if lineno == 1 and line.lower().startswith("timestamp"):
                continue
            parts = line.split(",")
            if len(parts) != 5:
                raise ValueError(
                    f"line {lineno}: expected 5 fields, got {len(parts)}")
            ts, dev, blk, size, op = parts
            rows.append((float(ts), int(dev), int(blk), int(size),
                         op.strip().upper().startswith("R")))
        data = np.array(rows, dtype=TRACE_DTYPE) if rows else \
            np.zeros(0, dtype=TRACE_DTYPE)
        return Trace(data)
    finally:
        if owned:
            fh.close()
