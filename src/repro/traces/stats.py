"""Per-interval trace statistics (paper Figure 6).

For each trace interval the paper plots the maximum and average number
of read requests per second and the total read count.  The per-second
maximum uses one-second sub-windows inside the interval.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from repro.traces.records import Trace

__all__ = ["IntervalStats", "interval_statistics", "burstiness"]


@dataclass(frozen=True)
class IntervalStats:
    """Statistics of one trace interval."""

    index: int
    start_ms: float
    end_ms: float
    total_requests: int
    avg_req_per_sec: float
    max_req_per_sec: float

    @property
    def duration_ms(self) -> float:
        return self.end_ms - self.start_ms


def _window_counts(arrivals_ms: np.ndarray, start_ms: float,
                   end_ms: float, window_ms: float) -> np.ndarray:
    """Histogram of request counts over ``window_ms`` sub-windows."""
    n_win = max(1, int(np.ceil((end_ms - start_ms) / window_ms - 1e-9)))
    edges = start_ms + window_ms * np.arange(n_win + 1)
    counts, _ = np.histogram(arrivals_ms, bins=edges)
    return counts


def interval_statistics(intervals: Sequence[Trace],
                        boundaries_ms: Sequence[float] | None = None,
                        interval_ms: float | None = None,
                        rate_window_ms: float = 1000.0,
                        ) -> List[IntervalStats]:
    """Figure-6 statistics for a list of interval traces.

    Provide either equal ``interval_ms`` windows or explicit
    ``boundaries_ms`` end times (matching
    :func:`repro.traces.intervals.split_at`).

    ``rate_window_ms`` is the sub-window over which the peak rate is
    measured -- 1 s for real traces (the paper's "maximum requests per
    second"), proportionally smaller for time-scaled synthetic traces.
    """
    if (boundaries_ms is None) == (interval_ms is None):
        raise ValueError("provide exactly one of boundaries_ms/interval_ms")
    if rate_window_ms <= 0:
        raise ValueError("rate_window_ms must be positive")
    out: List[IntervalStats] = []
    prev = 0.0
    win_sec = rate_window_ms / 1000.0
    for i, part in enumerate(intervals):
        if interval_ms is not None:
            start, end = i * interval_ms, (i + 1) * interval_ms
        else:
            start, end = prev, float(boundaries_ms[i])
            prev = end
        arr = part.arrival_ms
        total = len(part)
        dur_sec = (end - start) / 1000.0
        avg = total / dur_sec if dur_sec > 0 else 0.0
        mx = (float(_window_counts(arr, start, end,
                                   rate_window_ms).max()) / win_sec
              if total else 0.0)
        out.append(IntervalStats(index=i, start_ms=start, end_ms=end,
                                 total_requests=total,
                                 avg_req_per_sec=avg, max_req_per_sec=mx))
    return out


@dataclass(frozen=True)
class BurstinessStats:
    """Arrival burstiness measures over fixed counting windows.

    * ``index_of_dispersion``: variance/mean of per-window counts --
      1 for Poisson, > 1 for bursty, < 1 for regular (e.g. streaming)
      arrivals.
    * ``peak_to_mean``: max window count over mean window count.
    * ``cv_interarrival``: coefficient of variation of inter-arrival
      gaps -- 1 for Poisson, 0 for perfectly periodic.
    """

    index_of_dispersion: float
    peak_to_mean: float
    cv_interarrival: float


def burstiness(trace: Trace, window_ms: float) -> BurstinessStats:
    """Burstiness of a trace's arrival process.

    Used to calibrate the synthetic workload models against target
    contention levels (DESIGN.md scaling note) and as a sanity check
    that generated traces have the intended temporal texture.
    """
    if window_ms <= 0:
        raise ValueError("window_ms must be positive")
    arr = np.sort(np.asarray(trace.arrival_ms, dtype=np.float64))
    if len(arr) < 2:
        return BurstinessStats(0.0, 0.0, 0.0)
    span = arr[-1] - arr[0]
    n_win = max(1, int(np.ceil(span / window_ms - 1e-9)) or 1)
    edges = arr[0] + window_ms * np.arange(n_win + 1)
    counts, _ = np.histogram(arr, bins=edges)
    mean = counts.mean()
    iod = float(counts.var() / mean) if mean > 0 else 0.0
    p2m = float(counts.max() / mean) if mean > 0 else 0.0
    gaps = np.diff(arr)
    gap_mean = gaps.mean()
    cv = float(gaps.std() / gap_mean) if gap_mean > 0 else 0.0
    return BurstinessStats(index_of_dispersion=iod,
                           peak_to_mean=p2m, cv_interarrival=cv)
