"""Media-streaming workload: periodic constant-bitrate streams.

The paper's introduction motivates the framework with "multimedia
streaming with cloud players ... video/game on demand": clients
consuming media at a constant bitrate issue perfectly periodic block
reads and miss frames when a read overruns its period.  This model
generates such streams and scores deadline misses, matching the
application/period abstraction of §III-A (each stream is an
``Application`` with a fixed request size per period).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from repro.traces.records import Trace

__all__ = ["StreamSpec", "streaming_trace", "deadline_misses"]


@dataclass(frozen=True)
class StreamSpec:
    """One constant-bitrate stream.

    Attributes
    ----------
    name:
        Stream identifier.
    period_ms:
        Time between consecutive block reads (8 KB per read; a 1 Mbps
        stream at 8 KB blocks reads every ~65 ms, a Blu-ray-class one
        every ~1.6 ms).
    start_block:
        First block of the stream's media file.
    length_blocks:
        Media length in blocks.
    offset_ms:
        Stream start time.
    jitter_ms:
        Uniform arrival jitter (client-side timer noise).
    """

    name: str
    period_ms: float
    start_block: int
    length_blocks: int
    offset_ms: float = 0.0
    jitter_ms: float = 0.0

    def __post_init__(self):
        if self.period_ms <= 0:
            raise ValueError("period_ms must be positive")
        if self.length_blocks < 1:
            raise ValueError("length_blocks must be >= 1")
        if self.jitter_ms < 0 or self.jitter_ms >= self.period_ms:
            raise ValueError("jitter must be in [0, period)")

    @property
    def requests_per_ms(self) -> float:
        return 1.0 / self.period_ms


def streaming_trace(streams: Sequence[StreamSpec],
                    duration_ms: float,
                    seed: int = 0) -> Tuple[Trace, List[str]]:
    """Interleave ``streams`` over ``duration_ms``.

    Returns the merged :class:`Trace` (sequential blocks per stream,
    arrival-sorted) and the per-request stream names (aligned with the
    trace rows) for deadline accounting.
    """
    if duration_ms <= 0:
        raise ValueError("duration_ms must be positive")
    rng = np.random.default_rng(seed)
    arrivals: List[float] = []
    blocks: List[int] = []
    owners: List[str] = []
    for spec in streams:
        t = spec.offset_ms
        i = 0
        while t < duration_ms and i < spec.length_blocks:
            jitter = rng.uniform(0, spec.jitter_ms) if spec.jitter_ms \
                else 0.0
            arrivals.append(t + jitter)
            blocks.append(spec.start_block + i)
            owners.append(spec.name)
            t += spec.period_ms
            i += 1
    order = np.argsort(np.asarray(arrivals), kind="stable")
    trace = Trace.from_arrays(
        np.asarray(arrivals)[order],
        np.asarray(blocks, dtype=np.int64)[order])
    return trace, [owners[i] for i in order]


def deadline_misses(streams: Sequence[StreamSpec],
                    owners: Sequence[str],
                    completions_ms: Sequence[float],
                    arrivals_ms: Sequence[float]) -> dict:
    """Per-stream deadline-miss counts.

    A request misses when it completes after ``arrival + period`` --
    the client needed the block before its next read.
    """
    by_name = {s.name: s for s in streams}
    misses = {s.name: 0 for s in streams}
    totals = {s.name: 0 for s in streams}
    for owner, done, arr in zip(owners, completions_ms, arrivals_ms):
        spec = by_name[owner]
        totals[owner] += 1
        if done > arr + spec.period_ms + 1e-9:
            misses[owner] += 1
    return {name: {"missed": misses[name], "total": totals[name]}
            for name in misses}
