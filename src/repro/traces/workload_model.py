"""Statistical workload model for synthesising SNIA-like traces.

The paper evaluates on two SNIA IOTTA traces (Exchange, TPC-E) that are
not redistributable here; per DESIGN.md we replace them with a
statistical model reproducing the three properties the paper's
experiments actually consume:

1. **Per-interval volume/rate profile** (Figure 6): each trace interval
   has a duration and a request budget; arrivals inside an interval are
   a Poisson process overlaid with *microbursts* (clusters of requests
   within a few service times) that create the device contention behind
   the delayed-request percentages of Figures 8-10.
2. **Block popularity**: Zipf-distributed over a configurable block
   universe, with blocks statically striped over the original volumes
   (the "original stand" baseline retrieves each block from that
   volume).
3. **Pair structure and persistence**: a fraction of requests is issued
   as *correlated pairs* drawn from a hot-pair working set; each pair
   survives into the next interval with probability ``persistence``.
   Frequent-itemset mining of interval ``i-1`` then recognises
   ``~ pair_fraction * persistence`` of interval ``i``'s requests --
   the knob behind the paper's 17 % (Exchange) vs 87 % (TPC-E)
   FIM match rates (Figure 11).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.traces.records import Trace

__all__ = ["CorrelatedWorkloadModel", "WorkloadInterval",
           "assign_apps"]


@dataclass(frozen=True)
class WorkloadInterval:
    """Shape of one trace interval."""

    duration_ms: float
    n_requests: int


class CorrelatedWorkloadModel:
    """Generator of correlated, bursty block-request traces.

    Parameters
    ----------
    intervals:
        Interval shapes (duration + request budget each).
    n_volumes:
        Devices/volumes of the original trace (Exchange: 9, TPC-E: 13).
    n_blocks:
        Size of the data-block universe.
    zipf_a:
        Zipf exponent of block popularity (> 1; higher = more skew).
    pair_fraction:
        Fraction of requests issued as correlated pairs.
    persistence:
        Probability that a hot pair survives into the next interval.
    n_hot_pairs:
        Size of the hot-pair working set.
    pair_window_ms:
        Max gap between the two requests of a pair (must stay below the
        FIM transaction window for the pair to be minable).
    burst_fraction:
        Fraction of requests delivered inside microbursts.
    burst_size_mean:
        Mean burst size (geometric).
    burst_span_ms:
        Time span over which one burst's requests land.
    seed:
        RNG seed; generation is fully deterministic given the seed.
    """

    def __init__(self, intervals: Sequence[WorkloadInterval],
                 n_volumes: int, n_blocks: int = 4096,
                 zipf_a: float = 1.3,
                 pair_fraction: float = 0.4,
                 persistence: float = 0.5,
                 n_hot_pairs: int = 64,
                 pair_window_ms: float = 0.05,
                 burst_fraction: float = 0.3,
                 burst_size_mean: float = 6.0,
                 burst_span_ms: float = 0.1,
                 seed: int = 0):
        if not intervals:
            raise ValueError("need at least one interval")
        if not 0 <= pair_fraction <= 1:
            raise ValueError("pair_fraction must be in [0, 1]")
        if not 0 <= persistence <= 1:
            raise ValueError("persistence must be in [0, 1]")
        if not 0 <= burst_fraction <= 1:
            raise ValueError("burst_fraction must be in [0, 1]")
        if zipf_a <= 1.0:
            raise ValueError("zipf_a must exceed 1")
        self.intervals = list(intervals)
        self.n_volumes = n_volumes
        self.n_blocks = n_blocks
        self.zipf_a = zipf_a
        self.pair_fraction = pair_fraction
        self.persistence = persistence
        self.n_hot_pairs = n_hot_pairs
        self.pair_window_ms = pair_window_ms
        self.burst_fraction = burst_fraction
        self.burst_size_mean = burst_size_mean
        self.burst_span_ms = burst_span_ms
        self.seed = seed

    # -- helpers -----------------------------------------------------------
    def _zipf_block(self, rng: np.random.Generator, size: int) -> np.ndarray:
        """Zipf-popular blocks folded into the universe."""
        raw = rng.zipf(self.zipf_a, size=size)
        return (raw - 1) % self.n_blocks

    def _fresh_pair(self, rng: np.random.Generator) -> Tuple[int, int]:
        a = int(self._zipf_block(rng, 1)[0])
        b = int(self._zipf_block(rng, 1)[0])
        while b == a:
            b = int(self._zipf_block(rng, 1)[0])
        return a, b

    def volume_of(self, block: int) -> int:
        """Static block -> original volume striping."""
        return block % self.n_volumes

    # -- generation -----------------------------------------------------------
    def generate(self) -> List[Trace]:
        """Produce one :class:`Trace` per interval (times are global)."""
        rng = np.random.default_rng(self.seed)
        hot_pairs: List[Tuple[int, int]] = [
            self._fresh_pair(rng) for _ in range(self.n_hot_pairs)]
        out: List[Trace] = []
        start = 0.0
        for spec in self.intervals:
            # evolve the hot-pair working set
            hot_pairs = [
                p if rng.random() < self.persistence
                else self._fresh_pair(rng)
                for p in hot_pairs]
            out.append(self._generate_interval(rng, spec, start, hot_pairs))
            start += spec.duration_ms
        return out

    def _generate_interval(self, rng: np.random.Generator,
                           spec: WorkloadInterval, start: float,
                           hot_pairs: List[Tuple[int, int]]) -> Trace:
        n = spec.n_requests
        arrivals: List[float] = []
        blocks: List[int] = []

        # 1. anchor times: bursts + independent arrivals
        n_burst_requests = int(round(n * self.burst_fraction))
        anchor_times: List[float] = []
        placed = 0
        while placed < n_burst_requests:
            size = min(1 + rng.geometric(1.0 / self.burst_size_mean),
                       n_burst_requests - placed)
            t0 = start + rng.random() * spec.duration_ms
            offs = np.sort(rng.random(size)) * self.burst_span_ms
            anchor_times.extend(float(t0 + o) for o in offs)
            placed += size
        n_single = n - len(anchor_times)
        anchor_times.extend(
            float(start + t)
            for t in np.sort(rng.random(n_single)) * spec.duration_ms)
        anchor_times.sort()

        # 2. assign blocks: correlated pairs vs singles
        i = 0
        while i < len(anchor_times):
            t = anchor_times[i]
            if (i + 1 < len(anchor_times)
                    and rng.random() < self.pair_fraction
                    and hot_pairs):
                a, b = hot_pairs[rng.integers(len(hot_pairs))]
                gap = rng.random() * self.pair_window_ms
                arrivals.extend((t, t + gap))
                blocks.extend((a, b))
                i += 2
            else:
                arrivals.append(t)
                blocks.append(int(self._zipf_block(rng, 1)[0]))
                i += 1

        order = np.argsort(np.asarray(arrivals), kind="stable")
        arr = np.asarray(arrivals)[order]
        blk = np.asarray(blocks, dtype=np.int64)[order]
        vols = blk % self.n_volumes
        return Trace.from_arrays(arr, blk, device=vols)


def assign_apps(n_requests: int, app_names: Sequence[str],
                weights: Optional[Sequence[float]] = None,
                seed: int = 0) -> List[str]:
    """Tag requests with application names for multi-tenant runs.

    Weighted random assignment (uniform by default); aligned with any
    generated trace by index.  Used with
    :meth:`repro.core.qos.QoSFlashArray.run_online`'s ``apps``/
    ``tenant_budgets`` arguments.
    """
    if not app_names:
        raise ValueError("need at least one application name")
    if weights is not None:
        if len(weights) != len(app_names):
            raise ValueError("weights must align with app_names")
        if any(w < 0 for w in weights) or sum(weights) <= 0:
            raise ValueError("weights must be non-negative, not all 0")
        p = np.asarray(weights, dtype=float)
        p = p / p.sum()
    else:
        p = None
    rng = np.random.default_rng(seed)
    picks = rng.choice(len(app_names), size=n_requests, p=p)
    return [app_names[i] for i in picks]
