"""Trace infrastructure: tables, I/O, statistics and workload models.

The pandas-free substrate for everything the paper does with traces:

* :class:`~repro.traces.records.Trace` -- a numpy-structured-array
  table of block requests,
* :mod:`~repro.traces.io` -- DiskSim-ASCII and CSV readers/writers,
* :mod:`~repro.traces.intervals` -- interval splitting,
* :mod:`~repro.traces.stats` -- the per-interval statistics of Fig 6,
* :mod:`~repro.traces.synthetic` -- the synthetic workload generator
  of §V-B1,
* :mod:`~repro.traces.workload_model` -- the correlated statistical
  workload model used to synthesise SNIA-like traces,
* :mod:`~repro.traces.exchange` / :mod:`~repro.traces.tpce` -- the
  Exchange-like and TPC-E-like parameterisations.
"""

from repro.traces.exchange import exchange_like_trace
from repro.traces.intervals import split_intervals
from repro.traces.io import (
    read_csv,
    read_disksim_ascii,
    write_csv,
    write_disksim_ascii,
)
from repro.traces.records import Trace
from repro.traces.stats import interval_statistics
from repro.traces.synthetic import synthetic_trace
from repro.traces.tpce import tpce_like_trace
from repro.traces.workload_model import CorrelatedWorkloadModel

__all__ = [
    "CorrelatedWorkloadModel",
    "Trace",
    "exchange_like_trace",
    "interval_statistics",
    "read_csv",
    "read_disksim_ascii",
    "split_intervals",
    "synthetic_trace",
    "tpce_like_trace",
    "write_csv",
    "write_disksim_ascii",
]
