"""The :class:`Trace` table: block requests as a structured array.

Columns (dtype ``TRACE_DTYPE``):

* ``arrival_ms`` -- request arrival time in milliseconds,
* ``device`` -- the device/volume named by the original trace (the
  "original stand" of §V-D, where each request is served by the device
  the trace says),
* ``block`` -- data block (bucket) number, 8 KB-aligned,
* ``size_bytes`` -- request size,
* ``is_read`` -- read flag (the paper's experiments are read-only).

The class provides the small slice of pandas the project needs:
construction from arrays, sorting, masking, concatenation and
8 KB block alignment.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence

import numpy as np

__all__ = ["Trace", "TRACE_DTYPE", "BLOCK_BYTES"]

#: The paper aligns requests to 8 KB blocks "as in DiskSim" (§V-D).
BLOCK_BYTES = 8192

TRACE_DTYPE = np.dtype([
    ("arrival_ms", np.float64),
    ("device", np.int32),
    ("block", np.int64),
    ("size_bytes", np.int32),
    ("is_read", np.bool_),
])


class Trace:
    """An immutable-by-convention table of block requests."""

    def __init__(self, data: np.ndarray):
        if data.dtype != TRACE_DTYPE:
            raise TypeError(f"expected dtype {TRACE_DTYPE}, got {data.dtype}")
        self._data = data

    # -- constructors -----------------------------------------------------
    @classmethod
    def from_arrays(cls, arrival_ms: Sequence[float],
                    block: Sequence[int],
                    device: Optional[Sequence[int]] = None,
                    size_bytes: Optional[Sequence[int]] = None,
                    is_read: Optional[Sequence[bool]] = None) -> "Trace":
        """Build a trace from parallel columns (missing ones defaulted)."""
        n = len(arrival_ms)
        data = np.zeros(n, dtype=TRACE_DTYPE)
        data["arrival_ms"] = np.asarray(arrival_ms, dtype=np.float64)
        data["block"] = np.asarray(block, dtype=np.int64)
        data["device"] = (np.asarray(device, dtype=np.int32)
                          if device is not None else 0)
        data["size_bytes"] = (np.asarray(size_bytes, dtype=np.int32)
                              if size_bytes is not None else BLOCK_BYTES)
        data["is_read"] = (np.asarray(is_read, dtype=np.bool_)
                           if is_read is not None else True)
        return cls(data)

    @classmethod
    def empty(cls) -> "Trace":
        return cls(np.zeros(0, dtype=TRACE_DTYPE))

    @classmethod
    def concat(cls, traces: Iterable["Trace"]) -> "Trace":
        arrays = [t._data for t in traces]
        if not arrays:
            return cls.empty()
        return cls(np.concatenate(arrays))

    # -- column access ------------------------------------------------------
    @property
    def data(self) -> np.ndarray:
        return self._data

    @property
    def arrival_ms(self) -> np.ndarray:
        return self._data["arrival_ms"]

    @property
    def block(self) -> np.ndarray:
        return self._data["block"]

    @property
    def device(self) -> np.ndarray:
        return self._data["device"]

    @property
    def size_bytes(self) -> np.ndarray:
        return self._data["size_bytes"]

    @property
    def is_read(self) -> np.ndarray:
        return self._data["is_read"]

    # -- transforms -----------------------------------------------------------
    def sorted(self) -> "Trace":
        """Stable sort by arrival time."""
        order = np.argsort(self._data["arrival_ms"], kind="stable")
        return Trace(self._data[order])

    def filter(self, mask: np.ndarray) -> "Trace":
        """Rows where ``mask`` is True."""
        return Trace(self._data[np.asarray(mask, dtype=bool)])

    def reads_only(self) -> "Trace":
        return self.filter(self._data["is_read"])

    def time_slice(self, start_ms: float, end_ms: float) -> "Trace":
        """Rows with ``start_ms <= arrival < end_ms``."""
        a = self._data["arrival_ms"]
        return self.filter((a >= start_ms) & (a < end_ms))

    def shifted(self, offset_ms: float) -> "Trace":
        """Copy with arrival times shifted by ``offset_ms``."""
        data = self._data.copy()
        data["arrival_ms"] += offset_ms
        return Trace(data)

    def aligned_blocks(self, block_bytes: int = BLOCK_BYTES) -> "Trace":
        """Expand multi-block requests into unit 8 KB block requests.

        A request of ``size_bytes`` starting at ``block`` becomes
        ``ceil(size / block_bytes)`` single-block requests on
        consecutive blocks at the same arrival time (paper §V-D:
        "the requests are aligned to 8 KB of block sizes").
        """
        sizes = np.maximum(1, -(-self._data["size_bytes"] // block_bytes))
        total = int(sizes.sum())
        out = np.zeros(total, dtype=TRACE_DTYPE)
        pos = 0
        for row, n in zip(self._data, sizes):
            for j in range(int(n)):
                out[pos] = (row["arrival_ms"], row["device"],
                            row["block"] + j, block_bytes, row["is_read"])
                pos += 1
        return Trace(out)

    # -- dunder -----------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._data)

    def __getitem__(self, idx) -> "Trace":
        sub = self._data[idx]
        if isinstance(idx, (int, np.integer)):
            sub = np.asarray([sub], dtype=TRACE_DTYPE)
        return Trace(sub)

    def __repr__(self) -> str:
        span = (f"[{self.arrival_ms.min():.3f}, {self.arrival_ms.max():.3f}]"
                if len(self) else "[]")
        return f"<Trace n={len(self)} span_ms={span}>"
