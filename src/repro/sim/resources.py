"""Queueing primitives: capacity-limited resources and item stores.

These follow the simpy idiom: ``request()``/``get()`` return events that
a process yields on, and fire when the resource grants access.  Queues
are strictly FIFO, keeping simulations deterministic.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Any, Deque, List

from repro.sim.events import Event

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.core import Environment

__all__ = ["Resource", "Store", "PriorityStore"]


class Request(Event):
    """An outstanding claim on a :class:`Resource`.

    Supports the context-manager protocol so processes can write::

        with resource.request() as req:
            yield req
            ...
    """

    def __init__(self, resource: "Resource"):
        super().__init__(resource.env)
        self.resource = resource

    def __enter__(self) -> "Request":
        return self

    def __exit__(self, *exc) -> None:
        self.resource.release(self)


class Resource:
    """A resource with ``capacity`` concurrent users and a FIFO queue."""

    def __init__(self, env: "Environment", capacity: int = 1):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.env = env
        self.capacity = capacity
        self.users: List[Request] = []
        self.queue: Deque[Request] = deque()

    @property
    def count(self) -> int:
        """Number of requests currently holding the resource."""
        return len(self.users)

    def request(self) -> Request:
        """Claim the resource; the returned event fires when granted."""
        req = Request(self)
        if len(self.users) < self.capacity:
            self.users.append(req)
            req.succeed(None)
        else:
            self.queue.append(req)
        return req

    def release(self, req: Request) -> None:
        """Release a granted (or cancel a queued) request."""
        if req in self.users:
            self.users.remove(req)
            if self.queue:
                nxt = self.queue.popleft()
                self.users.append(nxt)
                nxt.succeed(None)
        else:
            try:
                self.queue.remove(req)
            except ValueError:
                pass  # releasing twice is a no-op


class Store:
    """An unbounded-or-bounded FIFO store of Python objects."""

    def __init__(self, env: "Environment", capacity: float = float("inf")):
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.env = env
        self.capacity = capacity
        self.items: Deque[Any] = deque()
        self._getters: Deque[Event] = deque()
        self._putters: Deque[tuple[Event, Any]] = deque()

    def put(self, item: Any) -> Event:
        """Add ``item``; fires immediately unless the store is full."""
        ev = Event(self.env)
        if self._getters:
            getter = self._getters.popleft()
            getter.succeed(item)
            ev.succeed(None)
        elif len(self.items) < self.capacity:
            self.items.append(item)
            ev.succeed(None)
        else:
            self._putters.append((ev, item))
        return ev

    def get(self) -> Event:
        """Remove the oldest item; fires when one is available."""
        ev = Event(self.env)
        if self.items:
            ev.succeed(self.items.popleft())
            if self._putters:
                put_ev, item = self._putters.popleft()
                self.items.append(item)
                put_ev.succeed(None)
        else:
            self._getters.append(ev)
        return ev

    def __len__(self) -> int:
        return len(self.items)


class PriorityStore:
    """A store serving lowest-priority-value items first.

    ``put(item, priority)`` enqueues; ``get()`` returns the pending
    item with the smallest priority, FIFO within equal priorities.
    Unbounded (the flash modules that use it model device queues with
    no admission of their own).
    """

    def __init__(self, env: "Environment"):
        import heapq as _heapq

        self.env = env
        self._heapq = _heapq
        self._items: list = []
        self._seq = 0
        self._getters: Deque[Event] = deque()

    def put(self, item: Any, priority: int = 0) -> Event:
        """Add ``item`` at ``priority`` (lower = served sooner)."""
        ev = Event(self.env)
        self._heapq.heappush(self._items,
                             (priority, self._seq, item))
        self._seq += 1
        if self._getters:
            getter = self._getters.popleft()
            _, _, head = self._heapq.heappop(self._items)
            getter.succeed(head)
        ev.succeed(None)
        return ev

    def get(self) -> Event:
        """Remove the highest-priority (lowest value) pending item."""
        ev = Event(self.env)
        if self._items:
            _, _, item = self._heapq.heappop(self._items)
            ev.succeed(item)
        else:
            self._getters.append(ev)
        return ev

    def __len__(self) -> int:
        return len(self._items)
