"""Discrete-event simulation kernel.

A small, deterministic discrete-event simulation (DES) library in the
spirit of ``simpy`` (which is not available in this environment).  It
provides:

* :class:`~repro.sim.core.Environment` -- the event loop and clock,
* :class:`~repro.sim.events.Event` / :class:`~repro.sim.events.Timeout` --
  schedulable occurrences,
* :class:`~repro.sim.process.Process` -- generator-based cooperative
  processes,
* :class:`~repro.sim.resources.Resource` and
  :class:`~repro.sim.resources.Store` -- queueing primitives.

Time is unit-agnostic; throughout this project the convention is
**milliseconds** (matching DiskSim's reporting granularity).  Event
ordering is fully deterministic: ties in time are broken by scheduling
sequence number, so repeated runs of the same model produce identical
traces.
"""

from repro.sim.core import Environment
from repro.sim.events import AllOf, AnyOf, Event, Interrupted, \
    Timeout, TimeoutUntil
from repro.sim.process import Process
from repro.sim.resources import Resource, Store

__all__ = [
    "AllOf",
    "AnyOf",
    "Environment",
    "Event",
    "Interrupted",
    "Process",
    "Resource",
    "Store",
    "Timeout",
    "TimeoutUntil",
]
