"""Event primitives for the DES kernel.

An :class:`Event` is the unit of synchronisation: processes yield events
and are resumed when the event *fires*.  Events carry a value (delivered
to the waiting process) or an exception (raised inside it).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, Iterable, List, Optional

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.core import Environment

__all__ = ["Event", "Timeout", "TimeoutUntil", "AllOf", "AnyOf",
           "Interrupted"]

_PENDING = object()


class Interrupted(Exception):
    """Raised inside a process that has been interrupted.

    The ``cause`` attribute carries the value passed to
    :meth:`repro.sim.process.Process.interrupt`.
    """

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


class Event:
    """A one-shot occurrence that processes can wait on.

    Lifecycle: *pending* -> *triggered* (scheduled on the event queue)
    -> *processed* (callbacks ran).  An event may succeed with a value
    or fail with an exception; failing delivers the exception into every
    waiting process.
    """

    def __init__(self, env: "Environment"):
        self.env = env
        self.callbacks: Optional[List[Callable[["Event"], None]]] = []
        self._value: Any = _PENDING
        self._ok: bool = True

    # -- state ---------------------------------------------------------
    @property
    def triggered(self) -> bool:
        """True once the event has a value (success or failure)."""
        return self._value is not _PENDING

    @property
    def processed(self) -> bool:
        """True once the callbacks have been executed."""
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        """True if the event succeeded (valid only once triggered)."""
        if not self.triggered:
            raise RuntimeError("event value not yet available")
        return self._ok

    @property
    def value(self) -> Any:
        """The value the event succeeded or failed with."""
        if self._value is _PENDING:
            raise RuntimeError("event value not yet available")
        return self._value

    # -- triggering ----------------------------------------------------
    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully with ``value``."""
        if self.triggered:
            raise RuntimeError(f"{self!r} already triggered")
        self._value = value
        self._ok = True
        self.env._schedule_event(self)
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event with an exception."""
        if self.triggered:
            raise RuntimeError(f"{self!r} already triggered")
        if not isinstance(exception, BaseException):
            raise TypeError("fail() requires an exception instance")
        self._value = exception
        self._ok = False
        self.env._schedule_event(self)
        return self

    def _run_callbacks(self) -> None:
        callbacks, self.callbacks = self.callbacks, None
        assert callbacks is not None
        for cb in callbacks:
            cb(self)

    def add_callback(self, cb: Callable[["Event"], None]) -> None:
        """Register ``cb`` to run when the event is processed.

        If the event was already processed the callback runs
        immediately (this makes waiting on completed events safe).
        """
        if self.callbacks is None:
            cb(self)
        else:
            self.callbacks.append(cb)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "processed" if self.processed else (
            "triggered" if self.triggered else "pending")
        return f"<{type(self).__name__} {state} at {id(self):#x}>"


class Timeout(Event):
    """An event that fires ``delay`` time units after creation."""

    def __init__(self, env: "Environment", delay: float, value: Any = None):
        if delay < 0:
            raise ValueError(f"negative delay {delay!r}")
        super().__init__(env)
        self.delay = delay
        self._value = value
        self._ok = True
        env._schedule_event(self, delay=delay)

    # A Timeout is triggered at construction; succeed/fail are invalid.
    def succeed(self, value: Any = None) -> "Event":  # pragma: no cover
        raise RuntimeError("Timeout events cannot be re-triggered")

    def fail(self, exception: BaseException) -> "Event":  # pragma: no cover
        raise RuntimeError("Timeout events cannot be re-triggered")


class TimeoutUntil(Event):
    """An event that fires at the *absolute* simulation time ``when``.

    Unlike ``Timeout(when - env.now)``, the wake-up time is stored
    exactly: computing a relative delay and re-adding it to the clock
    accumulates floating-point round-off (``now + (t - now) != t`` in
    general), which would make closed-form response-time computations
    disagree with the event loop by ulps.  Trace players schedule
    arrivals and deferred issues with this event so simulated
    timestamps equal the trace floats bit-for-bit.
    """

    def __init__(self, env: "Environment", when: float, value: Any = None):
        if when < env.now:
            raise ValueError(f"target time {when!r} is in the past "
                             f"(now={env.now!r})")
        super().__init__(env)
        self.when = when
        self._value = value
        self._ok = True
        env._schedule_event(self, at=when)

    # Triggered at construction, like Timeout.
    def succeed(self, value: Any = None) -> "Event":  # pragma: no cover
        raise RuntimeError("TimeoutUntil events cannot be re-triggered")

    def fail(self, exception: BaseException) -> "Event":  # pragma: no cover
        raise RuntimeError("TimeoutUntil events cannot be re-triggered")


class _Condition(Event):
    """Base for AllOf/AnyOf composite events.

    Completion is tracked through *processed* events (callbacks run),
    not merely triggered ones -- a Timeout is triggered at construction
    but only completes when the clock reaches it.
    """

    def __init__(self, env: "Environment", events: Iterable[Event]):
        super().__init__(env)
        self.events: List[Event] = list(events)
        for ev in self.events:
            if ev.env is not env:
                raise ValueError("all events must share one Environment")
        for ev in self.events:
            # add_callback invokes immediately for processed events.
            ev.add_callback(self._on_event_done)
        self._check_empty()

    def _check_empty(self) -> None:
        if not self.events and not self.triggered:
            self.succeed(self._collect())

    def _collect(self) -> dict:
        return {ev: ev.value for ev in self.events if ev.triggered and ev.ok}

    def _on_event_done(self, ev: Event) -> None:
        raise NotImplementedError


class AllOf(_Condition):
    """Fires when *all* constituent events have fired.

    Succeeds with a dict mapping each event to its value.  Fails as soon
    as any constituent fails.
    """

    def _on_event_done(self, ev: Event) -> None:
        if self.triggered:
            return
        if not ev.ok:
            self.fail(ev.value)
            return
        if all(e.processed for e in self.events):
            self.succeed(self._collect())


class AnyOf(_Condition):
    """Fires when *any* constituent event fires."""

    def _on_event_done(self, ev: Event) -> None:
        if self.triggered:
            return
        if not ev.ok:
            self.fail(ev.value)
            return
        self.succeed(self._collect())
