"""The simulation environment: clock and event loop.

The :class:`Environment` owns a binary-heap event queue keyed by
``(time, sequence)``.  The sequence number makes event ordering at equal
timestamps deterministic (FIFO in scheduling order), which in turn makes
every simulation in this project bit-for-bit reproducible.
"""

from __future__ import annotations

import heapq
from typing import Any, Generator, List, Optional, Tuple

from repro import obs
from repro.check import sanitizers
from repro.sim.events import Event, Timeout, TimeoutUntil
from repro.sim.process import Process

__all__ = ["Environment", "EmptySchedule"]


class EmptySchedule(Exception):
    """Raised by :meth:`Environment.step` when no events remain."""


class Environment:
    """A discrete-event simulation environment.

    Parameters
    ----------
    initial_time:
        Starting value of the simulation clock (default ``0.0``).

    Examples
    --------
    >>> env = Environment()
    >>> def proc(env):
    ...     yield env.timeout(5.0)
    ...     return env.now
    >>> p = env.process(proc(env))
    >>> env.run()
    >>> p.value
    5.0
    """

    def __init__(self, initial_time: float = 0.0,
                 trace: bool = False):
        self._now = float(initial_time)
        self._queue: List[Tuple[float, int, Event]] = []
        self._seq = 0
        self._active_process: Optional[Process] = None
        #: when tracing, every processed event appends
        #: ``(time, event_type_name)`` here -- a cheap debugging aid
        #: for simulation models (see docs/architecture.md)
        self.trace_log: Optional[List[Tuple[float, str]]] = \
            [] if trace else None
        #: last ``(time, seq)`` popped; the event-ordering sanitizer
        #: asserts pops never regress on this key
        self._last_key: Optional[Tuple[float, int]] = None

    # -- clock -----------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulation time."""
        return self._now

    @property
    def active_process(self) -> Optional[Process]:
        """The process currently executing, if any."""
        return self._active_process

    # -- factories -------------------------------------------------------
    def event(self) -> Event:
        """Create a fresh pending :class:`Event`."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create an event firing ``delay`` units from now."""
        return Timeout(self, delay, value)

    def timeout_until(self, when: float, value: Any = None) -> TimeoutUntil:
        """Create an event firing at the absolute time ``when``.

        Prefer this over ``timeout(when - now)`` when the target time
        is a meaningful float (a trace arrival, an interval boundary):
        the round-trip through a relative delay is not exact in
        floating point.
        """
        return TimeoutUntil(self, when, value)

    def process(self, generator: Generator) -> Process:
        """Start a new :class:`Process` from a generator."""
        return Process(self, generator)

    # -- scheduling ------------------------------------------------------
    def _schedule_event(self, event: Event, delay: float = 0.0,
                        at: Optional[float] = None) -> None:
        """Place a triggered event on the queue ``delay`` from now.

        ``at`` overrides ``delay`` with an exact absolute time (used by
        :class:`~repro.sim.events.TimeoutUntil` to avoid float drift).
        """
        when = self._now + delay if at is None else at
        heapq.heappush(self._queue, (when, self._seq, event))
        self._seq += 1

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if none."""
        return self._queue[0][0] if self._queue else float("inf")

    def step(self) -> None:
        """Process the single next event.

        Raises
        ------
        EmptySchedule
            If the event queue is empty.
        """
        if not self._queue:
            raise EmptySchedule()
        when, seq, event = heapq.heappop(self._queue)
        if sanitizers.ACTIVE:
            sanitizers.check_event_order(self._last_key, (when, seq))
            self._last_key = (when, seq)
        if obs.ACTIVE:
            obs.SESSION.on_kernel_event(type(event).__name__)
        if when < self._now:  # pragma: no cover - guarded by Timeout ctor
            raise RuntimeError("event scheduled in the past")
        self._now = when
        if self.trace_log is not None:
            self.trace_log.append((when, type(event).__name__))
        event._run_callbacks()

    def run(self, until: Optional[float] = None) -> None:
        """Run until the queue drains or the clock reaches ``until``.

        When ``until`` is given and the queue still holds later events,
        the clock is advanced exactly to ``until``.
        """
        if until is not None and until < self._now:
            raise ValueError(
                f"until ({until}) must not be before now ({self._now})")
        while self._queue:
            if until is not None and self._queue[0][0] > until:
                self._now = until
                return
            self.step()
        if until is not None:
            self._now = until
