"""Generator-based cooperative processes.

A :class:`Process` drives a Python generator: every value the generator
yields must be an :class:`~repro.sim.events.Event`; the process sleeps
until that event fires and is resumed with the event's value (or the
event's exception is thrown into it).  A process is itself an event that
fires when the generator returns, so processes can wait on each other.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Generator

from repro.sim.events import Event, Interrupted

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.core import Environment

__all__ = ["Process"]


class Process(Event):
    """A running simulation process.

    Parameters
    ----------
    env:
        The owning environment.
    generator:
        A generator yielding :class:`Event` instances.  Its return value
        becomes the process's event value.
    """

    def __init__(self, env: "Environment", generator: Generator):
        if not hasattr(generator, "send") or not hasattr(generator, "throw"):
            raise TypeError(f"process requires a generator, got {generator!r}")
        super().__init__(env)
        self._generator = generator
        self._target: Event | None = None
        # Kick off on a zero-delay event so construction never runs user
        # code re-entrantly.
        boot = Event(env)
        boot.succeed(None)
        boot.add_callback(self._resume)
        self._target = boot

    @property
    def is_alive(self) -> bool:
        """True while the generator has not finished."""
        return not self.triggered

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupted` into the process.

        The process must currently be waiting on an event; the event is
        abandoned and the exception is raised at the ``yield``.
        """
        if self.triggered:
            raise RuntimeError("cannot interrupt a finished process")
        if self._target is None:  # pragma: no cover - defensive
            raise RuntimeError("process has no wait target")
        # Deliver asynchronously via a failed zero-delay event so that
        # interrupt() is safe to call from within another process.
        target, self._target = self._target, None
        if target.callbacks is not None and self._resume in target.callbacks:
            target.callbacks.remove(self._resume)
        exc_event = Event(self.env)
        exc_event.fail(Interrupted(cause))
        exc_event.add_callback(self._resume)
        self._target = exc_event

    def _resume(self, event: Event) -> None:
        self._target = None
        env = self.env
        prev, env._active_process = env._active_process, self
        try:
            while True:
                try:
                    if event.ok:
                        next_ev = self._generator.send(event.value)
                    else:
                        next_ev = self._generator.throw(event.value)
                except StopIteration as stop:
                    self.succeed(stop.value)
                    return
                if not isinstance(next_ev, Event):
                    raise RuntimeError(
                        f"process yielded non-event {next_ev!r}")
                if next_ev.processed:
                    # Already done: loop immediately with its outcome.
                    event = next_ev
                    continue
                self._target = next_ev
                next_ev.add_callback(self._resume)
                return
        finally:
            env._active_process = prev
