"""SLA-driven configuration planner.

The paper's conclusion stresses tunability: "utilization of the system
can be tuned by adjusting the parameters".  The planner turns that
around -- given an application's service-level objective (response-time
target and sustained request rate) it proposes ``(N, c, M, T)``
configurations whose deterministic guarantee meets the SLO, using only
the guarantee algebra and the design catalog.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.core.guarantees import guarantee_capacity
from repro.designs.catalog import get_design
from repro.flash.params import FlashParams, MSR_SSD_PARAMS

__all__ = ["SLO", "Plan", "plan_configurations"]


@dataclass(frozen=True)
class SLO:
    """A service-level objective.

    Attributes
    ----------
    response_ms:
        Hard per-request response-time target.
    requests_per_ms:
        Sustained admitted request rate the system must support.
    """

    response_ms: float
    requests_per_ms: float

    def __post_init__(self):
        if self.response_ms <= 0:
            raise ValueError("response_ms must be positive")
        if self.requests_per_ms <= 0:
            raise ValueError("requests_per_ms must be positive")


@dataclass(frozen=True)
class Plan:
    """One feasible configuration for an SLO."""

    n_devices: int
    replication: int
    accesses: int
    interval_ms: float
    capacity_per_interval: int
    throughput_per_ms: float
    storage_overhead: int

    @property
    def design_name(self) -> str:
        return f"({self.n_devices},{self.replication},1)"

    def describe(self) -> str:
        return (f"{self.design_name} M={self.accesses} "
                f"T={self.interval_ms:.3f}ms: admits "
                f"S={self.capacity_per_interval}/interval "
                f"({self.throughput_per_ms:.1f} req/ms), "
                f"{self.storage_overhead}x storage")


def _design_exists(n: int, c: int) -> bool:
    try:
        get_design(n, c)
        return True
    except (ValueError, RecursionError):
        return False


def plan_configurations(
    slo: SLO,
    device_counts: Sequence[int] = (7, 9, 13, 15, 19, 21, 25),
    replications: Sequence[int] = (2, 3),
    params: Optional[FlashParams] = None,
    max_plans: int = 10,
) -> List[Plan]:
    """Enumerate configurations meeting ``slo``, cheapest first.

    A configuration ``(N, c, M)`` is feasible when

    * an ``(N, c, 1)`` design exists in the catalog,
    * ``M`` service times fit the response target
      (``M * read_ms <= response_ms``), the interval being
      ``T = M * read_ms``,
    * the admitted throughput ``S(M) / T`` covers the requested rate,
      where additionally ``S`` cannot exceed ``N * M`` (devices are the
      physical bound).

    Results are sorted by total storage cost ``N * c``, then ``c``.
    """
    read_ms = (params or MSR_SSD_PARAMS).read_ms
    plans: List[Plan] = []
    max_m = max(1, int(slo.response_ms / read_ms + 1e-9))
    for n in sorted(device_counts):
        for c in replications:
            if c > n or not _design_exists(n, c):
                continue
            for m in range(1, max_m + 1):
                interval = m * read_ms
                s = min(guarantee_capacity(m, c), n * m)
                throughput = s / interval
                if throughput >= slo.requests_per_ms:
                    plans.append(Plan(
                        n_devices=n, replication=c, accesses=m,
                        interval_ms=interval,
                        capacity_per_interval=s,
                        throughput_per_ms=throughput,
                        storage_overhead=c,
                    ))
                    break  # smallest M suffices for this (N, c)
    plans.sort(key=lambda p: (p.n_devices * p.replication,
                              p.replication, p.accesses))
    return plans[:max_plans]
