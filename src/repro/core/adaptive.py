"""Adaptive statistical QoS: closing the loop on epsilon.

The paper shows (§V-E) that ε *tunes* the delayed-request fraction but
leaves choosing it to the operator.  This module automates the choice:
a small feedback controller observes each trace interval's delayed
fraction and nudges ε toward a target -- multiplicative
increase/decrease, the classic AIMD-style rule that is robust to the
(unknown, workload-dependent) shape of the delayed(ε) curve, which
Figure 10 shows to be monotone decreasing.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.experiments.common import play_workload
from repro.traces.records import Trace

__all__ = ["AdaptiveEpsilonController", "AdaptiveRunResult"]


@dataclass
class AdaptiveRunResult:
    """Trajectory of one adaptive run."""

    epsilons: List[float]
    delayed_pct: List[float]
    avg_response: List[float]

    @property
    def final_epsilon(self) -> float:
        return self.epsilons[-1]

    def converged(self, target_pct: float, tolerance: float) -> bool:
        """Did the last interval land within tolerance of the target?"""
        return abs(self.delayed_pct[-1] - target_pct) <= tolerance


class AdaptiveEpsilonController:
    """Multiplicative feedback on ε against a delayed-% target.

    Parameters
    ----------
    target_delayed_pct:
        Desired percentage of delayed requests.
    epsilon0:
        Starting value.
    gain:
        Multiplicative step: ε grows by ``1 + gain`` when delays exceed
        the target (admit more conflicts), shrinks by ``1 / (1 + gain)``
        when below (tighten back toward deterministic).
    epsilon_bounds:
        Clamp range for ε.
    """

    def __init__(self, target_delayed_pct: float,
                 epsilon0: float = 1e-4, gain: float = 0.5,
                 epsilon_bounds: tuple = (1e-6, 0.5)):
        if target_delayed_pct < 0:
            raise ValueError("target must be >= 0")
        if epsilon0 <= 0:
            raise ValueError("epsilon0 must be positive")
        if gain <= 0:
            raise ValueError("gain must be positive")
        lo, hi = epsilon_bounds
        if not 0 < lo < hi:
            raise ValueError("invalid epsilon bounds")
        self.target = target_delayed_pct
        self.epsilon = epsilon0
        self.gain = gain
        self.bounds = (lo, hi)

    def update(self, observed_delayed_pct: float) -> float:
        """One feedback step; returns the new ε."""
        if observed_delayed_pct < 0:
            raise ValueError("observed percentage must be >= 0")
        if observed_delayed_pct > self.target:
            self.epsilon *= (1.0 + self.gain)
        elif observed_delayed_pct < self.target:
            self.epsilon /= (1.0 + self.gain)
        lo, hi = self.bounds
        self.epsilon = min(hi, max(lo, self.epsilon))
        return self.epsilon

    # -- offline driving over trace intervals ------------------------------
    def drive(self, parts: Sequence[Trace], n_devices: int,
              replication: int = 3,
              qos_interval_ms: float = 0.133,
              seed: int = 0) -> AdaptiveRunResult:
        """Play each trace interval with the current ε, then adapt.

        Each part is played independently (its own array state), which
        matches the per-interval accounting of Figures 8-10; the
        controller state carries across parts.
        """
        epsilons: List[float] = []
        delayed: List[float] = []
        responses: List[float] = []
        for part in parts:
            epsilons.append(self.epsilon)
            run = play_workload([part], n_devices=n_devices,
                                replication=replication,
                                qos_interval_ms=qos_interval_ms,
                                epsilon=self.epsilon, seed=seed)
            st = run.report.overall
            delayed.append(st.pct_delayed)
            responses.append(st.avg)
            self.update(st.pct_delayed)
        return AdaptiveRunResult(epsilons=epsilons,
                                 delayed_pct=delayed,
                                 avg_response=responses)
