"""Application and request model (paper §III-A, Table I).

Applications join the system declaring a *request size* (block requests
per period); the admission controller accepts an application only while
the total declared request size stays within the guarantee ``S``.  Each
period, applications then issue concrete block requests -- triples
``(a, b, c)`` naming the devices holding the three copies.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.guarantees import guarantee_capacity

__all__ = ["BlockRequest", "Application", "ApplicationAdmission",
           "table1_scenario"]


@dataclass(frozen=True)
class BlockRequest:
    """One block request, identified by its replica device tuple.

    The paper's notation ``(a, b, c)`` -- first copy on device ``a``,
    second on ``b``, third on ``c``.
    """

    devices: Tuple[int, ...]
    app: str = ""

    def __post_init__(self):
        if len(set(self.devices)) != len(self.devices):
            raise ValueError(f"duplicate devices in request {self.devices}")

    @property
    def primary(self) -> int:
        return self.devices[0]


@dataclass
class Application:
    """An application with a fixed per-period request budget."""

    name: str
    request_size: int
    joined_at: Optional[int] = None

    def __post_init__(self):
        if self.request_size < 0:
            raise ValueError("request_size must be >= 0")


class ApplicationAdmission:
    """Admission of whole applications by declared request size (§III-A).

    Mirrors the worked example: with the (9,3,1) design and M=1 the
    system capacity is ``S = 5`` requests per period; applications are
    admitted while the sum of their declared sizes fits.
    """

    def __init__(self, replication: int, accesses: int = 1):
        self.limit = guarantee_capacity(accesses, replication)
        self.applications: Dict[str, Application] = {}

    @property
    def total_request_size(self) -> int:
        return sum(a.request_size for a in self.applications.values())

    @property
    def remaining(self) -> int:
        return self.limit - self.total_request_size

    def admit(self, app: Application, period: Optional[int] = None) -> bool:
        """Admit ``app`` if its declared size fits; returns the verdict."""
        if app.name in self.applications:
            raise ValueError(f"application {app.name!r} already admitted")
        if self.total_request_size + app.request_size > self.limit:
            return False
        app.joined_at = period
        self.applications[app.name] = app
        return True

    def leave(self, name: str) -> None:
        """Remove an application, freeing its budget."""
        self.applications.pop(name)

    def validate_period(self, requests: Sequence[BlockRequest]) -> None:
        """Check a period's concrete requests against declared budgets."""
        per_app: Dict[str, int] = {}
        for r in requests:
            per_app[r.app] = per_app.get(r.app, 0) + 1
        for name, used in per_app.items():
            declared = self.applications.get(name)
            if declared is None:
                raise ValueError(f"unknown application {name!r}")
            if used > declared.request_size:
                raise ValueError(
                    f"application {name!r} issued {used} requests, "
                    f"declared {declared.request_size}")


def table1_scenario() -> Dict[int, List[BlockRequest]]:
    """The exact I/O requests of the paper's Table I.

    Returns ``{period: [BlockRequest, ...]}`` for periods ``T0..T3``.
    """
    def reqs(app: str, *triples: Tuple[int, int, int]) -> List[BlockRequest]:
        return [BlockRequest(devices=t, app=app) for t in triples]

    return {
        0: reqs("app1", (0, 3, 6), (5, 7, 0)),
        1: (reqs("app1", (0, 4, 8))
            + reqs("app2", (8, 0, 4), (7, 0, 5))),
        2: (reqs("app1", (1, 2, 0))
            + reqs("app3", (6, 0, 3))),
        3: (reqs("app1", (1, 4, 7))
            + reqs("app2", (1, 3, 8), (0, 5, 7))
            + reqs("app3", (0, 1, 2))),
    }
