"""Multi-tenant admission: per-application budget enforcement.

Paper §III-A admits whole *applications* by declared request size; the
system-level limit ``S`` is then partitioned among them.  This module
enforces both levels per interval:

* the system admits at most ``S`` requests,
* each application admits at most its declared size,

so one tenant bursting cannot consume another tenant's guarantee --
the isolation property implicit in the paper's Table I walkthrough.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.core.guarantees import guarantee_capacity

__all__ = ["TenantAdmission", "TenantDecision"]


@dataclass(frozen=True)
class TenantDecision:
    """Outcome of one tenant-aware admission query."""

    admitted: bool
    #: which budget refused ("" when admitted; "app" or "system")
    refused_by: str = ""

    def __bool__(self) -> bool:
        return self.admitted


class TenantAdmission:
    """Two-level (system + per-application) interval budgets.

    Parameters
    ----------
    budgets:
        Declared request size per application name.
    replication, accesses:
        System capacity parameters; ``S = (c-1)M^2 + cM``.
    strict:
        When True (default) the combined declared sizes must fit the
        system limit, mirroring the paper's admission of applications.
    """

    def __init__(self, budgets: Dict[str, int], replication: int,
                 accesses: int = 1, strict: bool = True):
        if any(b < 0 for b in budgets.values()):
            raise ValueError("budgets must be >= 0")
        self.limit = guarantee_capacity(accesses, replication)
        total = sum(budgets.values())
        if strict and total > self.limit:
            raise ValueError(
                f"declared sizes total {total}, exceeding the system "
                f"capacity S = {self.limit}")
        self.budgets = dict(budgets)
        self._system_count = 0
        self._app_counts: Dict[str, int] = {a: 0 for a in budgets}

    @property
    def system_count(self) -> int:
        return self._system_count

    def app_count(self, app: str) -> int:
        return self._app_counts.get(app, 0)

    def start_interval(self) -> None:
        """Reset all counters at an interval boundary."""
        self._system_count = 0
        for app in self._app_counts:
            self._app_counts[app] = 0

    def offer(self, app: str, n_requests: int = 1) -> TenantDecision:
        """Offer ``n_requests`` from ``app`` for the current interval.

        Unknown applications are refused outright (they were never
        admitted to the system).
        """
        if n_requests < 0:
            raise ValueError("n_requests must be >= 0")
        if app not in self.budgets:
            return TenantDecision(False, refused_by="app")
        if self._app_counts[app] + n_requests > self.budgets[app]:
            return TenantDecision(False, refused_by="app")
        if self._system_count + n_requests > self.limit:
            return TenantDecision(False, refused_by="system")
        self._app_counts[app] += n_requests
        self._system_count += n_requests
        return TenantDecision(True)
