"""Admission control (paper §III-A1 deterministic, §III-B2 statistical).

Both controllers work at interval granularity: applications present
block requests and the controller answers, per request, *admit now* or
*delay/reject*.

Deterministic control admits at most ``S`` requests per interval: with
``S = (c-1)M^2 + cM`` the design guarantees retrieval within ``M``
accesses, so every admitted request finishes inside the interval.

Statistical control keeps the empirical interval-size distribution
``R_k = N_k / N_t`` (``k+1`` counters, exactly as in the paper) and the
sampled optimal-retrieval probabilities ``P_k``; it admits an interval
of size ``k > S`` as long as the violation mass

    ``Q = sum_k (1 - P_k) * R_k``

stays below the user's threshold ``epsilon``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Sequence

import numpy as np

from repro import obs
from repro.core.guarantees import guarantee_capacity
from repro.graph.kernels import WarmStartMatcher

__all__ = [
    "AdmissionDecision",
    "DeterministicAdmission",
    "ExactAdmission",
    "StatisticalAdmission",
]


def _sequential_sum(values: np.ndarray) -> float:
    """Strict left-to-right float sum (``((v0 + v1) + v2) + ...``).

    The same contract as :func:`repro.flash.batch.sequential_sum`,
    restated here because importing :mod:`repro.flash` from this
    module would close an import cycle through the trace drivers.
    Pairwise ``np.sum`` would be faster but reorders additions; the
    reference dict loop accumulated strictly left to right, and Q
    must stay bit-identical to it.
    """
    if values.size == 0:
        return 0.0
    return float(np.add.accumulate(values)[-1])


@dataclass(frozen=True)
class AdmissionDecision:
    """Outcome of one admission query."""

    admitted: bool
    #: Request count in the interval after this decision.
    interval_size: int
    #: The violation-probability estimate at decision time (statistical
    #: control only; 0.0 for deterministic).
    q: float = 0.0

    def __bool__(self) -> bool:
        return self.admitted


class DeterministicAdmission:
    """Hard cap of ``S`` admitted requests per interval (ε = 0).

    Parameters
    ----------
    replication:
        Copy count ``c`` of the design in use.
    accesses:
        Access budget ``M`` per interval.
    """

    def __init__(self, replication: int, accesses: int = 1):
        self.replication = replication
        self.accesses = accesses
        self.limit = guarantee_capacity(accesses, replication)
        self._count = 0

    @property
    def interval_count(self) -> int:
        """Requests admitted in the current interval."""
        return self._count

    def start_interval(self) -> None:
        """Reset at an interval boundary."""
        self._count = 0

    def resume(self, count: int) -> None:
        """Adopt a mid-interval count computed elsewhere.

        The vectorized admission kernel
        (:mod:`repro.flash.admitpath`) tracks the per-interval count
        itself; when a streaming session demotes to the scalar loop
        mid-interval, the controller resumes from the kernel's count
        so subsequent offers see exactly the state the scalar loop
        would have reached.
        """
        if count < 0 or count > self.limit:
            raise ValueError(
                f"count must be in [0, {self.limit}], got {count}")
        self._count = count

    def offer(self, n_requests: int = 1) -> AdmissionDecision:
        """Offer ``n_requests`` more requests for the current interval."""
        if n_requests < 0:
            raise ValueError("n_requests must be >= 0")
        if self._count + n_requests <= self.limit:
            self._count += n_requests
            return AdmissionDecision(True, self._count)
        return AdmissionDecision(False, self._count)


class StatisticalAdmission:
    """ε-bounded admission using sampled ``P_k`` (paper §III-B2).

    Parameters
    ----------
    probabilities:
        ``{k: P_k}`` from :class:`repro.core.sampling.OptimalRetrievalSampler`
        (missing sizes fall back to ``fallback(k)``).
    epsilon:
        Violation-probability budget; ``0`` reduces to deterministic
        behaviour.
    replication, accesses:
        Determine the deterministic limit ``S`` below which requests
        are always admitted.
    fallback:
        ``P_k`` for sizes absent from the table; defaults to the
        conservative 0 below 1 interval of headroom, i.e. ``0.0``.
    """

    def __init__(self, probabilities: Dict[int, float], epsilon: float,
                 replication: int, accesses: int = 1,
                 fallback: Callable[[int], float] | None = None):
        if epsilon < 0 or epsilon > 1:
            raise ValueError(f"epsilon must be in [0, 1], got {epsilon}")
        self.probabilities = dict(probabilities)
        self.epsilon = epsilon
        self.replication = replication
        self.accesses = accesses
        self.limit = guarantee_capacity(accesses, replication)
        self._fallback = fallback or (lambda k: 0.0)
        # Empirical interval-size histogram: N_k and N_t, as
        # insertion-ordered parallel arrays (running R_k histogram
        # with the 1 - P_k factors precomputed per size) so Q is one
        # elementwise product and a prefix-dot -- the same floats,
        # in the same order, as the reference dict loop.
        self._slot: Dict[int, int] = {}
        self._hist_counts = np.zeros(8, dtype=np.int64)
        self._hist_omp = np.zeros(8, dtype=np.float64)
        self._n_slots = 0
        self._hist_total = 0
        self._total_intervals = 0
        self._count = 0
        # Guarantee violations knowingly admitted (conflicting requests
        # allowed to queue); they enter Q alongside the sampled
        # (1 - P_k) mass so that admissions self-limit at epsilon.
        self._violations = 0

    # -- interval bookkeeping -------------------------------------------
    @property
    def interval_count(self) -> int:
        return self._count

    def start_interval(self) -> None:
        """Close the previous interval into the histogram and reset."""
        if self._total_intervals > 0 or self._count > 0:
            self._record_size(self._count)
        self._total_intervals += 1
        self._count = 0

    def _record_size(self, size: int) -> None:
        """Fold one closed interval's request count into ``R_k``."""
        slot = self._slot.get(size)
        if slot is None:
            slot = self._n_slots
            if slot == self._hist_counts.size:
                self._hist_counts = np.concatenate(
                    (self._hist_counts,
                     np.zeros(slot, dtype=np.int64)))
                self._hist_omp = np.concatenate(
                    (self._hist_omp,
                     np.zeros(slot, dtype=np.float64)))
            self._slot[size] = slot
            self._hist_omp[slot] = 1.0 - self.p_k(size)
            self._n_slots += 1
        self._hist_counts[slot] += 1
        self._hist_total += 1

    @property
    def size_counts(self) -> Dict[int, int]:
        """The empirical histogram ``{interval size: N_k}``."""
        return {size: int(self._hist_counts[slot])
                for size, slot in self._slot.items()}

    def p_k(self, k: int) -> float:
        """Optimal-retrieval probability for request size ``k``."""
        if k <= self.limit:
            return 1.0
        return self.probabilities.get(k, self._fallback(k))

    def violation_probability(self, hypothetical_size: int,
                              extra_violations: int = 0) -> float:
        """``Q`` if the current interval were to reach ``hypothetical_size``.

        Computed over the empirical distribution with the current
        interval counted at the hypothetical size.  Realized violations
        (knowingly admitted conflicts) add their own mass:

            Q = [sum_k (1 - P_k) N_k + V] / N_t

        Evaluated as a prefix-dot of the running ``R_k`` histogram
        against the precomputed ``1 - P_k`` factors (strict
        left-to-right addition order), bit-identical to the reference
        insertion-ordered dict loop.
        """
        n = self._n_slots
        omp = self._hist_omp[:n]
        total = self._hist_total + 1
        slot = self._slot.get(hypothetical_size)
        if slot is None:
            q = _sequential_sum(omp * (self._hist_counts[:n] / total)) \
                + (1.0 - self.p_k(hypothetical_size)) * (1 / total)
        else:
            counts = self._hist_counts[:n].copy()
            counts[slot] += 1
            q = _sequential_sum(omp * (counts / total))
        q += (self._violations + extra_violations) / total
        return min(1.0, q)

    def offer(self, n_requests: int = 1) -> AdmissionDecision:
        """Offer ``n_requests`` more requests for the current interval."""
        if n_requests < 0:
            raise ValueError("n_requests must be >= 0")
        new_size = self._count + n_requests
        if new_size <= self.limit:
            self._count = new_size
            return AdmissionDecision(True, self._count)
        q = self.violation_probability(new_size)
        if q < self.epsilon:
            self._count = new_size
            return AdmissionDecision(True, self._count, q=q)
        return AdmissionDecision(False, self._count, q=q)

    def offer_conflict(self) -> AdmissionDecision:
        """Ask to admit a request whose replica devices are all busy.

        Admitting it knowingly violates the response-time guarantee for
        this request (it must queue), so the decision charges one
        violation against the epsilon budget: admit iff the resulting
        ``Q`` stays below epsilon.  With epsilon = 0 nothing is ever
        admitted -- exactly the deterministic behaviour.
        """
        q = self.violation_probability(self._count, extra_violations=1)
        if q < self.epsilon:
            self._violations += 1
            return AdmissionDecision(True, self._count, q=q)
        return AdmissionDecision(False, self._count, q=q)


class ExactAdmission:
    """Admission by *exact* per-interval feasibility (ε = 0).

    The deterministic controller admits at most ``S = (c-1)M^2 + cM``
    requests per interval -- the worst-case guarantee of paper §III-A1,
    which rejects many intervals the array could in fact serve.  This
    controller instead maintains a warm-started maximum matching
    (:class:`repro.graph.kernels.WarmStartMatcher`) over the interval's
    admitted requests and admits a request iff the matching proves the
    *whole interval* still fits the access budget ``M``:

    * a read adds one request whose candidates are its bucket's
      replica devices;
    * a write adds one pinned request per replica (every copy must be
      updated), so it consumes ``c`` units exactly like the counting
      controllers.

    Each offer costs one augmenting-path attempt (plus rollbacks on
    denial) rather than a from-scratch solve, and the answer is exact:
    admitted intervals are always retrievable in ``M`` accesses, and
    every denial is a certified infeasibility, never slack in a
    worst-case bound.  Admissions are therefore a superset of
    :class:`DeterministicAdmission`'s (``S`` is a lower bound on what
    a matching can place).

    ``excluded`` names failed devices (:mod:`repro.faults`): the
    matching runs over live replicas only, so admission capacity
    degrades *exactly* with the failure level instead of by the
    worst-case ``(c-f-1)M^2 + (c-f)M`` bound.  A read whose replicas
    are all excluded is denied outright.
    """

    def __init__(self, allocation, accesses: int = 1,
                 excluded: Sequence[int] = ()):
        if accesses < 1:
            raise ValueError(f"accesses must be >= 1, got {accesses}")
        self.allocation = allocation
        self.accesses = accesses
        self.excluded = frozenset(excluded)
        if any(not 0 <= d < allocation.n_devices
               for d in self.excluded):
            raise ValueError("excluded device out of range")
        self._matcher = WarmStartMatcher(allocation.n_devices, accesses)
        # Per-bucket candidate cache: the allocation and the excluded
        # set are fixed for the controller's lifetime, so the live
        # replica tuple (and the matcher-side bitset it hashes to) is
        # computed once per bucket instead of once per offer.
        self._candidates: Dict[int, tuple] = {}

    @property
    def interval_count(self) -> int:
        """Requests admitted in the current interval."""
        return len(self._matcher)

    def start_interval(self) -> None:
        """Reset at an interval boundary.

        Clears the warm-started matcher *in place*
        (:meth:`repro.graph.kernels.WarmStartMatcher.clear`) instead
        of reallocating its per-device structures; the reuse lands on
        the ``admission.exact_reuse`` obs counter.
        """
        self._matcher.clear()
        if obs.ACTIVE:
            obs.SESSION.on_admission_reuse()

    def candidates_for(self, bucket: int) -> tuple:
        """Live replica devices of ``bucket`` (cached; may be empty)."""
        key = int(bucket)
        devices = self._candidates.get(key)
        if devices is None:
            devices = self.allocation.devices_for(key)
            if self.excluded:
                devices = tuple(d for d in devices
                                if d not in self.excluded)
            self._candidates[key] = devices
        return devices

    def offer_bucket(self, bucket: int,
                     is_read: bool = True) -> AdmissionDecision:
        """Offer one request for ``bucket``; writes pin every replica.

        With ``excluded`` set, reads match over live replicas only
        (denied when none remain) and writes pin only the live copies
        (a degraded write; the fault layer flags it downstream).
        """
        matcher = self._matcher
        devices = self.candidates_for(bucket)
        if not devices:
            return AdmissionDecision(False, len(matcher))
        if is_read:
            added = [matcher.add(devices)]
        else:
            added = [matcher.add((d,)) for d in devices]
        if matcher.feasible:
            return AdmissionDecision(True, len(matcher))
        for rid in added:
            matcher.remove(rid)
        return AdmissionDecision(False, len(matcher))
