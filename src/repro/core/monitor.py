"""Online SLA compliance monitoring.

Operations tooling on top of the framework: a :class:`SLAMonitor`
consumes completed requests as they happen, keeps a sliding window of
response times, and reports compliance against the deterministic
guarantee -- so an operator can tell *when* a deployment started
violating its SLO and how badly, not just whether the whole run passed.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, List, Optional, Tuple

import numpy as np

from repro import obs

__all__ = ["SLAMonitor", "SLAViolation"]


@dataclass(frozen=True)
class SLAViolation:
    """One recorded guarantee violation."""

    at_ms: float
    response_ms: float
    guarantee_ms: float

    @property
    def excess_ms(self) -> float:
        return self.response_ms - self.guarantee_ms


class SLAMonitor:
    """Sliding-window compliance tracker.

    Parameters
    ----------
    guarantee_ms:
        The response-time guarantee in force.
    window:
        Number of most-recent requests in the compliance window.
    target_compliance:
        The SLO: fraction of windowed requests that must meet the
        guarantee (1.0 = deterministic, 0.999 = "three nines").
    """

    def __init__(self, guarantee_ms: float, window: int = 1000,
                 target_compliance: float = 1.0):
        if guarantee_ms <= 0:
            raise ValueError("guarantee_ms must be positive")
        if window < 1:
            raise ValueError("window must be >= 1")
        if not 0 < target_compliance <= 1:
            raise ValueError("target_compliance must be in (0, 1]")
        self.guarantee_ms = guarantee_ms
        self.window = window
        self.target_compliance = target_compliance
        self._window: Deque[bool] = deque(maxlen=window)
        self._responses: Deque[float] = deque(maxlen=window)
        self.violations: List[SLAViolation] = []
        self.n_observed = 0
        self.n_violations = 0

    # -- feeding ---------------------------------------------------------
    def observe(self, completed_at_ms: float,
                response_ms: float) -> None:
        """Record one completed request."""
        ok = response_ms <= self.guarantee_ms + 1e-9
        if obs.ACTIVE:
            obs.SESSION.on_sla_observation(ok)
        self._window.append(ok)
        self._responses.append(response_ms)
        self.n_observed += 1
        if not ok:
            self.n_violations += 1
            self.violations.append(SLAViolation(
                at_ms=completed_at_ms, response_ms=response_ms,
                guarantee_ms=self.guarantee_ms))

    def observe_report(self, report) -> None:
        """Feed every request of a :class:`repro.core.qos.QoSReport`."""
        for pr in sorted(report.requests,
                         key=lambda p: p.io.completed_at):
            self.observe(pr.io.completed_at, pr.io.response_ms)

    # -- state -------------------------------------------------------------
    @property
    def windowed_compliance(self) -> float:
        """Fraction of the current window meeting the guarantee."""
        if not self._window:
            return 1.0
        return sum(self._window) / len(self._window)

    @property
    def lifetime_compliance(self) -> float:
        if self.n_observed == 0:
            return 1.0
        return 1.0 - self.n_violations / self.n_observed

    @property
    def in_compliance(self) -> bool:
        """Is the current window meeting the SLO target?"""
        return self.windowed_compliance >= self.target_compliance

    def windowed_percentile(self, q: float) -> float:
        """Response percentile over the current window."""
        if not 0 <= q <= 100:
            raise ValueError("percentile must be in [0, 100]")
        if not self._responses:
            return 0.0
        return float(np.percentile(np.fromiter(self._responses,
                                               dtype=np.float64), q))

    def first_violation(self) -> Optional[SLAViolation]:
        return self.violations[0] if self.violations else None

    def summary(self) -> dict:
        return {
            "observed": self.n_observed,
            "violations": self.n_violations,
            "lifetime_compliance": self.lifetime_compliance,
            "windowed_compliance": self.windowed_compliance,
            "in_compliance": self.in_compliance,
            "p99_ms": self.windowed_percentile(99),
        }
