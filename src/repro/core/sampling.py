"""Sampling estimator of optimal-retrieval probabilities (paper §III-B1).

For each request size ``k`` the estimator draws ``k`` design blocks
uniformly **with replacement** ("the same design block is allowed to be
chosen multiple times for fair results"), asks the max-flow solver
whether the batch is retrievable in the optimal ``ceil(k/N)`` accesses,
and averages over many trials.  The resulting ``P_k`` curve is the
paper's Figure 4; for the (9,3,1) design it dips near multiples of
``N = 9`` (paper: P6≈0.99, P7≈0.98, P8≈0.95, P9≈0.75) and snaps back to
1 just past them.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

import numpy as np

from repro.allocation.base import AllocationScheme
from repro.graph import kernels
from repro.retrieval.maxflow import is_retrievable_in
from repro.retrieval.schedule import optimal_accesses

__all__ = ["OptimalRetrievalSampler"]


class OptimalRetrievalSampler:
    """Estimates ``P_k`` = P(random batch of size k retrieves optimally).

    Parameters
    ----------
    allocation:
        The allocation scheme supplying the candidate device sets.
    trials:
        Monte-Carlo trials per request size.
    seed:
        RNG seed for reproducible curves.
    """

    def __init__(self, allocation: AllocationScheme, trials: int = 2000,
                 seed: int = 0):
        if trials < 1:
            raise ValueError("trials must be >= 1")
        self.allocation = allocation
        self.trials = trials
        self.seed = seed
        self._blocks = [allocation.devices_for(b)
                        for b in range(allocation.n_buckets)]
        self._blocks_key = tuple(tuple(b) for b in self._blocks)
        self._block_masks: Optional[np.ndarray] = None
        self._cache: Dict[int, float] = {}

    def probability(self, k: int) -> float:
        """Estimate ``P_k`` (cached per instance)."""
        if k < 0:
            raise ValueError(f"request size must be >= 0, got {k}")
        if k <= 1:
            return 1.0
        if k not in self._cache:
            self._cache[k] = self._estimate(k)
        return self._cache[k]

    def curve(self, sizes: Sequence[int]) -> Dict[int, float]:
        """``{k: P_k}`` over the requested sizes (Figure 4 series)."""
        return {int(k): self.probability(int(k)) for k in sizes}

    def table(self, max_k: Optional[int] = None) -> Dict[int, float]:
        """Probabilities for ``k = 1 .. max_k`` (default: ``2N``)."""
        if max_k is None:
            max_k = 2 * self.allocation.n_devices
        return self.curve(range(1, max_k + 1))

    def _estimate(self, k: int) -> float:
        n_dev = self.allocation.n_devices
        if kernels.ENABLED and n_dev <= kernels.BITSET_MAX_DEVICES:
            return self._estimate_vectorized(k)
        return self._estimate_legacy(k)

    def _estimate_legacy(self, k: int) -> float:
        rng = np.random.default_rng(self.seed + k)
        n_dev = self.allocation.n_devices
        target = optimal_accesses(k, n_dev)
        n_blocks = len(self._blocks)
        hits = 0
        for _ in range(self.trials):
            picks = rng.integers(0, n_blocks, size=k)
            batch = [self._blocks[p] for p in picks]
            if is_retrievable_in(batch, n_dev, target):
                hits += 1
        return hits / self.trials

    def _estimate_vectorized(self, k: int) -> float:
        """Bitset-kernel fast path: one vectorized call per ``k``.

        Draws the same RNG stream as the legacy loop (``trials``
        consecutive ``size=k`` blocks from ``default_rng(seed + k)``
        are one ``size=(trials, k)`` draw), so the estimate is
        byte-identical.  Results are memoized process-wide keyed on the
        allocation's block tuple: every statistical-QoS experiment
        rebuilds the same ``P_k`` table first, and repeats are free.
        """
        key = (self._blocks_key, self.allocation.n_devices,
               self.trials, self.seed, k)
        memo = kernels.SAMPLER_CACHE.get(key)
        if memo is not kernels.MISS:
            return memo
        n_dev = self.allocation.n_devices
        target = optimal_accesses(k, n_dev)
        if self._block_masks is None:
            self._block_masks = kernels.block_mask_array(
                self._blocks, n_dev)
        rng = np.random.default_rng(self.seed + k)
        picks = rng.integers(0, len(self._blocks),
                             size=(self.trials, k))
        feasible = kernels.batch_feasible(
            self._block_masks[picks], n_dev, target)
        value = int(feasible.sum()) / self.trials
        kernels.SAMPLER_CACHE.put(key, value)
        return value
