"""``QoSFlashArray``: the public facade of the framework.

Wires together a combinatorial design, design-theoretic allocation,
retrieval, admission control and the flash-array simulator, exposing
the workflow of the paper:

>>> from repro.core import QoSFlashArray
>>> qos = QoSFlashArray(n_devices=9, replication=3, interval_ms=0.133)
>>> qos.capacity_per_interval
5
>>> report = qos.run_online(arrivals_ms, buckets)   # doctest: +SKIP
>>> report.guarantee_met                            # doctest: +SKIP
True
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro import obs
from repro.allocation.design_theoretic import DesignTheoreticAllocation
from repro.core.guarantees import guarantee_capacity
from repro.core.sampling import OptimalRetrievalSampler
from repro.designs.catalog import get_design
from repro.flash.driver import BatchTracePlayer, OnlineTracePlayer, \
    PlayedRequest
from repro.flash.metrics import IntervalSeries, ResponseStats
from repro.flash.params import FlashParams, MSR_SSD_PARAMS

__all__ = ["QoSFlashArray", "QoSReport"]


@dataclass
class QoSReport:
    """Result of one trace play-through.

    Attributes
    ----------
    series:
        Per-interval response statistics.
    requests:
        Per-request detail (response, delay, interval).
    guarantee_ms:
        The response-time guarantee in force (``M`` service times).
    """

    series: IntervalSeries
    requests: List[PlayedRequest]
    guarantee_ms: float

    @property
    def overall(self) -> ResponseStats:
        return self.series.overall()

    @property
    def guarantee_met(self) -> bool:
        """True if every *undelayed* response met the guarantee.

        A failed request (fault layer: dead module, retries exhausted,
        no live replica) is an unconditional miss.
        """
        if any(r.failed for r in self.requests):
            return False
        return all(r.io.response_ms <= self.guarantee_ms + 1e-9
                   for r in self.requests)

    # -- degraded-mode accounting ----------------------------------------
    @property
    def n_failed(self) -> int:
        """Requests the fault layer lost outright."""
        return sum(1 for r in self.requests if r.failed)

    @property
    def n_faulted(self) -> int:
        """Requests served, but across the fault path (failover,
        retry, down-window wait, degraded latency)."""
        return sum(1 for r in self.requests
                   if not r.failed and not r.rejected
                   and getattr(r.io, "faulted", False))

    @property
    def n_violations(self) -> int:
        """Guarantee misses: failed requests plus served responses
        over the guarantee (admission-rejected requests excluded)."""
        n = 0
        for r in self.requests:
            if r.rejected:
                continue
            if r.failed or r.io.response_ms > self.guarantee_ms + 1e-9:
                n += 1
        return n

    @property
    def violation_rate(self) -> float:
        """``n_violations`` over non-rejected requests."""
        total = sum(1 for r in self.requests if not r.rejected)
        return self.n_violations / total if total else 0.0

    @property
    def avg_response_ms(self) -> float:
        return self.overall.avg

    @property
    def max_response_ms(self) -> float:
        return self.overall.max

    @property
    def pct_delayed(self) -> float:
        return self.overall.pct_delayed

    @property
    def avg_delay_ms(self) -> float:
        return self.overall.avg_delay

    def summary(self) -> Dict[str, float]:
        out = self.overall.summary()
        out["guarantee_ms"] = self.guarantee_ms
        out["guarantee_met"] = float(self.guarantee_met)
        if self.n_failed or self.n_faulted:
            # Degraded-mode keys appear only on faulty runs, so
            # healthy summaries keep their pre-faults shape.
            out["n_failed"] = float(self.n_failed)
            out["n_faulted"] = float(self.n_faulted)
            out["violation_rate"] = self.violation_rate
        return out


class QoSFlashArray:
    """A flash array with replication-based QoS.

    Parameters
    ----------
    n_devices:
        Flash module count ``N`` (needs an ``(N, c, 1)`` design; the
        catalog covers ``c = 2`` for any N, and ``c = 3`` for
        ``N ≡ 1, 3 (mod 6)`` -- including the paper's 9 and 13).
    replication:
        Copy count ``c``.
    interval_ms:
        The QoS interval ``T``.
    accesses:
        Access budget ``M`` per interval; default: as many service
        times as fit in ``T``.
    epsilon:
        ``0`` = deterministic QoS; ``> 0`` = statistical QoS with
        violation budget ``ε`` (sampling runs on first use).
    params:
        Flash timing; defaults to the paper's MSR SSD constants.
    sampler_trials, seed:
        Monte-Carlo settings for the ``P_k`` estimation.
    engine:
        Playback engine: ``"auto"`` (closed-form fast path when the
        configuration is eligible, DES otherwise), ``"des"`` or
        ``"fast"`` -- see :func:`repro.flash.driver.resolve_engine`.
    admission:
        Online admission mode: ``"counting"`` (the paper's
        controllers, default) or ``"exact"`` (per-interval feasibility
        via warm-started matching; deterministic QoS only) -- see
        :class:`repro.core.admission.ExactAdmission`.
    faults:
        Optional :class:`repro.faults.FaultSchedule` injected into
        every trace run: module crashes, unavailability windows,
        latency degradation and read errors, with failure-aware
        retrieval and driver failover (see :mod:`repro.faults`).  A
        non-empty schedule forces the DES engine.
    """

    def __init__(self, n_devices: int = 9, replication: int = 3,
                 interval_ms: float = 0.133, accesses: Optional[int] = None,
                 epsilon: float = 0.0,
                 params: Optional[FlashParams] = None,
                 sampler_trials: int = 1000, seed: int = 0,
                 engine: str = "auto", admission: str = "counting",
                 faults=None):
        self.params = params or MSR_SSD_PARAMS
        self.design = get_design(n_devices, replication)
        self._base_allocation = DesignTheoreticAllocation(self.design)
        self._failed: set[int] = set()
        self._allocation_view = None
        self.interval_ms = interval_ms
        if accesses is None:
            accesses = max(1, int(interval_ms / self.params.read_ms + 1e-9))
        self.accesses = accesses
        self.epsilon = epsilon
        self.sampler_trials = sampler_trials
        self.seed = seed
        self._probabilities: Optional[Dict[int, float]] = None
        self.engine = engine
        self.admission = admission
        self.faults = faults

    # -- failure handling -----------------------------------------------
    @property
    def allocation(self):
        """The active allocation: failure-masked when devices are down."""
        if not self._failed:
            return self._base_allocation
        if (self._allocation_view is None
                or self._allocation_view.failed != self._failed):
            from repro.allocation.degraded import DegradedAllocation
            self._allocation_view = DegradedAllocation(
                self._base_allocation, self._failed)
        return self._allocation_view

    @property
    def failed_devices(self) -> frozenset:
        return frozenset(self._failed)

    def fail_device(self, device: int) -> None:
        """Mark a flash module as failed; retrieval masks it.

        The admission capacity degrades to
        ``S = (c-f-1)M^2 + (c-f)M`` for ``f`` failures (the design's
        pairwise balance survives restriction to live devices).
        """
        if not 0 <= device < self._base_allocation.n_devices:
            raise ValueError(f"device {device} out of range")
        self._failed.add(device)
        self._allocation_view = None

    def repair_device(self, device: int) -> None:
        """Bring a failed module back online."""
        self._failed.discard(device)
        self._allocation_view = None

    # -- capacity ----------------------------------------------------------
    @property
    def n_devices(self) -> int:
        return self.allocation.n_devices

    @property
    def replication(self) -> int:
        return self.allocation.replication

    @property
    def n_buckets(self) -> int:
        """Distinct buckets supported (``N(N-1)/(c-1)`` with rotations)."""
        return self.allocation.n_buckets

    @property
    def capacity_per_interval(self) -> int:
        """``S = (c-1)M^2 + cM``: deterministic admission limit."""
        return guarantee_capacity(self.accesses, self.replication)

    @property
    def guarantee_ms(self) -> float:
        """Response-time guarantee: ``M`` back-to-back service times."""
        return self.accesses * self.params.read_ms

    # -- statistical support -------------------------------------------------
    def probabilities(self, max_k: Optional[int] = None) -> Dict[int, float]:
        """Sampled optimal-retrieval probabilities ``P_k`` (cached)."""
        if self._probabilities is None:
            sampler = OptimalRetrievalSampler(
                self.allocation, trials=self.sampler_trials, seed=self.seed)
            self._probabilities = sampler.table(max_k)
        return self._probabilities

    # -- operations ------------------------------------------------------------
    def self_check(self, trials: int = 200, seed: int = 0):
        """Run the deployment battery (see :mod:`repro.core.selfcheck`)."""
        from repro.core.selfcheck import self_check

        return self_check(self, trials=trials, seed=seed)

    # -- running traces --------------------------------------------------------
    def run_batch(self, arrivals: Sequence[float], buckets: Sequence[int],
                  retrieval: str = "combined") -> QoSReport:
        """Interval-aligned playback (design-theoretic retrieval)."""
        player = BatchTracePlayer(self.allocation, self.interval_ms,
                                  retrieval=retrieval, params=self.params,
                                  engine=self.engine, faults=self.faults)
        series, played = player.play(arrivals, buckets)
        report = QoSReport(series, played, self.guarantee_ms)
        if obs.ACTIVE:
            obs.SESSION.record_qos_report(report)
        return report

    def run_online(self, arrivals: Sequence[float],
                   buckets: Sequence[int],
                   reads: Optional[Sequence[bool]] = None,
                   apps: Optional[Sequence[str]] = None,
                   tenant_budgets: Optional[Dict[str, int]] = None,
                   ) -> QoSReport:
        """Online FCFS playback with admission control.

        ``reads[i]`` False marks a write (applied to every replica,
        admission cost ``c``); ``tenant_budgets`` + ``apps`` enforce
        per-application interval budgets (§III-A).
        """
        probs = self.probabilities() if self.epsilon > 0 else None
        player = OnlineTracePlayer(
            self.allocation, self.interval_ms, epsilon=self.epsilon,
            probabilities=probs, accesses=self.accesses,
            params=self.params, tenant_budgets=tenant_budgets,
            engine=self.engine, admission=self.admission,
            faults=self.faults)
        series, played = player.play(arrivals, buckets, reads=reads,
                                     apps=apps)
        report = QoSReport(series, played, self.guarantee_ms)
        if obs.ACTIVE:
            obs.SESSION.record_qos_report(report)
        return report
