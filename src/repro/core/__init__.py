"""The paper's primary contribution: the replication-based QoS framework.

* :mod:`~repro.core.guarantees` -- the design-theoretic guarantee
  algebra ``S = (c-1)M^2 + cM`` (§II-B2, §III-A),
* :mod:`~repro.core.admission` -- deterministic (§III-A1) and
  statistical (§III-B2) admission control,
* :mod:`~repro.core.sampling` -- sampling estimator of the optimal
  retrieval probabilities ``P_k`` (§III-B1, Figure 4),
* :mod:`~repro.core.applications` -- the application / period request
  model of Table I,
* :mod:`~repro.core.qos` -- the ``QoSFlashArray`` facade wiring design,
  allocation, retrieval, admission and the flash simulator together.
"""

from repro.core.admission import (
    AdmissionDecision,
    DeterministicAdmission,
    StatisticalAdmission,
)
from repro.core.applications import Application, BlockRequest, table1_scenario
from repro.core.guarantees import (
    guarantee_capacity,
    max_admissible,
    required_accesses,
)
from repro.core.adaptive import AdaptiveEpsilonController
from repro.core.monitor import SLAMonitor
from repro.core.planner import SLO, Plan, plan_configurations
from repro.core.qos import QoSFlashArray, QoSReport
from repro.core.sampling import OptimalRetrievalSampler
from repro.core.tenancy import TenantAdmission

__all__ = [
    "AdaptiveEpsilonController",
    "AdmissionDecision",
    "Application",
    "BlockRequest",
    "DeterministicAdmission",
    "OptimalRetrievalSampler",
    "Plan",
    "QoSFlashArray",
    "QoSReport",
    "SLAMonitor",
    "SLO",
    "StatisticalAdmission",
    "TenantAdmission",
    "guarantee_capacity",
    "max_admissible",
    "plan_configurations",
    "required_accesses",
    "table1_scenario",
]
