"""Deployment self-check: verify a configuration end to end.

Before trusting guarantees in production, an operator wants evidence
that *this* configuration actually delivers them.  ``self_check`` runs
a battery over a :class:`~repro.core.qos.QoSFlashArray`:

1. **design audit** -- pairwise balance (λ = 1) of the design in use;
2. **guarantee probe** -- random batches at the admission limit ``S``
   must schedule within ``M`` accesses (the theorem, spot-checked);
3. **timing probe** -- a short simulated run must complete every
   request within the guarantee;
4. **capacity sanity** -- the admission ceiling must not exceed what
   the devices can physically serve;
5. **sanitizer battery** -- replica-placement validity, flow
   conservation and event-ordering are re-exercised with
   :mod:`repro.check.sanitizers` force-enabled, so a corrupted
   configuration trips an invariant rather than skewing numbers.

Each check returns a :class:`CheckResult`; the battery passes only if
all do.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

__all__ = ["CheckResult", "SelfCheckReport", "self_check"]


@dataclass(frozen=True)
class CheckResult:
    """Outcome of one check."""

    name: str
    passed: bool
    detail: str

    def __bool__(self) -> bool:
        return self.passed


@dataclass(frozen=True)
class SelfCheckReport:
    """All check outcomes for one configuration."""

    checks: List[CheckResult]

    @property
    def passed(self) -> bool:
        return all(c.passed for c in self.checks)

    def render(self) -> str:
        lines = []
        for c in self.checks:
            mark = "PASS" if c.passed else "FAIL"
            lines.append(f"[{mark}] {c.name}: {c.detail}")
        verdict = "ALL CHECKS PASSED" if self.passed else \
            "SELF-CHECK FAILED"
        return "\n".join(lines + [verdict])


def self_check(qos, trials: int = 200, seed: int = 0) -> SelfCheckReport:
    """Run the deployment battery on ``qos``.

    Parameters
    ----------
    qos:
        A :class:`~repro.core.qos.QoSFlashArray` (possibly degraded).
    trials:
        Random guarantee probes.
    """
    from repro.designs.verify import verify_design
    from repro.retrieval.maxflow import is_retrievable_in
    from repro.traces.synthetic import synthetic_trace

    checks: List[CheckResult] = []

    # 1. design audit
    try:
        verify_design(qos.design)
        checks.append(CheckResult(
            "design pairwise balance", True,
            f"{qos.design.name or 'design'}: every device pair in at "
            f"most one block"))
    except ValueError as exc:
        checks.append(CheckResult("design pairwise balance", False,
                                  str(exc)))

    # 2. guarantee probe: any S buckets retrievable in M accesses
    rng = np.random.default_rng(seed)
    s = qos.capacity_per_interval
    m = qos.accesses
    alloc = qos.allocation
    failures = 0
    probe_size = min(s, alloc.n_buckets)
    for _ in range(trials):
        picks = rng.choice(alloc.n_buckets, size=probe_size,
                           replace=False)
        cands = [alloc.devices_for(int(b)) for b in picks]
        if not is_retrievable_in(cands, alloc.n_devices, m):
            failures += 1
    checks.append(CheckResult(
        "guarantee probe", failures == 0,
        f"{trials} random batches of {probe_size} buckets vs "
        f"M={m}: {failures} failures"))

    # 3. timing probe through the simulator
    if probe_size >= 1:
        trace = synthetic_trace(probe_size, qos.interval_ms,
                                n_blocks_pool=alloc.n_buckets,
                                total_requests=probe_size * 20,
                                seed=seed)
        report = qos.run_online(trace.arrival_ms, trace.block)
        ok = report.guarantee_met and report.overall.pct_delayed == 0.0
        checks.append(CheckResult(
            "timing probe", ok,
            f"max response {report.max_response_ms:.6f} ms vs "
            f"guarantee {report.guarantee_ms:.6f} ms, "
            f"{report.pct_delayed:.1f}% delayed"))

    # 4. capacity sanity
    physical = alloc.n_devices * m
    checks.append(CheckResult(
        "capacity sanity", s <= physical,
        f"admission S={s} vs physical ceiling N*M={physical}"))

    # 5. sanitizer battery: invariants re-checked at runtime
    checks.append(_sanitizer_battery(qos, probe_size, seed))

    return SelfCheckReport(checks)


def _sanitizer_battery(qos, probe_size: int, seed: int) -> CheckResult:
    """Exercise the runtime sanitizers over this configuration.

    With :mod:`repro.check.sanitizers` force-enabled, validate the
    allocation's replica placement, schedule one random batch (flow
    conservation + capacity respect fire inside the solvers), and
    replay a tiny trace (event-ordering and FCFS monotonicity fire
    inside the kernel).
    """
    from repro.check import sanitizers
    from repro.retrieval.maxflow import maxflow_retrieval
    from repro.traces.synthetic import synthetic_trace

    alloc = qos.allocation
    try:
        with sanitizers.sanitized():
            sanitizers.check_allocation(alloc)
            if probe_size >= 1:
                rng = np.random.default_rng(seed)
                picks = rng.choice(alloc.n_buckets, size=probe_size,
                                   replace=False)
                maxflow_retrieval(
                    [alloc.devices_for(int(b)) for b in picks],
                    alloc.n_devices)
                trace = synthetic_trace(probe_size, qos.interval_ms,
                                        n_blocks_pool=alloc.n_buckets,
                                        total_requests=probe_size * 5,
                                        seed=seed)
                qos.run_online(trace.arrival_ms, trace.block)
    except sanitizers.SanitizerError as exc:
        return CheckResult("sanitizer battery", False, str(exc))
    return CheckResult(
        "sanitizer battery", True,
        "placement, flow conservation, event order and FCFS invariants "
        "held under runtime sanitizers")
