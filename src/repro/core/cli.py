"""``repro-qos``: run a trace file through the QoS framework.

Completes the tooling loop::

    repro-trace generate exchange work.csv --scale 0.3
    repro-qos run work.csv --devices 9 --interval-ms 0.133
    repro-qos plan --response-ms 0.4 --rate 40

Subcommands
-----------

``run``
    Play a trace (DiskSim ASCII or CSV) through a ``QoSFlashArray``
    and print the response-time report; optional FIM block matching
    and statistical admission.
``plan``
    Print configurations meeting a response/throughput SLO
    (:mod:`repro.core.planner`).
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional

from repro.core.planner import SLO, plan_configurations
from repro.core.qos import QoSFlashArray

__all__ = ["main"]


def _read_trace(path: Path):
    from repro.traces.io import read_csv, read_disksim_ascii

    if path.suffix.lower() == ".csv":
        return read_csv(path)
    return read_disksim_ascii(path)


def _cmd_run(args) -> int:
    trace = _read_trace(Path(args.trace)).sorted()
    qos = QoSFlashArray(n_devices=args.devices,
                        replication=args.replication,
                        interval_ms=args.interval_ms,
                        epsilon=args.epsilon,
                        seed=args.seed)
    buckets = trace.block
    if args.fim:
        from repro.experiments.common import play_workload
        from repro.traces.intervals import split_intervals

        parts = split_intervals(trace, args.fim_interval_ms)
        run = play_workload(parts, n_devices=args.devices,
                            replication=args.replication,
                            epsilon=args.epsilon,
                            qos_interval_ms=args.interval_ms,
                            mode="online" if args.online else "batch",
                            seed=args.seed)
        report = run.report
    else:
        arrivals = [float(t) for t in trace.arrival_ms]
        mapped = [int(b) % qos.n_buckets for b in buckets]
        if args.online:
            report = qos.run_online(arrivals, mapped)
        else:
            report = qos.run_batch(arrivals, mapped)

    print(f"design              : {qos.design}")
    print(f"requests            : {report.overall.n_total}")
    print(f"guarantee           : {report.guarantee_ms:.6f} ms "
          f"({'met' if report.guarantee_met else 'VIOLATED'})")
    print(f"avg response        : {report.avg_response_ms:.6f} ms")
    print(f"max response        : {report.max_response_ms:.6f} ms")
    print(f"p99 response        : {report.overall.p99:.6f} ms")
    print(f"delayed             : {report.pct_delayed:.2f} % "
          f"(avg delay {report.avg_delay_ms:.4f} ms)")
    return 0 if report.guarantee_met else 1


def _cmd_plan(args) -> int:
    slo = SLO(response_ms=args.response_ms, requests_per_ms=args.rate)
    plans = plan_configurations(slo, max_plans=args.max_plans)
    if not plans:
        print("no configuration in the catalog meets this SLO")
        return 1
    print(f"configurations meeting response <= {slo.response_ms} ms "
          f"at {slo.requests_per_ms} req/ms:")
    for plan in plans:
        print("  " + plan.describe())
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-qos",
        description="Run traces through the replication-based QoS "
                    "framework.")
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="play a trace through the array")
    run.add_argument("trace", help="DiskSim ASCII or CSV trace file")
    run.add_argument("--devices", type=int, default=9)
    run.add_argument("--replication", type=int, default=3)
    run.add_argument("--interval-ms", type=float, default=0.133)
    run.add_argument("--epsilon", type=float, default=0.0)
    run.add_argument("--seed", type=int, default=0)
    run.add_argument("--online", action="store_true", default=True,
                     help="online retrieval (default)")
    run.add_argument("--batch", dest="online", action="store_false",
                     help="interval-aligned batch retrieval")
    run.add_argument("--fim", action="store_true",
                     help="FIM block matching from previous intervals")
    run.add_argument("--fim-interval-ms", type=float, default=60.0,
                     help="trace interval length for FIM mining")
    run.set_defaults(func=_cmd_run)

    plan = sub.add_parser("plan", help="suggest configurations for an "
                                       "SLO")
    plan.add_argument("--response-ms", type=float, required=True)
    plan.add_argument("--rate", type=float, required=True,
                      help="requests per millisecond")
    plan.add_argument("--max-plans", type=int, default=5)
    plan.set_defaults(func=_cmd_plan)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
