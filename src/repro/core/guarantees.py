"""The design-theoretic guarantee algebra (paper §II-B2, §III-A).

An ``(N, c, 1)`` design guarantees that any
``S(M) = (c-1) M^2 + c M`` buckets can be retrieved in at most ``M``
parallel accesses.  For the paper's (9,3,1) design: S(1)=5, S(2)=14,
S(3)=27.
"""

from __future__ import annotations

import math

__all__ = [
    "guarantee_capacity",
    "required_accesses",
    "max_admissible",
    "guarantee_table",
]


def guarantee_capacity(accesses: int, replication: int) -> int:
    """``S(M) = (c-1) M^2 + c M``: buckets retrievable in ``M`` accesses.

    Parameters
    ----------
    accesses:
        ``M``, the number of parallel access rounds (>= 0).
    replication:
        ``c``, the copy count (>= 1).
    """
    if accesses < 0:
        raise ValueError(f"accesses must be >= 0, got {accesses}")
    if replication < 1:
        raise ValueError(f"replication must be >= 1, got {replication}")
    c, m = replication, accesses
    return (c - 1) * m * m + c * m


def required_accesses(n_requests: int, replication: int) -> int:
    """Smallest ``M`` with ``n_requests <= S(M)`` (inverse of the above).

    Solves the quadratic ``(c-1)M^2 + cM - b >= 0`` in closed form and
    fixes up floating error with a local scan.
    """
    if n_requests < 0:
        raise ValueError(f"n_requests must be >= 0, got {n_requests}")
    if replication < 1:
        raise ValueError(f"replication must be >= 1, got {replication}")
    if n_requests == 0:
        return 0
    c, b = replication, n_requests
    if c == 1:
        return b  # no replication: one access per request, worst case
    disc = c * c + 4 * (c - 1) * b
    m = max(1, math.ceil((-c + math.sqrt(disc)) / (2 * (c - 1))))
    while guarantee_capacity(m, c) < b:
        m += 1
    while m > 1 and guarantee_capacity(m - 1, c) >= b:
        m -= 1
    return m


def max_admissible(interval_ms: float, access_time_ms: float,
                   replication: int) -> int:
    """Largest request count completing within an interval.

    The interval ``T`` fits ``floor(T / t_access)`` access rounds, so
    the admission limit is ``S(floor(T / t_access))`` (paper §III-A1
    with M chosen from the device service time).
    """
    if interval_ms <= 0 or access_time_ms <= 0:
        raise ValueError("interval and access time must be positive")
    rounds = int(interval_ms / access_time_ms + 1e-9)
    return guarantee_capacity(rounds, replication)


def guarantee_table(replication: int, max_accesses: int) -> list[tuple[int, int]]:
    """``[(M, S(M))]`` rows for documentation and reports."""
    return [(m, guarantee_capacity(m, replication))
            for m in range(1, max_accesses + 1)]
