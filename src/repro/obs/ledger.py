"""The QoS-violation ledger: who missed, when, and by how much.

The paper's guarantee is binary per run (``guarantee_met``); operations
work needs the detail -- which tenant, in which interval, by what
excess.  The ledger keeps exact per-tenant counts and excess totals
plus a bounded list of individual entries (past the cap we keep
counting, we just stop storing rows).

Violations carry a ``degraded`` flag: misses incurred while the array
was running around injected faults (failovers, retries, down windows,
latency degradation -- see :mod:`repro.faults`) are accounted
separately from healthy-path misses, so a report can distinguish "the
scheme broke its promise" from "the hardware did".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

__all__ = ["ViolationLedger", "ViolationEntry"]

DEFAULT_MAX_ENTRIES = 10_000


@dataclass(frozen=True)
class ViolationEntry:
    """One guarantee violation."""

    tenant: str
    interval: int
    excess_ms: float
    #: True when the miss happened on the fault/degraded path
    degraded: bool = False

    def to_list(self) -> List[object]:
        return [self.tenant, self.interval, self.excess_ms,
                int(self.degraded)]


class ViolationLedger:
    """Exact violation accounting with bounded per-entry detail."""

    def __init__(self, max_entries: int = DEFAULT_MAX_ENTRIES):
        if max_entries < 0:
            raise ValueError("max_entries must be >= 0")
        self.max_entries = max_entries
        self.entries: List[ViolationEntry] = []
        self.dropped = 0
        #: exact, unbounded: (count, total excess) per tenant
        self.by_tenant: Dict[str, Tuple[int, float]] = {}
        #: same accounting, degraded-mode (fault-path) misses only
        self.by_tenant_degraded: Dict[str, Tuple[int, float]] = {}

    @property
    def total(self) -> int:
        return sum(n for n, _ in self.by_tenant.values())

    @property
    def total_degraded(self) -> int:
        """Degraded-mode misses (a subset of :attr:`total`)."""
        return sum(n for n, _ in self.by_tenant_degraded.values())

    def record(self, tenant: str, interval: int,
               excess_ms: float, degraded: bool = False) -> None:
        n, excess = self.by_tenant.get(tenant, (0, 0.0))
        self.by_tenant[tenant] = (n + 1, excess + excess_ms)
        if degraded:
            n_d, excess_d = self.by_tenant_degraded.get(tenant,
                                                        (0, 0.0))
            self.by_tenant_degraded[tenant] = (n_d + 1,
                                               excess_d + excess_ms)
        if len(self.entries) < self.max_entries:
            self.entries.append(
                ViolationEntry(tenant, interval, excess_ms, degraded))
        else:
            self.dropped += 1

    def merge(self, other: "ViolationLedger") -> None:
        for tenant, (n, excess) in sorted(other.by_tenant.items()):
            mine_n, mine_excess = self.by_tenant.get(tenant, (0, 0.0))
            self.by_tenant[tenant] = (mine_n + n, mine_excess + excess)
        for tenant, (n, excess) in sorted(
                other.by_tenant_degraded.items()):
            mine_n, mine_excess = self.by_tenant_degraded.get(
                tenant, (0, 0.0))
            self.by_tenant_degraded[tenant] = (mine_n + n,
                                               mine_excess + excess)
        for entry in other.entries:
            if len(self.entries) < self.max_entries:
                self.entries.append(entry)
            else:
                self.dropped += 1
        self.dropped += other.dropped

    # -- (de)serialisation ----------------------------------------------
    def to_dict(self) -> Dict[str, object]:
        out: Dict[str, object] = {
            "total": self.total,
            "dropped": self.dropped,
            "by_tenant": {t: [n, excess] for t, (n, excess)
                          in sorted(self.by_tenant.items())},
            "entries": [e.to_list() for e in self.entries],
        }
        if self.by_tenant_degraded:
            # Only faulty runs carry the section, so healthy payloads
            # keep their pre-faults shape (and cross-engine identity).
            out["total_degraded"] = self.total_degraded
            out["by_tenant_degraded"] = {
                t: [n, excess] for t, (n, excess)
                in sorted(self.by_tenant_degraded.items())}
        return out

    @classmethod
    def from_dict(cls, data: Dict[str, object],
                  max_entries: int = DEFAULT_MAX_ENTRIES,
                  ) -> "ViolationLedger":
        ledger = cls(max_entries=max_entries)
        for tenant, (n, excess) in sorted(
                dict(data.get("by_tenant", {})).items()):
            ledger.by_tenant[tenant] = (int(n), float(excess))
        for tenant, (n, excess) in sorted(
                dict(data.get("by_tenant_degraded", {})).items()):
            ledger.by_tenant_degraded[tenant] = (int(n), float(excess))
        for row in data.get("entries", ()):  # type: ignore[union-attr]
            tenant, interval, excess = row[0], row[1], row[2]
            degraded = bool(row[3]) if len(row) > 3 else False
            if len(ledger.entries) < ledger.max_entries:
                ledger.entries.append(ViolationEntry(
                    str(tenant), int(interval), float(excess),
                    degraded))
        ledger.dropped = int(data.get("dropped", 0))  # type: ignore[arg-type]
        return ledger
