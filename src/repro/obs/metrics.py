"""The metrics registry: counters, gauges and mergeable histograms.

Everything here is built for *deterministic aggregation*: two sessions
that observed the same multiset of values -- in any order, folded in
any grouping -- export bit-identical state.  That is what lets
``repro.runner`` merge per-cell metrics across worker processes
without losing percentiles and without perturbing the byte-identity
guarantees the rest of the repo enforces.

The load-bearing piece is :class:`Histogram`: fixed log-scale buckets
whose state is integer counts plus exact extremes and an *exact* sum
(Shewchuk error-free accumulation, the algorithm behind
``math.fsum``).  Integer adds and exact-real addition are associative
and commutative, so ``Histogram.merge`` is too -- exactly, not
approximately -- which the property tests in
``tests/obs/test_metrics.py`` enforce on randomized partitions.
"""

from __future__ import annotations

import math
from bisect import bisect_right
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry",
           "ExactSum", "DEFAULT_LATENCY_BUCKETS"]


class ExactSum:
    """Error-free float accumulation (Shewchuk partials).

    The internal ``partials`` list represents the *exact* real sum of
    everything added; :attr:`value` rounds it once, correctly.  Because
    exact-real addition is associative and commutative, merging two
    accumulators in any order yields the same :attr:`value` bit for
    bit -- unlike a running float sum, whose result depends on
    association order.
    """

    __slots__ = ("partials",)

    def __init__(self, partials: Optional[Sequence[float]] = None):
        self.partials: List[float] = list(partials or ())

    def add(self, x: float) -> None:
        """Add one value, keeping the representation exact."""
        partials = self.partials
        x = float(x)
        i = 0
        for y in partials:
            if abs(x) < abs(y):
                x, y = y, x
            hi = x + y
            lo = y - (hi - x)
            if lo:
                partials[i] = lo
                i += 1
            x = hi
        partials[i:] = [x]

    def add_many(self, values: Iterable[float]) -> None:
        for v in values:
            self.add(v)

    def merge(self, other: "ExactSum") -> None:
        """Fold ``other`` in; exact, so order never matters."""
        for p in other.partials:
            self.add(p)

    @property
    def value(self) -> float:
        """The correctly-rounded sum."""
        return math.fsum(self.partials)

    def canonical(self) -> List[float]:
        """The unique minimal expansion of the represented sum.

        The internal partials list depends on insertion grouping even
        when the exact sum does not, so serialised state must not
        expose it raw.  Greedily peeling off the correctly-rounded
        remainder yields an expansion that is a pure function of the
        exact real value -- any two accumulators holding the same sum
        export the same floats.
        """
        rest = ExactSum(self.partials)
        out: List[float] = []
        while True:
            v = math.fsum(rest.partials)
            if v == 0.0:
                break
            out.append(v)
            rest.add(-v)
        out.reverse()  # ascending magnitude, like the internal form
        return out

    def copy(self) -> "ExactSum":
        return ExactSum(self.partials)


class Counter:
    """A monotonically increasing integer metric."""

    __slots__ = ("value",)

    def __init__(self, value: int = 0):
        self.value = int(value)

    def inc(self, n: int = 1) -> None:
        self.value += n

    def merge(self, other: "Counter") -> None:
        self.value += other.value


class Gauge:
    """A point-in-time value.

    ``kind="last"`` keeps the most recent :meth:`set` (merges take the
    other side's value when it was ever set -- with the runner's
    submission-index merge order this is deterministic);
    ``kind="max"`` keeps the running maximum, which *is* commutative.
    """

    __slots__ = ("value", "kind", "n_sets")

    def __init__(self, value: float = 0.0, kind: str = "last"):
        if kind not in ("last", "max"):
            raise ValueError(f"unknown gauge kind {kind!r}")
        self.value = float(value)
        self.kind = kind
        self.n_sets = 0

    def set(self, value: float) -> None:
        value = float(value)
        if self.kind == "max":
            if self.n_sets == 0 or value > self.value:
                self.value = value
        else:
            self.value = value
        self.n_sets += 1

    def merge(self, other: "Gauge") -> None:
        if other.n_sets == 0:
            return
        if self.kind == "max":
            if self.n_sets == 0 or other.value > self.value:
                self.value = other.value
        else:
            self.value = other.value
        self.n_sets += other.n_sets


def _log_edges(lo: float, hi: float, per_decade: int) -> np.ndarray:
    """Log-scale bucket edges ``lo * 10**(k / per_decade)`` up to hi."""
    n = int(round(math.log10(hi / lo) * per_decade))
    k = np.arange(n + 1, dtype=np.float64)
    return lo * np.power(10.0, k / per_decade)


#: default layout for latency histograms: 1 ns .. 1 s in milliseconds,
#: 60 buckets per decade (~3.9 % relative bucket width, so quantile
#: estimates are within ~2 % of the true sample quantile)
DEFAULT_LATENCY_BUCKETS = (1e-6, 1e3, 60)


class Histogram:
    """Deterministic fixed-bucket log-scale mergeable histogram.

    Parameters
    ----------
    lo, hi:
        Range covered by the log-scale buckets; values below ``lo``
        land in the underflow bucket, values at or above ``hi`` in the
        overflow bucket.  Exact zero (and anything below ``lo``) is
        underflow -- common for zero-delay samples.
    per_decade:
        Bucket resolution: ``per_decade`` buckets per factor of 10,
        giving a relative bucket width of ``10**(1/per_decade) - 1``.

    State is ``(bucket counts, count, min, max, exact sum)``.  All of
    it is order-independent and :meth:`merge` is exactly associative
    and commutative, so percentile estimates survive any process
    fan-out/merge topology unchanged.
    """

    __slots__ = ("lo", "hi", "per_decade", "_edges", "_edges_list",
                 "counts", "count", "_min", "_max", "_sum")

    def __init__(self, lo: float = DEFAULT_LATENCY_BUCKETS[0],
                 hi: float = DEFAULT_LATENCY_BUCKETS[1],
                 per_decade: int = DEFAULT_LATENCY_BUCKETS[2]):
        if not 0 < lo < hi:
            raise ValueError("need 0 < lo < hi")
        if per_decade < 1:
            raise ValueError("per_decade must be >= 1")
        self.lo = float(lo)
        self.hi = float(hi)
        self.per_decade = int(per_decade)
        self._edges = _log_edges(self.lo, self.hi, self.per_decade)
        #: plain-list twin of the edges for the scalar (bisect) path;
        #: identical floats, so bisect_right == np.searchsorted 'right'
        self._edges_list = self._edges.tolist()
        #: counts[0] = underflow, counts[1:-1] = log buckets,
        #: counts[-1] = overflow
        self.counts = np.zeros(len(self._edges_list) + 1, dtype=np.int64)
        self.count = 0
        self._min = math.inf
        self._max = -math.inf
        self._sum = ExactSum()

    # -- layout ----------------------------------------------------------
    @property
    def layout(self) -> Tuple[float, float, int]:
        return (self.lo, self.hi, self.per_decade)

    def edges(self) -> List[float]:
        """Bucket edges (ascending); bucket ``i`` covers
        ``[edges[i-1], edges[i])`` for ``1 <= i <= len(edges) - 1``."""
        return list(self._edges_list)

    # -- recording -------------------------------------------------------
    def record(self, value: float) -> None:
        value = float(value)
        self.counts[bisect_right(self._edges_list, value)] += 1
        self.count += 1
        if value < self._min:
            self._min = value
        if value > self._max:
            self._max = value
        self._sum.add(value)

    def record_array(self, values: np.ndarray) -> None:
        """Vectorized bucket update; same state as a :meth:`record`
        loop over the same values (the state is order-independent)."""
        arr = np.ascontiguousarray(values, dtype=np.float64)
        if arr.size == 0:
            return
        idx = np.searchsorted(self._edges, arr, side="right")
        self.counts += np.bincount(idx, minlength=self.counts.size)
        self.count += int(arr.size)
        amin = float(arr.min())
        amax = float(arr.max())
        if amin < self._min:
            self._min = amin
        if amax > self._max:
            self._max = amax
        self._sum.add_many(arr.tolist())

    # -- reading ---------------------------------------------------------
    @property
    def min(self) -> float:
        return self._min if self.count else 0.0

    @property
    def max(self) -> float:
        return self._max if self.count else 0.0

    @property
    def sum(self) -> float:
        return self._sum.value

    @property
    def mean(self) -> float:
        return self._sum.value / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Estimated ``q``-quantile (``q`` in [0, 100]).

        Exact at the extremes (``q=0`` -> min, ``q=100`` -> max);
        elsewhere linear interpolation inside the covering bucket, so
        the estimate is within one bucket width
        (``10**(1/per_decade) - 1`` relative) of the true sample
        quantile.
        """
        if not 0 <= q <= 100:
            raise ValueError(f"quantile must be in [0, 100], got {q}")
        if self.count == 0:
            return 0.0
        if q == 0:
            return self.min
        if q == 100:
            return self.max
        target = q / 100.0 * self.count
        cum = np.cumsum(self.counts)
        idx = int(np.searchsorted(cum, target, side="left"))
        before = int(cum[idx - 1]) if idx > 0 else 0
        inside = int(self.counts[idx])
        # bucket bounds, clamped to the observed extremes
        lo = self._min if idx == 0 else self._edges_list[idx - 1]
        hi = self._max if idx == self.counts.size - 1 \
            else self._edges_list[idx]
        lo = max(lo, self._min)
        hi = min(hi, self._max)
        if inside <= 0 or hi <= lo:
            return min(max(lo, self._min), self._max)
        frac = (target - before) / inside
        return min(max(lo + frac * (hi - lo), self._min), self._max)

    def percentiles(self) -> Dict[str, float]:
        """The standard latency panel: p50/p95/p99/p999."""
        return {"p50": self.quantile(50), "p95": self.quantile(95),
                "p99": self.quantile(99), "p999": self.quantile(99.9)}

    # -- merging ---------------------------------------------------------
    def merge(self, other: "Histogram") -> None:
        """Fold ``other`` in.  Exactly associative and commutative:
        integer count adds, min/max, and exact-real sum."""
        if other.layout != self.layout:
            raise ValueError(
                f"cannot merge histograms with different layouts "
                f"{self.layout} vs {other.layout}")
        self.counts += other.counts
        self.count += other.count
        if other._min < self._min:
            self._min = other._min
        if other._max > self._max:
            self._max = other._max
        self._sum.merge(other._sum)

    def state(self) -> Tuple:
        """Comparable full state (used by the merge property tests)."""
        return (self.layout, self.count, tuple(int(c) for c in self.counts),
                self.min, self.max, self.sum)

    # -- (de)serialisation ----------------------------------------------
    def to_dict(self) -> Dict[str, object]:
        nonzero = np.flatnonzero(self.counts)
        return {
            "layout": list(self.layout),
            "count": self.count,
            "min": self.min,
            "max": self.max,
            "sum": self.sum,
            "sum_partials": self._sum.canonical(),
            "buckets": [[int(i), int(self.counts[i])] for i in nonzero],
            **self.percentiles(),
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "Histogram":
        lo, hi, per_decade = data["layout"]  # type: ignore[misc]
        hist = cls(lo=float(lo), hi=float(hi), per_decade=int(per_decade))
        for i, c in data.get("buckets", ()):  # type: ignore[union-attr]
            hist.counts[int(i)] = int(c)
        hist.count = int(data["count"])
        if hist.count:
            hist._min = float(data["min"])  # type: ignore[arg-type]
            hist._max = float(data["max"])  # type: ignore[arg-type]
        hist._sum = ExactSum(
            [float(p) for p in data.get("sum_partials", ())])
        return hist


class MetricsRegistry:
    """Named metrics, created on first use, exported in sorted order.

    The registry is deliberately label-free: encode dimensions in the
    metric name (``module.3.served``) so export and merge stay a flat,
    deterministic mapping.
    """

    def __init__(self):
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    # -- factories -------------------------------------------------------
    def counter(self, name: str) -> Counter:
        metric = self._counters.get(name)
        if metric is None:
            metric = self._counters[name] = Counter()
        return metric

    def gauge(self, name: str, kind: str = "last") -> Gauge:
        metric = self._gauges.get(name)
        if metric is None:
            metric = self._gauges[name] = Gauge(kind=kind)
        return metric

    def histogram(self, name: str,
                  lo: float = DEFAULT_LATENCY_BUCKETS[0],
                  hi: float = DEFAULT_LATENCY_BUCKETS[1],
                  per_decade: int = DEFAULT_LATENCY_BUCKETS[2],
                  ) -> Histogram:
        metric = self._histograms.get(name)
        if metric is None:
            metric = self._histograms[name] = Histogram(
                lo=lo, hi=hi, per_decade=per_decade)
        return metric

    # -- export / merge --------------------------------------------------
    def to_dict(self) -> Dict[str, object]:
        return {
            "counters": {k: self._counters[k].value
                         for k in sorted(self._counters)},
            "gauges": {k: self._gauges[k].value
                       for k in sorted(self._gauges)},
            "histograms": {k: self._histograms[k].to_dict()
                           for k in sorted(self._histograms)},
        }

    def merge_dict(self, data: Dict[str, object]) -> None:
        """Fold an exported registry payload into this one."""
        for name, value in sorted(
                dict(data.get("counters", {})).items()):
            self.counter(name).inc(int(value))
        for name, value in sorted(dict(data.get("gauges", {})).items()):
            self.gauge(name).set(float(value))
        for name, payload in sorted(
                dict(data.get("histograms", {})).items()):
            incoming = Histogram.from_dict(payload)
            self.histogram(name, *incoming.layout).merge(incoming)
