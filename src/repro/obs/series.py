"""Per-module utilisation and queue-depth time series.

Sampled at QoS-interval boundaries and computed *post hoc* from the
played request timestamps, so the DES and the vectorized fast path
produce identical series by construction (same timestamps in, same
pure function over them).

Replicated write masters (``device == -1``) are excluded from the
per-device series on both engines -- the fast engine only tracks the
logical write, not its per-replica service windows.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

import numpy as np

__all__ = ["ModuleSeries", "module_interval_series"]


class ModuleSeries:
    """Busy time and boundary queue depth per (device, interval).

    ``busy_ms[(d, k)]`` is device ``d``'s in-service time inside
    interval ``k``; utilisation is that over ``interval_ms``.
    ``depth[(d, k)]`` is the number of requests sitting in ``d``'s
    queue (issued, not yet started) at the instant interval ``k``
    begins.
    """

    def __init__(self, interval_ms: float = 0.0, n_devices: int = 0):
        self.interval_ms = float(interval_ms)
        self.n_devices = int(n_devices)
        self.busy_ms: Dict[Tuple[int, int], float] = {}
        self.depth: Dict[Tuple[int, int], int] = {}

    def intervals(self) -> List[int]:
        keys = set(k for _, k in self.busy_ms) \
            | set(k for _, k in self.depth)
        return sorted(keys)

    def utilisation(self, device: int, interval: int) -> float:
        if self.interval_ms <= 0:
            return 0.0
        return self.busy_ms.get((device, interval), 0.0) / self.interval_ms

    def rows(self) -> List[Tuple[int, int, float, int]]:
        """Sorted ``(device, interval, busy_ms, depth)`` rows."""
        keys = sorted(set(self.busy_ms) | set(self.depth))
        return [(d, k, self.busy_ms.get((d, k), 0.0),
                 self.depth.get((d, k), 0)) for d, k in keys]

    def merge(self, other: "ModuleSeries") -> None:
        """Fold another series in (sums busy time and depths)."""
        if self.interval_ms == 0.0:
            self.interval_ms = other.interval_ms
        self.n_devices = max(self.n_devices, other.n_devices)
        for key, busy in other.busy_ms.items():
            self.busy_ms[key] = self.busy_ms.get(key, 0.0) + busy
        for key, depth in other.depth.items():
            self.depth[key] = self.depth.get(key, 0) + depth

    # -- (de)serialisation ----------------------------------------------
    def to_dict(self) -> Dict[str, object]:
        return {"interval_ms": self.interval_ms,
                "n_devices": self.n_devices,
                "rows": [[d, k, busy, depth]
                         for d, k, busy, depth in self.rows()]}

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "ModuleSeries":
        series = cls(interval_ms=float(data.get("interval_ms", 0.0)),  # type: ignore[arg-type]
                     n_devices=int(data.get("n_devices", 0)))  # type: ignore[arg-type]
        for d, k, busy, depth in data.get("rows", ()):  # type: ignore[union-attr]
            key = (int(d), int(k))
            if busy:
                series.busy_ms[key] = float(busy)
            if depth:
                series.depth[key] = int(depth)
        return series


def module_interval_series(played: Sequence, n_devices: int,
                           interval_ms: float) -> ModuleSeries:
    """Compute the per-module series from played requests.

    Pure function of the request timestamps: for every request with a
    device and a service window, its ``[started_at, completed_at)``
    span is apportioned to the intervals it overlaps, and its
    ``[issued_at, started_at)`` wait contributes to the queue depth at
    any boundary it straddles.
    """
    series = ModuleSeries(interval_ms=interval_ms, n_devices=n_devices)
    if interval_ms <= 0:
        raise ValueError("interval_ms must be positive")
    # per-device queue wait windows, for the boundary-depth counts
    issued: Dict[int, List[float]] = {}
    started: Dict[int, List[float]] = {}
    last_boundary = 0
    seen = False
    for pr in played:
        io = pr.io
        if pr.rejected or getattr(io, "failed", False) \
                or io.device < 0 or io.completed_at <= 0:
            continue
        seen = True
        d = io.device
        s, c = io.started_at, io.completed_at
        first = int(s / interval_ms + 1e-9)
        for k in range(first, int(np.ceil(c / interval_ms - 1e-9))):
            lo = k * interval_ms
            hi = lo + interval_ms
            overlap = min(c, hi) - max(s, lo)
            if overlap > 0:
                key = (d, k)
                series.busy_ms[key] = \
                    series.busy_ms.get(key, 0.0) + overlap
        last_boundary = max(last_boundary,
                            int(c / interval_ms - 1e-9))
        issued.setdefault(d, []).append(io.issued_at)
        started.setdefault(d, []).append(s)
    if not seen:
        return series
    # depth at boundary t = (#issued <= t) - (#started <= t)
    boundaries = np.arange(last_boundary + 1, dtype=np.float64) \
        * interval_ms
    for d in sorted(issued):
        arr_in = np.sort(np.asarray(issued[d], dtype=np.float64))
        arr_out = np.sort(np.asarray(started[d], dtype=np.float64))
        depth = (np.searchsorted(arr_in, boundaries, side="right")
                 - np.searchsorted(arr_out, boundaries, side="right"))
        for k, n in enumerate(depth):
            if n > 0:
                series.depth[(d, k)] = int(n)
    return series
