"""Exporters for recorded observability payloads.

All exporters are pure functions of the payload dict produced by
:meth:`repro.obs.session.ObsSession.to_payload`, so they can run in a
different process (or much later, via ``python -m repro.obs``) than
the recording.  Four formats:

* :func:`summarize_payload` / :func:`to_json_summary` -- a compact
  JSON summary (counts, latency percentiles, violation totals);
* :func:`to_csv_series` -- the per-module interval series as CSV;
* :func:`to_prometheus` -- Prometheus text exposition format;
* :func:`to_chrome_trace` -- Chrome ``trace_event`` JSON, loadable in
  Perfetto / ``chrome://tracing`` (:func:`validate_chrome_trace`
  checks the schema).

Simulation time is milliseconds throughout the payload; the Chrome
format wants microseconds, so span timestamps are scaled by 1000 on
export.
"""

from __future__ import annotations

import io
import json
import re
from typing import Dict, List

from repro.obs.metrics import Histogram

__all__ = ["summarize_payload", "to_json_summary", "to_csv_series",
           "to_prometheus", "to_chrome_trace", "validate_chrome_trace"]


# -- JSON summary --------------------------------------------------------
def summarize_payload(payload: Dict[str, object]) -> Dict[str, object]:
    """Compact human-oriented summary of a payload."""
    request = payload["request"]  # type: ignore[index]
    metrics = request["metrics"]
    histograms = {}
    for name, data in metrics["histograms"].items():
        hist = Histogram.from_dict(data)
        histograms[name] = {
            "count": hist.count,
            "mean": hist.mean,
            "min": hist.min,
            "max": hist.max,
            **hist.percentiles(),
        }
    ledger = request["ledger"]
    series = request["series"]
    kernel = payload["kernel"]  # type: ignore[index]
    kernel_counters = kernel["metrics"]["counters"]
    return {
        "version": payload["version"],  # type: ignore[index]
        "counters": dict(metrics["counters"]),
        "gauges": dict(metrics["gauges"]),
        "histograms": histograms,
        "violations": {
            "total": ledger["total"],
            "by_tenant": dict(ledger["by_tenant"]),
        },
        "spans": {
            "recorded": len(request["tracer"]["spans"]),
            "dropped": request["tracer"]["dropped"],
            "live_opened": kernel["live_opened"],
            "live_closed": kernel["live_closed"],
        },
        "series": {
            "interval_ms": series["interval_ms"],
            "n_devices": series["n_devices"],
            "n_rows": len(series["rows"]),
        },
        "kernel_events": sum(
            v for k, v in kernel_counters.items()
            if k.startswith("sim.events.")),
    }


def to_json_summary(payload: Dict[str, object]) -> str:
    return json.dumps(summarize_payload(payload), indent=2,
                      sort_keys=True) + "\n"


# -- CSV series ----------------------------------------------------------
def to_csv_series(payload: Dict[str, object]) -> str:
    """Per-module interval series as CSV text."""
    series = payload["request"]["series"]  # type: ignore[index]
    interval_ms = float(series["interval_ms"])
    out = io.StringIO()
    out.write("device,interval,busy_ms,utilisation,queue_depth\n")
    for device, interval, busy, depth in series["rows"]:
        util = busy / interval_ms if interval_ms > 0 else 0.0
        out.write(f"{device},{interval},{busy:.9g},{util:.9g},{depth}\n")
    return out.getvalue()


# -- Prometheus text format ----------------------------------------------
_PROM_BAD = re.compile(r"[^a-zA-Z0-9_:]")


def _prom_name(name: str) -> str:
    return "repro_" + _PROM_BAD.sub("_", name)


def _prom_float(value: float) -> str:
    return repr(float(value))


def to_prometheus(payload: Dict[str, object]) -> str:
    """Prometheus text exposition (counters, gauges, histograms).

    Histogram buckets are emitted cumulatively with ``le`` edges;
    empty buckets are collapsed (only edges where the cumulative count
    changes appear, plus the mandatory ``+Inf``).
    """
    metrics = payload["request"]["metrics"]  # type: ignore[index]
    out = io.StringIO()
    for name, value in metrics["counters"].items():
        prom = _prom_name(name)
        out.write(f"# TYPE {prom} counter\n{prom}_total {value}\n")
    for name, value in metrics["gauges"].items():
        prom = _prom_name(name)
        out.write(f"# TYPE {prom} gauge\n{prom} {_prom_float(value)}\n")
    for name, data in metrics["histograms"].items():
        prom = _prom_name(name)
        hist = Histogram.from_dict(data)
        out.write(f"# TYPE {prom} histogram\n")
        edges = hist.edges()
        cum = 0
        for i, count in enumerate(hist.counts):
            if count == 0:
                continue
            cum += int(count)
            if i < len(edges):
                le = _prom_float(edges[i])
                out.write(f'{prom}_bucket{{le="{le}"}} {cum}\n')
        out.write(f'{prom}_bucket{{le="+Inf"}} {hist.count}\n')
        out.write(f"{prom}_sum {_prom_float(hist.sum)}\n")
        out.write(f"{prom}_count {hist.count}\n")
    return out.getvalue()


# -- Chrome trace_event JSON ---------------------------------------------
#: span category -> Chrome trace colour name (cname is advisory)
_TRACE_COLOURS = {"admission": "thread_state_iowait",
                  "queue": "thread_state_runnable",
                  "service": "thread_state_running"}


def to_chrome_trace(payload: Dict[str, object]) -> Dict[str, object]:
    """Chrome ``trace_event`` JSON (object format, complete events).

    Every span becomes an ``"X"`` (complete) event on pid 0, with the
    device index as the thread id (-1, replicated writes, maps to the
    ``writes`` pseudo-thread).  Timestamps/durations are microseconds
    as the format requires.
    """
    request = payload["request"]  # type: ignore[index]
    events: List[Dict[str, object]] = [{
        "name": "process_name", "ph": "M", "pid": 0, "tid": 0,
        "args": {"name": "repro flash array (simulated)"},
    }]
    tids = set()
    for span in request["tracer"]["spans"]:
        tid = int(span["tid"])
        tids.add(tid)
        event = {
            "name": span["name"],
            "cat": span["cat"],
            "ph": "X",
            "pid": 0,
            "tid": tid,
            "ts": float(span["start_ms"]) * 1000.0,
            "dur": (float(span["end_ms"])
                    - float(span["start_ms"])) * 1000.0,
            "args": {str(k): v for k, v in span["args"]},
        }
        cname = _TRACE_COLOURS.get(str(span["cat"]))
        if cname:
            event["cname"] = cname
        events.append(event)
    for tid in sorted(tids):
        label = f"module {tid}" if tid >= 0 else "writes"
        events.append({"name": "thread_name", "ph": "M", "pid": 0,
                       "tid": tid, "args": {"name": label}})
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def validate_chrome_trace(trace: Dict[str, object]) -> None:
    """Raise ``ValueError`` unless ``trace`` is schema-valid.

    Checks the object-format envelope and, per event, the fields the
    trace_event spec requires: ``ph``/``pid``/``tid``/``name`` always,
    plus numeric non-negative ``ts``/``dur`` for complete events.
    """
    if not isinstance(trace, dict):
        raise ValueError("trace must be a JSON object")
    events = trace.get("traceEvents")
    if not isinstance(events, list):
        raise ValueError("trace.traceEvents must be a list")
    for i, event in enumerate(events):
        if not isinstance(event, dict):
            raise ValueError(f"event {i} is not an object")
        for key in ("ph", "pid", "tid", "name"):
            if key not in event:
                raise ValueError(f"event {i} missing {key!r}")
        ph = event["ph"]
        if ph not in ("X", "B", "E", "M", "I", "C"):
            raise ValueError(f"event {i} has unknown phase {ph!r}")
        if ph == "X":
            for key in ("ts", "dur"):
                value = event.get(key)
                if not isinstance(value, (int, float)):
                    raise ValueError(
                        f"event {i} field {key!r} must be numeric")
                if value < 0:
                    raise ValueError(
                        f"event {i} field {key!r} must be >= 0")
            if not isinstance(event.get("args", {}), dict):
                raise ValueError(f"event {i} args must be an object")
