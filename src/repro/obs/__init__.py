"""``repro.obs``: simulation-native observability.

The paper's whole evaluation is a set of latency/QoS measurements, but
measuring *why* a scheme misses a deadline (queue depth, per-module
utilisation, admission decisions) needs more than the response-time
lists the experiments keep.  This package provides:

* a **metrics registry** (:class:`~repro.obs.metrics.Counter`,
  :class:`~repro.obs.metrics.Gauge`,
  :class:`~repro.obs.metrics.Histogram`) whose histogram is a
  deterministic fixed-bucket log-scale *mergeable* latency histogram --
  merging is exactly associative and commutative, so
  :mod:`repro.runner` can combine per-cell results across processes
  without losing percentiles;
* **request-lifecycle tracing**: admission -> queue -> service spans in
  simulation time, plus per-module utilisation and queue-depth series
  sampled at interval boundaries;
* **exporters** (:mod:`repro.obs.export`): JSON summary, CSV series,
  Prometheus text format and Chrome ``trace_event`` JSON (loadable in
  Perfetto / ``chrome://tracing``), with a ``python -m repro.obs`` CLI
  that summarises recorded artefacts;
* **wiring** through the DES kernel, the flash array/modules, both
  trace players (the vectorized fast path synthesises identical
  metrics), the QoS facade (a violation ledger) and the parallel
  runner (deterministic merge by submission index).

Observability is **off by default** behind a module-level flag, the
same pattern as :mod:`repro.check.sanitizers`: hot paths pay one
attribute load and a falsy branch per checkpoint, and no per-request
object is allocated while disabled.  Everything is recorded in
simulation time only -- no wall clock -- so instrumented runs stay
bit-reproducible and ``repro.check`` stays green.

Enable programmatically::

    from repro import obs

    with obs.observed() as session:
        report = qos.run_online(arrivals, buckets)
    payload = session.to_payload()

or pass ``--obs`` to ``python -m repro.experiments``.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator, Optional

from repro.obs.ledger import ViolationLedger
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.obs.series import ModuleSeries
from repro.obs.session import ObsSession, request_sections
from repro.obs.spans import Span, Tracer

__all__ = [
    "ACTIVE", "SESSION", "enable", "disable", "observed",
    "Counter", "Gauge", "Histogram", "MetricsRegistry",
    "ModuleSeries", "ObsSession", "Span", "Tracer",
    "ViolationLedger", "request_sections",
]

#: The master switch.  Hot paths read this module attribute directly
#: (``if obs.ACTIVE:``), so the disabled cost is one attribute load
#: and a falsy branch per checkpoint -- measured by
#: ``tools/bench_obs.py``.
ACTIVE: bool = False

#: The process-wide recording session while observability is enabled.
SESSION: Optional[ObsSession] = None


def enable(session: Optional[ObsSession] = None) -> ObsSession:
    """Turn observability on for this process; returns the session."""
    global ACTIVE, SESSION
    # Retrieval-kernel memo caches persist across sessions; start each
    # instrumented session cold so its hit/miss counters (and the
    # double-run determinism probe) do not depend on process history.
    from repro.graph import kernels as _kernels

    _kernels.clear_caches()
    SESSION = session if session is not None else ObsSession()
    ACTIVE = True
    return SESSION


def disable() -> None:
    """Turn observability off and drop the session."""
    global ACTIVE, SESSION
    ACTIVE = False
    SESSION = None


@contextmanager
def observed(session: Optional[ObsSession] = None,
             ) -> Iterator[ObsSession]:
    """Scoped enable: record into a fresh (or given) session.

    Restores the previous state on exit, so sessions nest -- the
    parallel runner uses this to give worker cells their own session
    whose payload the parent then merges.
    """
    global ACTIVE, SESSION
    previous = (ACTIVE, SESSION)
    current = enable(session)
    try:
        yield current
    finally:
        ACTIVE, SESSION = previous
