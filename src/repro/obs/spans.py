"""Request-lifecycle spans, recorded in simulation time.

A span is one phase of a request's life -- admission wait, module
queueing, service -- with start/end in simulated milliseconds.  Spans
are *derived from the request timestamps* after playback (both engines
fill the same ``IORequest`` fields with bit-identical floats), so the
span stream is engine-independent by construction.  The DES
additionally feeds live open/close counters from the array's
issue/complete hooks; the ``repro.check`` obs probe asserts they
balance at drain time.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

__all__ = ["Span", "Tracer"]

#: keep at most this many spans by default; past the cap we count
#: drops instead of growing without bound (the histograms/counters
#: remain exact -- only the per-request event stream is truncated)
DEFAULT_MAX_SPANS = 100_000


@dataclass(frozen=True)
class Span:
    """One lifecycle phase in simulation time (milliseconds)."""

    name: str
    cat: str
    start_ms: float
    end_ms: float
    #: device index (Chrome trace thread id); -1 = no single device
    #: (e.g. a replicated write master)
    tid: int = -1
    args: Tuple[Tuple[str, object], ...] = ()

    @property
    def dur_ms(self) -> float:
        return self.end_ms - self.start_ms

    def to_dict(self) -> Dict[str, object]:
        return {"name": self.name, "cat": self.cat,
                "start_ms": self.start_ms, "end_ms": self.end_ms,
                "tid": self.tid, "args": [list(kv) for kv in self.args]}

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "Span":
        return cls(name=str(data["name"]), cat=str(data["cat"]),
                   start_ms=float(data["start_ms"]),  # type: ignore[arg-type]
                   end_ms=float(data["end_ms"]),  # type: ignore[arg-type]
                   tid=int(data.get("tid", -1)),  # type: ignore[arg-type]
                   args=tuple((str(k), v) for k, v in
                              data.get("args", ())))  # type: ignore[union-attr]


class Tracer:
    """Bounded span store plus live open/close accounting.

    ``add`` collects derived spans (capped at ``max_spans``, excess is
    counted in :attr:`dropped`); :meth:`open_live`/:meth:`close_live`
    are the DES-side hooks -- the array bumps them when a request is
    issued to / completed by a module, so a drained simulation must
    end with ``live_opened == live_closed``.
    """

    def __init__(self, max_spans: int = DEFAULT_MAX_SPANS):
        if max_spans < 0:
            raise ValueError("max_spans must be >= 0")
        self.max_spans = max_spans
        self.spans: List[Span] = []
        self.dropped = 0
        self.live_opened = 0
        self.live_closed = 0

    def add(self, span: Span) -> None:
        if len(self.spans) < self.max_spans:
            self.spans.append(span)
        else:
            self.dropped += 1

    def open_live(self) -> None:
        self.live_opened += 1

    def close_live(self) -> None:
        self.live_closed += 1

    @property
    def live_open(self) -> int:
        """Spans currently open on the DES side (0 after drain)."""
        return self.live_opened - self.live_closed

    def emit_request(self, io, interval: int, index: int,
                     delayed: bool) -> None:
        """Derive lifecycle spans for one played request.

        Works purely off the ``IORequest`` timestamps, which both
        playback engines fill with bit-identical floats:

        * ``admission`` -- arrival to issue, when admission delayed the
          request (budget overflow or a deterministic-QoS conflict);
        * ``queue`` -- issue to service start, when the request waited
          in a module queue (within-guarantee queueing);
        * ``service`` -- service start to completion on its device;
        * ``write`` -- issue to completion for replicated write
          masters, which have no single device/service window.
        """
        args = (("index", index), ("interval", interval),
                ("bucket", io.bucket))
        if delayed and io.issued_at > io.arrival:
            self.add(Span("admission", "admission", io.arrival,
                          io.issued_at, tid=io.device, args=args))
        if io.device >= 0 and io.started_at >= io.issued_at:
            if io.started_at > io.issued_at:
                self.add(Span("queue", "queue", io.issued_at,
                              io.started_at, tid=io.device, args=args))
            self.add(Span("service", "service", io.started_at,
                          io.completed_at, tid=io.device, args=args))
        else:
            # replicated write master: completion is the slowest
            # replica; per-device detail lives in the module series
            self.add(Span("write", "service", io.issued_at,
                          io.completed_at, tid=io.device, args=args))

    # -- (de)serialisation ----------------------------------------------
    def to_dict(self) -> Dict[str, object]:
        return {"max_spans": self.max_spans,
                "dropped": self.dropped,
                "live_opened": self.live_opened,
                "live_closed": self.live_closed,
                "spans": [s.to_dict() for s in self.spans]}

    def merge_dict(self, data: Dict[str, object]) -> None:
        self.dropped += int(data.get("dropped", 0))  # type: ignore[arg-type]
        self.live_opened += int(data.get("live_opened", 0))  # type: ignore[arg-type]
        self.live_closed += int(data.get("live_closed", 0))  # type: ignore[arg-type]
        for payload in data.get("spans", ()):  # type: ignore[union-attr]
            self.add(Span.from_dict(payload))
