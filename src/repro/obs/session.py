"""The recording session: where all observability hooks land.

An :class:`ObsSession` groups the registry, tracer, module series and
violation ledger behind the hook methods the instrumented code calls.
Its exported *payload* (a plain picklable/JSON-able dict) has two
sections:

``request``
    Everything derived from played request timestamps -- latency
    histograms, lifecycle spans, per-module series, the violation
    ledger.  Both playback engines produce **identical** request
    sections on eligible configurations, because the hooks run over
    the same bit-identical timestamps (enforced by the fastpath
    identity tests and the ``obs`` determinism probe).

``kernel``
    DES-internal accounting -- simulation event counts, per-module
    served counters, live span open/close tallies.  The fast path has
    no kernel, so this section is engine-specific by design and
    excluded from cross-engine identity checks
    (:func:`request_sections` selects the comparable part).
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

import numpy as np

from repro.obs.ledger import ViolationLedger
from repro.obs.metrics import MetricsRegistry
from repro.obs.series import ModuleSeries, module_interval_series
from repro.obs.spans import Tracer

__all__ = ["ObsSession", "request_sections"]

PAYLOAD_VERSION = 1


def request_sections(payload: Dict[str, object]) -> Dict[str, object]:
    """The engine-independent part of a payload.

    Two runs of the same workload -- DES or fast path, one process or
    many -- must agree on this section exactly.
    """
    return payload["request"]  # type: ignore[return-value]


class ObsSession:
    """One recording session (typically: one experiment cell)."""

    def __init__(self, max_spans: Optional[int] = None):
        #: engine-independent metrics (latency histograms, counters)
        self.registry = MetricsRegistry()
        #: DES-internal metrics (event counts, module served counts)
        self.kernel = MetricsRegistry()
        self.tracer = Tracer() if max_spans is None else \
            Tracer(max_spans=max_spans)
        self.series = ModuleSeries()
        self.ledger = ViolationLedger()

    # -- kernel-side hooks (DES only) ------------------------------------
    def on_kernel_event(self, event_type: str) -> None:
        """One event popped off the simulation queue."""
        self.kernel.counter(f"sim.events.{event_type}").inc()

    def on_service(self, module_id: int) -> None:
        """One request served by a flash module's service loop."""
        self.kernel.counter(f"module.{module_id}.served").inc()

    def on_issue(self) -> None:
        """A request was issued to a module (span opens)."""
        self.tracer.open_live()

    def on_complete(self) -> None:
        """A request completed on a module (span closes)."""
        self.tracer.close_live()

    def on_kernel_cache(self, cache: str, hit: bool) -> None:
        """One lookup in a retrieval-kernel memo cache."""
        outcome = "hit" if hit else "miss"
        self.kernel.counter(f"kernels.{cache}.{outcome}").inc()

    def on_warm_start(self, repaired: bool) -> None:
        """One warm-started matcher update (arrival or departure).

        ``repaired`` is True when the incremental augmenting-path
        repair kept the assignment maximum without a full re-solve.
        """
        outcome = "repaired" if repaired else "pending"
        self.kernel.counter(f"kernels.warm_start.{outcome}").inc()

    # -- fault hooks ------------------------------------------------------
    def on_fault(self, kind: str, count: int = 1) -> None:
        """One fault-layer incident.

        ``kind`` is a short slug -- ``read_error``, ``read_retry``,
        ``failover``, ``unavailable``, ``dead_module``, ``down_wait``,
        ``slow_service``, ``degraded_write`` -- landing on the
        ``faults.{kind}`` counter.  Both engines emit these (the DES
        module/driver fault paths and the
        :class:`repro.flash.faulted.FaultedReplay` mirror) with
        identical counts, so they live in the engine-compared request
        section like every other request-derived metric.
        """
        self.registry.counter(f"faults.{kind}").inc(count)

    def on_engine(self, engine: str, reason: str = "") -> None:
        """One playback engine selection by a trace player.

        Lands in the *kernel* (engine-specific) section by design:
        ``engine.fast`` / ``engine.des`` counters plus
        ``engine.fallback.{reason}`` naming why the fast path was
        declined -- benches report fast-path coverage from these.
        """
        self.kernel.counter(f"engine.{engine}").inc()
        if reason:
            self.kernel.counter(f"engine.fallback.{reason}").inc()

    def on_admission_reuse(self) -> None:
        """One in-place :class:`WarmStartMatcher` reuse across an
        exact-admission interval boundary (allocation-free reset).

        Engine-specific plumbing detail, so it lands in the kernel
        section on ``kernels.admission.exact_reuse``.
        """
        self.kernel.counter("kernels.admission.exact_reuse").inc()

    # -- request-side hooks (engine-independent) -------------------------
    def on_admission(self, kind: str, count: int = 1) -> None:
        """One admission-controller decision over an offered request.

        ``kind`` is ``admitted``, ``delayed`` (admitted after an
        overflow requeue or a busy-device wait) or ``rejected``,
        landing on the ``admission.{kind}`` counter.  Both the scalar
        driver loop and the vectorized admission kernel
        (:mod:`repro.flash.admitpath`) emit these with identical
        totals, so they live in the engine-compared request section.
        """
        self.registry.counter(f"admission.{kind}").inc(count)

    def observe_request(self, pr) -> None:
        """Fold one :class:`~repro.flash.driver.PlayedRequest` in.

        Called from the shared series-collection pass, so DES and fast
        playback observe the same requests with the same floats.
        """
        reg = self.registry
        reg.counter("requests.total").inc()
        io = pr.io
        if pr.rejected:
            reg.counter("requests.rejected").inc()
            return
        if getattr(pr, "failed", False):
            reg.counter("requests.failed").inc()
            return
        if getattr(io, "faulted", False):
            reg.counter("requests.faulted").inc()
        if not io.is_read:
            reg.counter("requests.writes").inc()
        reg.histogram("latency.response_ms").record(io.response_ms)
        reg.histogram("latency.total_ms").record(io.total_ms)
        if pr.delayed:
            reg.counter("requests.delayed").inc()
            reg.histogram("latency.delay_ms").record(io.delay_ms)
        self.tracer.emit_request(io, pr.interval, pr.index, pr.delayed)

    def observe_responses_array(self, responses: np.ndarray) -> None:
        """Bulk-record response times with no per-request detail.

        For vectorized paths that never materialise ``PlayedRequest``
        objects (the original-array baseline playback): histograms and
        counts still land, spans/series do not.
        """
        arr = np.ascontiguousarray(responses, dtype=np.float64)
        self.registry.counter("requests.total").inc(int(arr.size))
        self.registry.histogram("latency.response_ms").record_array(arr)

    def record_module_series(self, played: Sequence, n_devices: int,
                             interval_ms: float) -> None:
        """Compute and fold in the per-module interval series."""
        self.series.merge(module_interval_series(
            played, n_devices, interval_ms))

    # -- QoS hooks --------------------------------------------------------
    def record_qos_report(self, report, tenant: str = "") -> None:
        """Ledger every guarantee violation in a QoS report.

        ``tenant`` defaults to each request's application name (empty
        for single-tenant runs).  Violations incurred on the degraded
        path -- requests that survived a fault (failover, retry, down
        window, slowdown) or failed outright -- are reported
        *distinctly*: they land on the ``faults.qos.*`` counters and
        are ledgered with ``degraded=True``, so operators can separate
        "the scheme broke its promise" from "the hardware did".
        """
        guarantee = report.guarantee_ms
        reg = self.registry
        for pr in report.requests:
            if pr.rejected:
                continue
            if getattr(pr, "failed", False):
                # The request never completed: an unconditional
                # guarantee miss, attributed to the fault layer.
                reg.counter("faults.qos.failed").inc()
                self.ledger.record(tenant or pr.io.app, pr.interval,
                                   guarantee, degraded=True)
                continue
            excess = pr.io.response_ms - guarantee
            if excess > 1e-9:
                if getattr(pr.io, "faulted", False):
                    reg.counter("faults.qos.violations").inc()
                    self.ledger.record(tenant or pr.io.app,
                                       pr.interval, excess,
                                       degraded=True)
                else:
                    reg.counter("qos.violations").inc()
                    self.ledger.record(tenant or pr.io.app,
                                       pr.interval, excess)
        reg.counter("qos.requests").inc(len(report.requests))

    def on_controller(self, event: str, count: int = 1) -> None:
        """One live-controller decision (:mod:`repro.controller`).

        ``event`` is a short slug -- ``boundary``, ``replan``,
        ``delta_applied``, ``delta_deferred``, ``delta_blocked``,
        ``rescue``, ``epsilon_update`` -- landing on the
        ``controller.{event}`` counter.  Controller decisions are
        derived purely from mined patterns and played-request
        timestamps, so the counters live in the engine-compared
        request section.
        """
        self.registry.counter(f"controller.{event}").inc(count)

    def on_sla_observation(self, ok: bool) -> None:
        """One observation fed to a :class:`repro.core.monitor.SLAMonitor`."""
        self.registry.counter("sla.observed").inc()
        if not ok:
            self.registry.counter("sla.violations").inc()

    # -- payload -----------------------------------------------------------
    def to_payload(self) -> Dict[str, object]:
        """Deterministic, picklable export of everything recorded."""
        tracer = self.tracer.to_dict()
        live_opened = tracer.pop("live_opened")
        live_closed = tracer.pop("live_closed")
        return {
            "version": PAYLOAD_VERSION,
            "request": {
                "metrics": self.registry.to_dict(),
                "tracer": tracer,
                "series": self.series.to_dict(),
                "ledger": self.ledger.to_dict(),
            },
            "kernel": {
                "metrics": self.kernel.to_dict(),
                "live_opened": live_opened,
                "live_closed": live_closed,
            },
        }

    def merge_payload(self, payload: Dict[str, object]) -> None:
        """Fold an exported payload into this session.

        The parallel runner calls this once per cell, in submission
        order, so merged artefacts are deterministic regardless of
        worker scheduling.
        """
        version = payload.get("version")
        if version != PAYLOAD_VERSION:
            raise ValueError(
                f"unsupported obs payload version {version!r}")
        request = payload["request"]  # type: ignore[index]
        self.registry.merge_dict(request["metrics"])
        self.tracer.merge_dict(request["tracer"])
        self.series.merge(ModuleSeries.from_dict(request["series"]))
        self.ledger.merge(ViolationLedger.from_dict(request["ledger"]))
        kernel = payload["kernel"]  # type: ignore[index]
        self.kernel.merge_dict(kernel["metrics"])
        self.tracer.live_opened += int(kernel["live_opened"])
        self.tracer.live_closed += int(kernel["live_closed"])
