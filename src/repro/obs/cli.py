"""``python -m repro.obs``: inspect recorded observability artefacts.

Subcommands:

``summarize payload.json``
    Print the compact JSON summary of a recorded payload (as written
    by ``python -m repro.experiments --obs``).

``export payload.json --format chrome|prometheus|csv|summary``
    Re-export a payload in any supported format.

``validate trace.json``
    Schema-check a Chrome ``trace_event`` file (exit 1 on failure).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.obs import export as obs_export

__all__ = ["main"]

_FORMATS = ("summary", "chrome", "prometheus", "csv")


def _load(path: str):
    with open(path, "r", encoding="utf-8") as fh:
        return json.load(fh)


def _render(payload, fmt: str) -> str:
    if fmt == "summary":
        return obs_export.to_json_summary(payload)
    if fmt == "chrome":
        trace = obs_export.to_chrome_trace(payload)
        obs_export.validate_chrome_trace(trace)
        return json.dumps(trace, indent=2, sort_keys=True) + "\n"
    if fmt == "prometheus":
        return obs_export.to_prometheus(payload)
    if fmt == "csv":
        return obs_export.to_csv_series(payload)
    raise ValueError(f"unknown format {fmt!r}")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs",
        description="Inspect repro.obs observability artefacts.")
    sub = parser.add_subparsers(dest="command", required=True)

    p_sum = sub.add_parser("summarize",
                           help="print the JSON summary of a payload")
    p_sum.add_argument("payload", help="recorded obs payload (JSON)")

    p_exp = sub.add_parser("export",
                           help="re-export a payload in another format")
    p_exp.add_argument("payload", help="recorded obs payload (JSON)")
    p_exp.add_argument("--format", choices=_FORMATS, default="summary")
    p_exp.add_argument("-o", "--out", default=None,
                       help="output file (default: stdout)")

    p_val = sub.add_parser("validate",
                           help="schema-check a Chrome trace_event file")
    p_val.add_argument("trace", help="Chrome trace_event JSON file")

    args = parser.parse_args(argv)

    if args.command == "validate":
        try:
            obs_export.validate_chrome_trace(_load(args.trace))
        except (ValueError, json.JSONDecodeError) as exc:
            print(f"INVALID: {exc}", file=sys.stderr)
            return 1
        print(f"OK: {args.trace} is a valid trace_event file")
        return 0

    payload = _load(args.payload)
    if args.command == "summarize":
        sys.stdout.write(_render(payload, "summary"))
        return 0

    text = _render(payload, args.format)
    if args.out:
        Path(args.out).write_text(text, encoding="utf-8")
        print(f"wrote {args.out}")
    else:
        sys.stdout.write(text)
    return 0
