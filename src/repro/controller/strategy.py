"""Pluggable placement strategies for the live controller.

A strategy answers one question at every interval boundary: *given
what the miner just learned, where should data blocks live next?*  The
controller handles everything around it -- streaming the traffic,
folding transactions, budgeting the migration, applying the result --
so a strategy is a single ``propose`` method:

``propose(itemsets, current) -> Optional[MatchResult]``

returning the target placement, or ``None`` for "keep what we have"
(no planning round happens at all).  Strategies must be deterministic:
the same itemsets and current placement must always produce the same
target, because the whole loop sits under the determinism probe.
"""

from __future__ import annotations

from typing import List, Optional

from repro.mining.itemsets import ItemsetCounts
from repro.mining.matching import FIMBlockMatcher, MatchResult

__all__ = ["PlacementStrategy", "StaticPlacement", "FIMReplan"]


class PlacementStrategy:
    """Base class (and interface contract) for placement strategies."""

    def propose(self, itemsets: ItemsetCounts,
                current: MatchResult) -> Optional[MatchResult]:
        """Target placement for the next interval, or ``None`` to
        keep ``current`` unchanged."""
        raise NotImplementedError

    def reset(self) -> None:
        """Forget accumulated state (a fresh run)."""


class StaticPlacement(PlacementStrategy):
    """The baseline: never re-replicate.

    Whatever placement the array started with (usually the all-modulo
    fallback) stays in force for the whole run -- the static stand the
    adaptive loop is measured against in ``experiments/controller.py``.
    """

    def propose(self, itemsets: ItemsetCounts,
                current: MatchResult) -> Optional[MatchResult]:
        return None


class FIMReplan(PlacementStrategy):
    """The paper's loop: re-match from freshly mined patterns.

    With ``history=1`` (default) each boundary matches on the last
    interval's itemsets alone -- exactly the offline
    ``play_workload`` rule, which is what the identity contract and
    the determinism probe assert.  ``history > 1`` keeps a sliding
    window of itemset snapshots and matches on the decay-weighted
    combination (:meth:`~repro.mining.matching.FIMBlockMatcher.\
match_history`), the "longer history" variant of §V-D.
    """

    def __init__(self, matcher: FIMBlockMatcher, history: int = 1,
                 decay: float = 0.5):
        if history < 1:
            raise ValueError("history must be >= 1")
        if not 0 <= decay <= 1:
            raise ValueError("decay must be in [0, 1]")
        self.matcher = matcher
        self.history = history
        self.decay = decay
        self._snapshots: List[ItemsetCounts] = []

    def propose(self, itemsets: ItemsetCounts,
                current: MatchResult) -> Optional[MatchResult]:
        if self.history == 1:
            return self.matcher.match(itemsets)
        self._snapshots.append(itemsets)
        if len(self._snapshots) > self.history:
            self._snapshots.pop(0)
        return self.matcher.match_history(self._snapshots,
                                          decay=self.decay)

    def reset(self) -> None:
        self._snapshots = []
