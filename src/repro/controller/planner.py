"""Re-replication planning: mined patterns -> budgeted placement deltas.

The offline loop (``experiments/common.play_workload``) swaps the whole
data-block -> design-block mapping at every interval boundary: the
matcher's fresh :class:`~repro.mining.matching.MatchResult` simply
replaces the previous one.  A live array cannot do that -- changing a
data block's design block means *re-replicating* the block onto the new
design block's device set, which costs migration bandwidth the array
would rather spend on foreground traffic.

:class:`ReplicationPlanner` closes the gap: it diffs the matcher's
target mapping against the placement currently in force, orders the
resulting :class:`PlacementDelta` moves by mined support (highest
first -- the pairs most likely to recur are re-replicated first, the
paper's Fig 11 persistence argument), and applies at most
``migration_budget`` moves per boundary.  Unfunded moves are *deferred*:
the block keeps its current design block, and the next boundary's diff
picks the move up again if the pattern persists.

With ``migration_budget=None`` (unlimited) and no failed modules the
plan reproduces the offline swap exactly -- ``plan(...).mapping`` *is*
the target :class:`~repro.mining.matching.MatchResult` -- which is the
identity the controller's determinism probe locks down.

Fault awareness (``excluded=`` dead modules, from
:meth:`repro.faults.FaultSchedule.masked_at`):

* a delta is **blocked** when its target design block touches a dead
  module -- the array never re-replicates onto dead hardware;
* a block whose *current* design block has lost every replica device is
  **rescued**: moved (ahead of any pattern-driven delta) to the
  healthiest design block available, even if the matcher did not ask.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Optional, Tuple

from repro.allocation.base import AllocationScheme
from repro.mining.itemsets import ItemsetCounts
from repro.mining.matching import MatchResult

__all__ = ["PlacementDelta", "ReplicationPlan", "ReplicationPlanner",
           "pair_support_by_block"]


def pair_support_by_block(itemsets: ItemsetCounts) -> Dict[int, int]:
    """Each block's strongest mined pair support.

    The planner orders deltas by this value -- a block in a
    high-support pair is the one most worth re-replicating first.
    """
    support: Dict[int, int] = {}
    for a, b, s in itemsets.pairs():
        for blk in (a, b):
            if s > support.get(blk, 0):
                support[blk] = s
    return support


@dataclass(frozen=True)
class PlacementDelta:
    """One data-block move: re-replicate ``block`` onto ``new``.

    ``old`` is the design block the data currently lives on (explicit
    mapping or the modulo fallback); ``support`` is the mined pair
    support that motivated the move (0 for evictions back to the
    modulo fallback and for rescues); ``rescue`` marks moves forced by
    a fully-dead current design block rather than by mining.
    """

    block: int
    old: int
    new: int
    support: int = 0
    rescue: bool = False

    def sort_key(self) -> Tuple[int, int, int]:
        # rescues first, then strongest support, then stable by block
        return (0 if self.rescue else 1, -self.support, self.block)


@dataclass
class ReplicationPlan:
    """Outcome of one planning round (one interval boundary).

    ``applied`` moves fit the migration budget and were folded into
    ``mapping``; ``deferred`` ran out of budget (the block keeps its
    current design block); ``blocked`` would have re-replicated onto
    dead modules and were vetoed.  ``cost`` is the migration spend in
    replica-copy units: each applied move writes ``replication`` new
    copies.
    """

    applied: List[PlacementDelta]
    deferred: List[PlacementDelta]
    blocked: List[PlacementDelta]
    mapping: MatchResult
    cost: int

    @property
    def n_moves(self) -> int:
        return len(self.applied)


class ReplicationPlanner:
    """Diff placements into budgeted, fault-aware migration plans.

    Parameters
    ----------
    allocation:
        Supplies each design block's device set (for the dead-module
        veto) and the replication factor (for migration cost).
    migration_budget:
        Maximum data-block moves applied per planning round;
        ``None`` = unlimited (the offline swap).
    """

    def __init__(self, allocation: AllocationScheme,
                 migration_budget: Optional[int] = None):
        if migration_budget is not None and migration_budget < 0:
            raise ValueError("migration_budget must be >= 0")
        self.allocation = allocation
        self.migration_budget = migration_budget
        self._device_sets = [frozenset(allocation.devices_for(b))
                             for b in range(allocation.n_buckets)]

    # -- fault geometry ----------------------------------------------------
    def _live_devices(self, design_block: int,
                      excluded: FrozenSet[int]) -> FrozenSet[int]:
        return self._device_sets[design_block] - excluded

    def _touches_dead(self, design_block: int,
                      excluded: FrozenSet[int]) -> bool:
        return bool(self._device_sets[design_block] & excluded)

    def _healthiest(self, excluded: FrozenSet[int]) -> int:
        """Deterministic rescue target: the lowest-numbered design
        block with the most live devices (fully-live wins)."""
        best, best_live = 0, -1
        for db in range(self.allocation.n_buckets):
            live = len(self._live_devices(db, excluded))
            if live > best_live:
                best, best_live = db, live
        return best

    # -- planning ----------------------------------------------------------
    def diff(self, target: MatchResult, current: MatchResult,
             supports: Optional[Dict[int, int]] = None,
             ) -> List[PlacementDelta]:
        """The raw move list turning ``current`` into ``target``.

        Blocks the matcher newly places (or re-places) become moves
        with their mined support; blocks the matcher dropped revert to
        the modulo fallback as support-0 evictions.  Blocks whose
        assignment is unchanged produce no move -- re-matching a block
        to the design block it already occupies costs nothing.
        """
        supports = supports or {}
        deltas: List[PlacementDelta] = []
        for block, new in target.mapping.items():
            old = current.design_block_of(block)
            if old != new:
                deltas.append(PlacementDelta(
                    block=block, old=old, new=new,
                    support=int(supports.get(block, 0))))
        for block, old in current.mapping.items():
            if block in target.mapping:
                continue
            fallback = block % target.n_design_blocks
            if old != fallback:
                deltas.append(PlacementDelta(
                    block=block, old=old, new=fallback))
        deltas.sort(key=PlacementDelta.sort_key)
        return deltas

    def plan(self, target: MatchResult, current: MatchResult,
             supports: Optional[Dict[int, int]] = None,
             excluded: FrozenSet[int] = frozenset()) -> ReplicationPlan:
        """One planning round: diff, veto, rescue, budget, apply.

        ``excluded`` is the dead-module set in force at the boundary
        (:meth:`repro.faults.FaultSchedule.masked_at`); the plan never
        re-replicates onto a design block touching it.  With no budget
        and no exclusions the result *is* ``target``.
        """
        excluded = frozenset(excluded)
        if not excluded and self.migration_budget is None:
            deltas = self.diff(target, current, supports)
            cost = len(deltas) * self.allocation.replication
            return ReplicationPlan(applied=deltas, deferred=[],
                                   blocked=[], mapping=target,
                                   cost=cost)

        deltas = self.diff(target, current, supports)
        # Veto moves onto dead hardware; the block stays where it is.
        candidates: List[PlacementDelta] = []
        blocked: List[PlacementDelta] = []
        for d in deltas:
            if excluded and self._touches_dead(d.new, excluded):
                blocked.append(d)
            else:
                candidates.append(d)
        # Rescue blocks stranded on fully-dead design blocks that no
        # surviving candidate move already saves.
        if excluded:
            moved = {d.block for d in candidates}
            rescue_target = self._healthiest(excluded)
            rescues: List[PlacementDelta] = []
            for block, db in sorted(current.mapping.items()):
                if block in moved:
                    continue
                if self._live_devices(db, excluded):
                    continue
                if not self._live_devices(rescue_target, excluded):
                    break  # nowhere live to go; nothing to rescue onto
                rescues.append(PlacementDelta(
                    block=block, old=db, new=rescue_target,
                    rescue=True))
            candidates = rescues + candidates
        # Spend the budget in priority order.
        budget = self.migration_budget
        if budget is None or budget >= len(candidates):
            applied, deferred = candidates, []
        else:
            applied, deferred = candidates[:budget], candidates[budget:]

        mapping = dict(current.mapping)
        for d in applied:
            if d.new == d.block % target.n_design_blocks \
                    and d.block not in target.mapping:
                mapping.pop(d.block, None)  # eviction: back to modulo
            else:
                mapping[d.block] = d.new
        # Matched-block bookkeeping follows the *mining* knowledge --
        # deferral delays data movement, not what the miner learned.
        result = MatchResult(mapping, target.matched_blocks,
                             target.n_design_blocks)
        cost = len(applied) * self.allocation.replication
        return ReplicationPlan(applied=applied, deferred=deferred,
                               blocked=blocked, mapping=result,
                               cost=cost)
