"""The live adaptive-replication controller (closing the loop online).

The paper's loop -- mine frequent block patterns per interval,
re-replicate between intervals -- exists offline in
:func:`repro.experiments.common.play_workload`: all placements are
computed up front and the whole trace is played once.
:class:`ReplicationController` runs the same loop *live*:

1. **stream** -- each trace part is fed into one long-running
   :class:`~repro.flash.driver.OnlineStreamSession`; traffic never
   stops at interval boundaries;
2. **mine** -- requests are folded into
   :class:`~repro.mining.streaming.StreamingTransactions` +
   :class:`~repro.mining.streaming.StreamingFPGrowth` as they are fed,
   so the boundary mining step is a cheap tree walk, provably equal to
   the batch miners on the interval's transactions;
3. **plan** -- the :class:`~repro.controller.strategy.PlacementStrategy`
   proposes a target placement, and the
   :class:`~repro.controller.planner.ReplicationPlanner` diffs it
   against the live placement into budgeted, fault-aware migration
   deltas (never onto dead modules);
4. **apply** -- the new mapping takes effect for the next part's
   traffic mid-stream, and (when adapting) the statistical admission's
   ε is retuned from the observed delayed fraction
   (:class:`repro.core.adaptive.AdaptiveEpsilonController`).

Every boundary decision lands in an :class:`AuditRecord` (and on the
``controller.*`` observability counters), so a recorded run can be
audited delta by delta.

**Determinism contract** (asserted in tests and the ``controller``
probe): with an unlimited migration budget, no faults and the default
:class:`~repro.controller.strategy.FIMReplan` strategy, the controller
reproduces ``play_workload`` *byte-identically* -- same per-request
floats, same match rates -- because the streaming session replays the
offline heap order exactly and streaming mining equals batch mining at
every boundary.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro import obs
from repro.controller.planner import (
    ReplicationPlan,
    ReplicationPlanner,
    pair_support_by_block,
)
from repro.controller.strategy import (
    FIMReplan,
    PlacementStrategy,
    StaticPlacement,
)
from repro.core.adaptive import AdaptiveEpsilonController
from repro.core.qos import QoSFlashArray, QoSReport
from repro.experiments.common import WorkloadRun
from repro.flash.driver import OnlineTracePlayer
from repro.mining.matching import FIMBlockMatcher, MatchResult
from repro.mining.streaming import StreamingFPGrowth, StreamingTransactions
from repro.traces.records import Trace

__all__ = ["ControllerConfig", "AuditRecord", "ControllerReport",
           "ReplicationController"]


@dataclass(frozen=True)
class ControllerConfig:
    """Everything the controller needs to run, in one frozen record.

    Mirrors :func:`~repro.experiments.common.play_workload`'s
    parameters (so the identity contract is a like-for-like
    comparison) plus the live-loop knobs: ``migration_budget`` caps
    data-block moves per boundary and ``adapt_target_delayed_pct``
    switches on ε feedback (statistical mode only).
    """

    n_devices: int = 9
    replication: int = 3
    interval_ms: float = 0.133
    epsilon: float = 0.0
    fim_window_ms: float = 0.133
    min_support: int = 1
    seed: int = 0
    engine: str = "auto"
    admission: str = "counting"
    accesses: Optional[int] = None
    migration_budget: Optional[int] = None
    adapt_target_delayed_pct: Optional[float] = None
    adapt_gain: float = 0.5

    def __post_init__(self):
        if self.min_support < 1:
            raise ValueError("min_support must be >= 1")
        if self.fim_window_ms <= 0:
            raise ValueError("fim_window_ms must be positive")
        if self.adapt_target_delayed_pct is not None \
                and self.epsilon <= 0:
            raise ValueError(
                "adaptive epsilon requires statistical QoS "
                "(epsilon > 0)")

    @classmethod
    def from_slo(cls, slo, **overrides) -> "ControllerConfig":
        """Derive a configuration from a service-level objective.

        Uses :func:`repro.core.planner.plan_configurations` to pick
        the cheapest ``(N, c, M, T)`` meeting ``slo``; keyword
        overrides (``epsilon``, ``migration_budget``, ...) are applied
        on top.
        """
        from repro.core.planner import plan_configurations

        plans = plan_configurations(slo)
        if not plans:
            raise ValueError(f"no feasible configuration for {slo}")
        best = plans[0]
        base = dict(n_devices=best.n_devices,
                    replication=best.replication,
                    interval_ms=best.interval_ms,
                    accesses=best.accesses)
        base.update(overrides)
        return cls(**base)


@dataclass(frozen=True)
class AuditRecord:
    """One interval boundary's decisions, for the audit trail.

    ``part`` is the trace part *about to be played* when the decision
    was taken; ``epsilon`` is the admission ε in force after any
    adaptation; the delta counts describe the planning round (all zero
    for :class:`~repro.controller.strategy.StaticPlacement`).
    """

    part: int
    boundary_ms: float
    n_transactions: int
    n_itemsets: int
    replanned: bool
    deltas_applied: int
    deltas_deferred: int
    deltas_blocked: int
    migration_cost: int
    match_rate: float
    epsilon: float
    excluded: Tuple[int, ...] = ()


@dataclass
class ControllerReport:
    """Everything one live run produces.

    ``report``/``match_rates``/``part_of_request`` carry the exact
    shape of an offline :class:`~repro.experiments.common.WorkloadRun`
    (see :meth:`workload_run`); ``audit`` adds the boundary-by-boundary
    decision ledger unique to the live loop.
    """

    report: QoSReport
    match_rates: List[float]
    part_of_request: List[int]
    audit: List[AuditRecord]

    def workload_run(self) -> WorkloadRun:
        """The offline-comparable view (identity-contract currency)."""
        return WorkloadRun(report=self.report,
                           match_rates=self.match_rates,
                           part_of_request=self.part_of_request)

    @property
    def total_migration_cost(self) -> int:
        return sum(a.migration_cost for a in self.audit)


class ReplicationController:
    """Long-running array service: stream, mine, plan, apply.

    Parameters
    ----------
    config:
        The :class:`ControllerConfig` in force.
    strategy:
        A :class:`~repro.controller.strategy.PlacementStrategy`;
        default :class:`~repro.controller.strategy.FIMReplan` (the
        paper's loop).  :class:`~repro.controller.strategy.\
StaticPlacement` is the do-nothing baseline.
    faults:
        Optional :class:`repro.faults.FaultSchedule`; the planner
        reads its mask at each boundary and never re-replicates onto
        dead modules.
    """

    def __init__(self, config: ControllerConfig,
                 strategy: Optional[PlacementStrategy] = None,
                 faults=None):
        self.config = config
        self.faults = faults
        self.qos = QoSFlashArray(
            n_devices=config.n_devices,
            replication=config.replication,
            interval_ms=config.interval_ms,
            accesses=config.accesses,
            epsilon=config.epsilon,
            seed=config.seed,
            engine=config.engine,
            admission=config.admission,
            faults=faults)
        self.matcher = FIMBlockMatcher(self.qos.allocation)
        self.strategy = strategy if strategy is not None \
            else FIMReplan(self.matcher)
        self.planner = ReplicationPlanner(
            self.qos.allocation,
            migration_budget=config.migration_budget)
        self._adaptive: Optional[AdaptiveEpsilonController] = None
        if config.adapt_target_delayed_pct is not None:
            self._adaptive = AdaptiveEpsilonController(
                config.adapt_target_delayed_pct,
                epsilon0=config.epsilon,
                gain=config.adapt_gain)

    # -- boundary feedback -------------------------------------------------
    @staticmethod
    def _delayed_pct(played, start: int) -> float:
        """Observed delayed percentage over ``played[start:]``."""
        window = played[start:]
        if not window:
            return 0.0
        delayed = sum(1 for pr in window
                      if pr.delayed and not pr.rejected)
        total = sum(1 for pr in window if not pr.rejected)
        return 100.0 * delayed / total if total else 0.0

    def _excluded_at(self, t: float) -> frozenset:
        if self.faults is None:
            return frozenset()
        return self.faults.masked_at(t)

    # -- the loop ----------------------------------------------------------
    def run(self, parts: Sequence[Trace]) -> ControllerReport:
        """Stream ``parts`` through the live loop; close it; report.

        The identity contract: with ``migration_budget=None``, no
        faults and the default strategy this equals
        ``play_workload(parts, ...)`` byte for byte.
        """
        cfg = self.config
        self.strategy.reset()
        session_hook = obs.SESSION if obs.ACTIVE else None
        probs = self.qos.probabilities() if cfg.epsilon > 0 else None
        player = OnlineTracePlayer(
            self.qos.allocation, cfg.interval_ms,
            epsilon=cfg.epsilon, probabilities=probs,
            accesses=self.qos.accesses, params=self.qos.params,
            engine=cfg.engine, admission=cfg.admission,
            faults=self.faults)
        session = player.session()
        miner = StreamingFPGrowth(min_support=cfg.min_support,
                                  max_size=2)
        txns = StreamingTransactions(cfg.fim_window_ms, miner.add)
        match = MatchResult.empty(self.qos.allocation.n_buckets)
        match_rates: List[float] = []
        part_of_request: List[int] = []
        audit: List[AuditRecord] = []
        played_mark = 0
        epsilon = cfg.epsilon
        for part_idx, part in enumerate(parts):
            boundary = float(part.arrival_ms[0]) if len(part) else 0.0
            if part_idx > 0:
                # -- close the previous interval --------------------------
                if session.fast:
                    # Serve everything due before this part's traffic;
                    # the observed delayed fraction below is then real.
                    session.advance(boundary)
                if self._adaptive is not None:
                    observed = self._delayed_pct(session.played,
                                                 played_mark)
                    epsilon = self._adaptive.update(observed)
                    session.admission.epsilon = epsilon
                    if session_hook is not None:
                        session_hook.on_controller("epsilon_update")
                played_mark = len(session.played)
                # -- mine, plan, apply ------------------------------------
                txns.flush()
                itemsets = miner.mine()
                target = self.strategy.propose(itemsets, match)
                excluded = self._excluded_at(boundary)
                if target is not None:
                    plan = self.planner.plan(
                        target, match,
                        supports=pair_support_by_block(itemsets),
                        excluded=excluded)
                    match = plan.mapping
                else:
                    plan = None
                match_rates.append(match.match_rate(part.block))
                audit.append(AuditRecord(
                    part=part_idx, boundary_ms=boundary,
                    n_transactions=miner.n_transactions,
                    n_itemsets=len(itemsets),
                    replanned=plan is not None,
                    deltas_applied=0 if plan is None else
                    len(plan.applied),
                    deltas_deferred=0 if plan is None else
                    len(plan.deferred),
                    deltas_blocked=0 if plan is None else
                    len(plan.blocked),
                    migration_cost=0 if plan is None else plan.cost,
                    match_rate=match_rates[-1],
                    epsilon=epsilon,
                    excluded=tuple(sorted(excluded))))
                if session_hook is not None:
                    session_hook.on_controller("boundary")
                    if plan is not None:
                        session_hook.on_controller("replan")
                        session_hook.on_controller(
                            "delta_applied", len(plan.applied))
                        session_hook.on_controller(
                            "delta_deferred", len(plan.deferred))
                        session_hook.on_controller(
                            "delta_blocked", len(plan.blocked))
                        session_hook.on_controller(
                            "rescue", sum(1 for d in plan.applied
                                          if d.rescue))
                miner.reset()
                txns.reset()
            else:
                match_rates.append(0.0)
            # -- feed the part's traffic under the placement in force -----
            session.feed([float(t) for t in part.arrival_ms],
                         match.map_blocks(part.block))
            part_of_request.extend([part_idx] * len(part))
            reads = part.reads_only()
            for t, b in zip(reads.arrival_ms, reads.block):
                txns.observe(float(t), int(b))
        series, played = session.drain()
        report = QoSReport(series, played, self.qos.guarantee_ms)
        if session_hook is not None:
            session_hook.record_qos_report(report)
        return ControllerReport(report=report, match_rates=match_rates,
                                part_of_request=part_of_request,
                                audit=audit)
