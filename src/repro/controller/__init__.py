"""Live adaptive-replication controller (the paper's loop, online).

Composes the existing pieces -- streaming playback
(:class:`repro.flash.driver.OnlineStreamSession`), streaming mining
(:mod:`repro.mining.streaming`), FIM matching, admission control and
the fault layer -- into one long-running service that mines patterns
per interval and re-replicates between intervals *without stopping the
traffic*.  See :mod:`repro.controller.controller` for the loop,
:mod:`repro.controller.planner` for budgeted fault-aware migration,
:mod:`repro.controller.strategy` for the pluggable placement policies,
and ``docs/controller.md`` for the determinism contract.
"""

from repro.controller.controller import (
    AuditRecord,
    ControllerConfig,
    ControllerReport,
    ReplicationController,
)
from repro.controller.planner import (
    PlacementDelta,
    ReplicationPlan,
    ReplicationPlanner,
    pair_support_by_block,
)
from repro.controller.strategy import (
    FIMReplan,
    PlacementStrategy,
    StaticPlacement,
)

__all__ = [
    "AuditRecord",
    "ControllerConfig",
    "ControllerReport",
    "FIMReplan",
    "PlacementDelta",
    "PlacementStrategy",
    "ReplicationController",
    "ReplicationPlan",
    "ReplicationPlanner",
    "StaticPlacement",
    "pair_support_by_block",
]
