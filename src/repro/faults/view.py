"""Per-module fault view: what one flash module consults while serving.

:class:`repro.flash.module.FlashModule` stays ignorant of schedules and
arrays; it duck-calls this narrow adapter at service time.  The view
also carries the module's monotone read-attempt counter, which indexes
the schedule's deterministic per-operation error draws -- attempt
``k`` on module ``m`` always sees the same uniform, whatever the
interleaving of the event loop.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from repro.faults.models import FaultSchedule, RetryPolicy

__all__ = ["ModuleFaultView"]

_INF = float("inf")


class ModuleFaultView:
    """The slice of a :class:`~repro.faults.models.FaultSchedule` one
    module sees."""

    def __init__(self, schedule: "FaultSchedule", module_id: int):
        self.schedule = schedule
        self.module_id = module_id
        self._events = schedule.events_for(module_id)
        #: monotone read-attempt counter (error-draw index)
        self._attempts = 0

    @property
    def retry(self) -> "RetryPolicy":
        return self.schedule.retry

    @property
    def quiet(self) -> bool:
        """True when no event ever touches this module."""
        return not self._events

    def dead_at(self, t: float) -> bool:
        return self.schedule.is_dead(self.module_id, t)

    def available_from(self, t: float) -> float:
        """Earliest service instant ``>= t`` (``inf`` once dead)."""
        if self.quiet:
            return t
        return self.schedule.available_from(self.module_id, t)

    def slowdown(self, t: float) -> float:
        if self.quiet:
            return 1.0
        return self.schedule.slowdown(self.module_id, t)

    def error_prob(self, t: float) -> float:
        if self.quiet:
            return 0.0
        return self.schedule.error_prob(self.module_id, t)

    def next_error_draw(self) -> float:
        """Consume one deterministic uniform for a read attempt."""
        draw = self.schedule.read_error_draw(self.module_id,
                                             self._attempts)
        self._attempts += 1
        return draw
