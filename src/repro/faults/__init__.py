"""``repro.faults``: deterministic, seed-driven fault injection.

The paper's value proposition is that replicated declustering keeps
QoS promises when modules misbehave; this package supplies the
misbehaviour.  Fault scenarios are either scripted explicitly
(:class:`FaultSchedule`) or drawn from seeded stochastic processes
(:class:`FaultModel`) and materialised before the run, so faulty
simulations stay byte-reproducible: same seed + same fault config =
identical output, enforced by ``python -m repro.check --probe faults``.

Wiring (see :doc:`docs/faults.md </../docs/faults>`):

* :class:`ModuleFaultView` is consulted by the DES flash module --
  crash, down windows, latency degradation, read-error-with-retry;
* the trace players mask dead/down modules out of every candidate set
  (failure-aware retrieval) and fail requests over to surviving
  replicas with retry-and-backoff (:class:`RetryPolicy`);
* configurations with a non-empty schedule automatically fall back
  from the closed-form fast path to the DES
  (:func:`repro.flash.driver.resolve_engine`), mirroring the FTL and
  priority-queue fallbacks, so the healthy fast path is untouched;
* ``repro.obs`` gains ``faults.*`` counters and degraded-mode
  violation accounting in the ledger.
"""

from repro.faults.models import (
    FAULT_KINDS,
    FAULT_SCOPES,
    FaultEvent,
    FaultModel,
    FaultSchedule,
    RetryPolicy,
)
from repro.faults.view import ModuleFaultView

__all__ = [
    "FAULT_KINDS",
    "FAULT_SCOPES",
    "FaultEvent",
    "FaultModel",
    "FaultSchedule",
    "ModuleFaultView",
    "RetryPolicy",
]
