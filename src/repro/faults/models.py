"""Fault models: scripted schedules and seeded stochastic processes.

A *fault schedule* is an immutable, fully-materialised list of fault
events against the modules of one array -- what will go wrong, where,
and when, decided **before** the simulation starts.  Materialising up
front is what keeps faulty runs deterministic: the DES consumes the
schedule read-only, every stochastic choice (including per-operation
read-error draws) is a pure function of ``(seed, module, index)``, and
replaying the same seed and fault config is byte-identical -- enforced
by the ``faults`` determinism probe (``python -m repro.check --probe
faults``).

Four fault kinds cover the NAND failure behaviours the reproduction
models (cf. Copycat's characterisation of real flash: transient
latency variance, per-operation read errors, and outright failures):

``crash``
    The module is permanently dead from ``start`` on.  Queued and
    newly routed requests fail; failure-aware retrieval masks the
    module out of every candidate set.
``down``
    Transient unavailability over ``[start, end)``: the module stops
    serving and resumes afterwards; the driver masks it while down.
``slow``
    Latency degradation over ``[start, end)``: service times are
    multiplied by ``factor`` (heavy-tail spikes are scripted as many
    short ``slow`` windows, e.g. by :class:`FaultModel`).
``read_error``
    Each read served inside ``[start, end)`` fails with probability
    ``prob``; the module retries after a backoff per
    :class:`RetryPolicy`, and exhausted retries fail the request over
    to a surviving replica.

Two front doors:

* :class:`FaultSchedule` -- explicit scripted events (tests,
  reproduction of a specific incident);
* :class:`FaultModel` -- seeded stochastic processes (Poisson fault
  arrivals, exponential durations) that :meth:`~FaultModel.materialize`
  into a schedule.
"""

from __future__ import annotations

import hashlib
import json
import math
from bisect import bisect_right
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

__all__ = ["FaultEvent", "FaultSchedule", "FaultModel", "RetryPolicy",
           "FAULT_KINDS", "FAULT_SCOPES"]

#: the recognised fault kinds, in canonical order
FAULT_KINDS = ("crash", "down", "slow", "read_error")

#: the recognised fault scopes -- ``module`` targets one module of an
#: array, ``array`` targets a whole array inside a cluster
FAULT_SCOPES = ("module", "array")

_INF = float("inf")


@dataclass(frozen=True)
class FaultEvent:
    """One scripted fault against one module.

    ``end`` is exclusive (an event over ``[start, end)``); crashes
    ignore it and last forever.  ``factor`` only applies to ``slow``
    events, ``prob`` only to ``read_error`` events.

    ``scope`` selects the fault domain: ``"module"`` (the default)
    targets module ``module`` of one array, ``"array"`` targets the
    whole array with index ``module`` inside a cluster.  Array-scoped
    events affect *routing only* (``masked_arrays_at``): a request
    dispatched to an array before the fault instant completes
    normally, so killing fewer replicas than a pattern holds never
    fails a read (see ``docs/cluster.md``).
    """

    kind: str
    module: int
    start: float
    end: float = _INF
    factor: float = 1.0
    prob: float = 0.0
    scope: str = "module"

    def __post_init__(self):
        if self.kind not in FAULT_KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r}; "
                             f"choose from {FAULT_KINDS}")
        if self.scope not in FAULT_SCOPES:
            raise ValueError(f"unknown fault scope {self.scope!r}; "
                             f"choose from {FAULT_SCOPES}")
        if self.module < 0:
            raise ValueError("module must be >= 0")
        if self.start < 0:
            raise ValueError("start must be >= 0")
        if self.kind != "crash" and self.end <= self.start:
            raise ValueError(f"{self.kind} window must have end > start")
        if self.kind == "slow" and self.factor <= 0:
            raise ValueError("slow factor must be > 0")
        if self.kind == "read_error" and not 0.0 <= self.prob <= 1.0:
            raise ValueError("read-error prob must be in [0, 1]")

    def active_at(self, t: float) -> bool:
        """True while the event is in force at time ``t``."""
        if self.kind == "crash":
            return t >= self.start
        return self.start <= t < self.end

    def to_list(self) -> List[object]:
        # The scope column is emitted only for array-scoped events so
        # module-only schedules keep their historical serialisation
        # (and therefore byte-identical ``cache_token``s).
        row: List[object] = [self.kind, self.module, self.start,
                             "inf" if self.end == _INF else self.end,
                             self.factor, self.prob]
        if self.scope != "module":
            row.append(self.scope)
        return row

    @classmethod
    def from_list(cls, row: Sequence[object]) -> "FaultEvent":
        kind, module, start, end, factor, prob = row[:6]
        scope = str(row[6]) if len(row) > 6 else "module"
        return cls(kind=str(kind), module=int(module),
                   start=float(start),
                   end=_INF if end == "inf" else float(end),
                   factor=float(factor), prob=float(prob),
                   scope=scope)


@dataclass(frozen=True)
class RetryPolicy:
    """Retry-with-timeout-and-backoff for transient errors.

    A failed read is retried up to ``max_retries`` times; attempt
    ``i`` (0-based) waits ``backoff_ms * growth**i`` before retrying.
    The driver uses the same policy when failing a request over to
    another replica after a module-level failure.
    """

    max_retries: int = 3
    backoff_ms: float = 0.05
    growth: float = 2.0

    def __post_init__(self):
        if self.max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        if self.backoff_ms < 0:
            raise ValueError("backoff_ms must be >= 0")
        if self.growth < 1.0:
            raise ValueError("growth must be >= 1")

    def delay(self, attempt: int) -> float:
        """Backoff before retry number ``attempt`` (0-based)."""
        return self.backoff_ms * self.growth ** attempt

    def to_dict(self) -> Dict[str, float]:
        return {"max_retries": self.max_retries,
                "backoff_ms": self.backoff_ms, "growth": self.growth}


def _uniform_hash(seed: int, module: int, index: int) -> float:
    """Deterministic uniform in [0, 1) from ``(seed, module, index)``.

    Counter-based (no RNG state), so draws do not depend on the order
    in which the simulation asks for them -- the property that makes
    read-error injection replay-identical across engines and runs.
    """
    digest = hashlib.sha256(
        f"{seed}:{module}:{index}".encode("ascii")).digest()
    return int.from_bytes(digest[:8], "big") / 2.0 ** 64


class FaultSchedule:
    """An immutable set of scripted fault events.

    Parameters
    ----------
    events:
        The fault events; stored sorted by ``(start, module, kind)``
        so identical event sets compare and serialise identically.
    n_modules:
        Optional module-count bound for validation.
    seed:
        Seed for the per-operation read-error draws (see
        :meth:`read_error_draw`).
    retry:
        The :class:`RetryPolicy` for read errors and driver failover.
    """

    def __init__(self, events: Iterable[FaultEvent],
                 n_modules: Optional[int] = None, seed: int = 0,
                 retry: Optional[RetryPolicy] = None):
        evs = sorted(events, key=lambda e: (e.start, e.module,
                                            FAULT_KINDS.index(e.kind),
                                            e.end, e.scope))
        if n_modules is not None:
            for e in evs:
                if e.scope == "module" and e.module >= n_modules:
                    raise ValueError(
                        f"event targets module {e.module} but the "
                        f"array has {n_modules} modules")
        self.events: Tuple[FaultEvent, ...] = tuple(evs)
        self.n_modules = n_modules
        self.seed = int(seed)
        self.retry = retry or RetryPolicy()
        # Query structures are keyed per scope: an array-scoped event
        # on id 2 must never leak into module-2 lookups (or vice
        # versa), and each scope gets its own masked-set cache.
        self._by_module: Dict[int, List[FaultEvent]] = {}
        self._by_array: Dict[int, List[FaultEvent]] = {}
        for e in self.events:
            table = (self._by_module if e.scope == "module"
                     else self._by_array)
            table.setdefault(e.module, []).append(e)
        #: earliest crash per module / per array (is_dead in O(1))
        self._crash_at: Dict[int, float] = {}
        self._array_crash_at: Dict[int, float] = {}
        for e in self.events:
            if e.kind == "crash":
                table = (self._crash_at if e.scope == "module"
                         else self._array_crash_at)
                prev = table.get(e.module, _INF)
                if e.start < prev:
                    table[e.module] = e.start
        #: lazily built masked-set change points, one per scope
        #: (see masked_at / masked_arrays_at)
        self._mask_cache: Optional[Tuple[List[float],
                                         List[frozenset]]] = None
        self._array_mask_cache: Optional[Tuple[List[float],
                                               List[frozenset]]] = None

    # -- constructors -----------------------------------------------------
    @classmethod
    def crashes(cls, modules: Iterable[int], at: float = 0.0,
                **kwargs) -> "FaultSchedule":
        """Crash every module in ``modules`` at time ``at``."""
        return cls([FaultEvent("crash", m, at) for m in modules],
                   **kwargs)

    @classmethod
    def none(cls, **kwargs) -> "FaultSchedule":
        """The empty schedule (healthy array)."""
        return cls([], **kwargs)

    # -- basic queries ----------------------------------------------------
    def __len__(self) -> int:
        return len(self.events)

    def __bool__(self) -> bool:
        return bool(self.events)

    @property
    def affected_modules(self) -> Tuple[int, ...]:
        """Modules named by at least one module-scoped event, ascending."""
        return tuple(sorted(self._by_module))

    @property
    def affected_arrays(self) -> Tuple[int, ...]:
        """Arrays named by at least one array-scoped event, ascending."""
        return tuple(sorted(self._by_array))

    def events_for(self, module: int) -> Tuple[FaultEvent, ...]:
        return tuple(self._by_module.get(module, ()))

    def events_for_array(self, array: int) -> Tuple[FaultEvent, ...]:
        return tuple(self._by_array.get(array, ()))

    def is_dead(self, module: int, t: float) -> bool:
        """True once a crash of ``module`` has taken effect."""
        return t >= self._crash_at.get(module, _INF)

    def is_down(self, module: int, t: float) -> bool:
        """True while ``module`` is unavailable (down window or dead)."""
        for e in self._by_module.get(module, ()):
            if e.kind == "crash" and t >= e.start:
                return True
            if e.kind == "down" and e.active_at(t):
                return True
        return False

    def available_from(self, module: int, t: float) -> float:
        """Earliest time ``>= t`` at which ``module`` can serve.

        ``inf`` if the module is (or goes) dead before it ever clears
        its down windows.
        """
        u = t
        events = self._by_module.get(module, ())
        for _ in range(len(events) + 1):
            if self.is_dead(module, u):
                return _INF
            blocked = [e.end for e in events
                       if e.kind == "down" and e.active_at(u)]
            if not blocked:
                return u
            u = max(blocked)
        return u  # pragma: no cover - loop bound covers all windows

    def slowdown(self, module: int, t: float) -> float:
        """Multiplicative service-time factor in force at ``t``."""
        factor = 1.0
        for e in self._by_module.get(module, ()):
            if e.kind == "slow" and e.active_at(t):
                factor *= e.factor
        return factor

    def error_prob(self, module: int, t: float) -> float:
        """Per-read failure probability in force at ``t`` (max rule)."""
        prob = 0.0
        for e in self._by_module.get(module, ()):
            if e.kind == "read_error" and e.active_at(t):
                prob = max(prob, e.prob)
        return prob

    def masked_at(self, t: float) -> frozenset:
        """Modules failure-aware retrieval must avoid at time ``t``
        (dead or inside a down window).

        The masked set only changes at event boundaries (``active_at``
        is right-continuous on ``[start, end)``), so it is precomputed
        per boundary segment once and looked up by bisection -- this
        is the driver's per-dispatch hot path.  Only module-scoped
        events contribute; array-scoped faults have their own cache
        behind :meth:`masked_arrays_at`.
        """
        if self._mask_cache is None:
            self._mask_cache = self._build_mask_cache(
                self._by_module, self.is_down)
        pts, masks = self._mask_cache
        return masks[bisect_right(pts, t)]

    @staticmethod
    def _build_mask_cache(by_id: Dict[int, List[FaultEvent]],
                          is_down) -> Tuple[List[float],
                                            List[frozenset]]:
        """Change-point table for one scope's crash/down events."""
        events = [e for evs in by_id.values() for e in evs]
        pts = sorted({e.start for e in events
                      if e.kind in ("crash", "down")} |
                     {e.end for e in events
                      if e.kind == "down" and e.end != _INF})
        masks = [frozenset()] + [
            frozenset(m for m in by_id if is_down(m, p)) for p in pts]
        return (pts, masks)

    def mask_segments(self) -> Tuple[List[float], List[frozenset]]:
        """``(boundaries, masks)`` backing :meth:`masked_at`.

        ``masked_at(t) == masks[bisect_right(boundaries, t)]`` for every
        ``t``; batch drivers use this to look up the masked set for a
        whole sorted time column with one ``searchsorted`` instead of a
        bisection per request.
        """
        if self._mask_cache is None:
            self.masked_at(0.0)
        return self._mask_cache

    # -- array-scope queries ----------------------------------------------
    def is_array_dead(self, array: int, t: float) -> bool:
        """True once an array-scoped crash of ``array`` took effect."""
        return t >= self._array_crash_at.get(array, _INF)

    def is_array_down(self, array: int, t: float) -> bool:
        """True while array ``array`` is unavailable (down or dead)."""
        for e in self._by_array.get(array, ()):
            if e.kind == "crash" and t >= e.start:
                return True
            if e.kind == "down" and e.active_at(t):
                return True
        return False

    def masked_arrays_at(self, t: float) -> frozenset:
        """Arrays the cluster router must avoid at time ``t``.

        The array-scope analogue of :meth:`masked_at`, backed by its
        own change-point cache so module and array fault IDs can never
        collide (module 2 down does not mask array 2, and vice versa).
        """
        if self._array_mask_cache is None:
            self._array_mask_cache = self._build_mask_cache(
                self._by_array, self.is_array_down)
        pts, masks = self._array_mask_cache
        return masks[bisect_right(pts, t)]

    def array_mask_segments(self) -> Tuple[List[float], List[frozenset]]:
        """``(boundaries, masks)`` backing :meth:`masked_arrays_at`."""
        if self._array_mask_cache is None:
            self.masked_arrays_at(0.0)
        return self._array_mask_cache

    def for_array(self, array: int, offset: int,
                  n_modules: int) -> "FaultSchedule":
        """Restrict to one array of a cluster, rebasing module IDs.

        Module-scoped events with global IDs in ``[offset, offset +
        n_modules)`` are kept and rebased to local IDs; array-scoped
        events are dropped (they act on routing, not playback -- see
        the dispatch-atomic contract in ``docs/cluster.md``).  The
        read-error seed is offset by ``array`` so per-array draws stay
        decorrelated but deterministic.
        """
        local = [FaultEvent(e.kind, e.module - offset, e.start, e.end,
                            e.factor, e.prob)
                 for e in self.events
                 if e.scope == "module"
                 and offset <= e.module < offset + n_modules]
        return FaultSchedule(local, n_modules=n_modules,
                             seed=self.seed + array, retry=self.retry)

    def read_error_draw(self, module: int, index: int) -> float:
        """The deterministic uniform for read attempt ``index`` on
        ``module`` -- compare against :meth:`error_prob`."""
        return _uniform_hash(self.seed, module, index)

    # -- serialisation ----------------------------------------------------
    def to_dict(self) -> Dict[str, object]:
        return {
            "events": [e.to_list() for e in self.events],
            "n_modules": self.n_modules,
            "seed": self.seed,
            "retry": self.retry.to_dict(),
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "FaultSchedule":
        retry = data.get("retry") or {}
        return cls(
            [FaultEvent.from_list(row)
             for row in data.get("events", ())],  # type: ignore[union-attr]
            n_modules=data.get("n_modules"),  # type: ignore[arg-type]
            seed=int(data.get("seed", 0)),  # type: ignore[arg-type]
            retry=RetryPolicy(**retry))  # type: ignore[arg-type]

    def cache_token(self) -> str:
        """Canonical JSON identity, for experiment-cell cache keys."""
        return json.dumps(self.to_dict(), sort_keys=True,
                          separators=(",", ":"))

    def __eq__(self, other) -> bool:
        return isinstance(other, FaultSchedule) and \
            self.cache_token() == other.cache_token()

    def __hash__(self) -> int:
        return hash(self.cache_token())

    def __repr__(self) -> str:
        return (f"FaultSchedule({len(self.events)} events, "
                f"modules={list(self.affected_modules)}, "
                f"seed={self.seed})")


@dataclass(frozen=True)
class FaultModel:
    """Seeded stochastic fault process, materialised before the run.

    Every rate is per module per millisecond of simulated horizon;
    event counts are Poisson, window durations exponential, event
    times uniform over the horizon.  :meth:`materialize` derives one
    independent substream per ``(seed, module)`` via
    ``numpy.random.SeedSequence``, so the resulting
    :class:`FaultSchedule` is a pure function of ``(self, n_modules,
    horizon_ms, seed)`` -- the determinism probe replays it twice and
    demands identity.
    """

    crash_prob: float = 0.0          #: P(module crashes inside horizon)
    down_rate: float = 0.0           #: down windows / module / ms
    down_mean_ms: float = 1.0        #: mean down-window length
    slow_rate: float = 0.0           #: slow windows / module / ms
    slow_mean_ms: float = 1.0        #: mean slow-window length
    slow_factor: float = 4.0         #: service-time multiplier
    error_rate: float = 0.0          #: read-error windows / module / ms
    error_mean_ms: float = 1.0       #: mean error-window length
    error_prob: float = 0.5          #: per-read failure prob in window
    retry: RetryPolicy = field(default_factory=RetryPolicy)

    def __post_init__(self):
        if not 0.0 <= self.crash_prob <= 1.0:
            raise ValueError("crash_prob must be in [0, 1]")
        for name in ("down_rate", "slow_rate", "error_rate"):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be >= 0")
        for name in ("down_mean_ms", "slow_mean_ms", "error_mean_ms"):
            if getattr(self, name) <= 0:
                raise ValueError(f"{name} must be > 0")

    def materialize(self, n_modules: int, horizon_ms: float,
                    seed: int = 0) -> FaultSchedule:
        """Draw one concrete :class:`FaultSchedule`."""
        import numpy as np

        if n_modules < 1:
            raise ValueError("need at least one module")
        if horizon_ms <= 0:
            raise ValueError("horizon_ms must be > 0")
        events: List[FaultEvent] = []
        streams = np.random.SeedSequence(seed).spawn(n_modules)
        for m in range(n_modules):
            rng = np.random.default_rng(streams[m])
            # Fixed draw order per module: crash, down, slow, error.
            if rng.random() < self.crash_prob:
                events.append(FaultEvent(
                    "crash", m, float(rng.uniform(0, horizon_ms))))
            for kind, rate, mean in (
                    ("down", self.down_rate, self.down_mean_ms),
                    ("slow", self.slow_rate, self.slow_mean_ms),
                    ("read_error", self.error_rate,
                     self.error_mean_ms)):
                count = int(rng.poisson(rate * horizon_ms))
                starts = np.sort(rng.uniform(0, horizon_ms, size=count))
                lengths = rng.exponential(mean, size=count)
                for start, length in zip(starts, lengths):
                    end = float(start) + max(float(length), 1e-6)
                    if kind == "slow":
                        events.append(FaultEvent(
                            kind, m, float(start), end,
                            factor=self.slow_factor))
                    elif kind == "read_error":
                        events.append(FaultEvent(
                            kind, m, float(start), end,
                            prob=self.error_prob))
                    else:
                        events.append(FaultEvent(
                            kind, m, float(start), end))
        return FaultSchedule(events, n_modules=n_modules, seed=seed,
                             retry=self.retry)
