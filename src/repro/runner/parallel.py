"""Deterministic parallel execution of experiment cells.

An experiment decomposes into *cells*: independent, picklable pieces
of work (one ``k`` of the Figure 4 curve, one ``(workload, epsilon)``
point of Figure 10, one Table III row/scheme pair).  The runner
executes cells serially or across a process pool; results are
identical either way because

* every cell is a module-level function of explicit parameters -- no
  shared state, no ambient RNG;
* per-cell seeds are derived in the *parent* at submission time via
  :func:`spawn_seeds` (``numpy.random.SeedSequence.spawn``), so what a
  cell computes never depends on which worker runs it or in what
  order;
* results are mapped back by submission index, not completion order.

The ``repro.check`` determinism probe ``runner`` double-runs a
jobs=1-vs-jobs=2 comparison to enforce this bit-for-bit.
"""

from __future__ import annotations

import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro import obs
from repro.runner.cache import ResultCache

__all__ = ["Cell", "ParallelRunner", "spawn_seeds"]


def spawn_seeds(root_seed: int, n: int) -> List[int]:
    """``n`` independent per-cell seeds derived from ``root_seed``.

    Uses ``SeedSequence.spawn`` so the per-cell streams are
    statistically independent *and* a pure function of
    ``(root_seed, index)`` -- the derivation never touches global
    state, which is what makes serial and parallel runs agree.
    """
    children = np.random.SeedSequence(root_seed).spawn(n)
    return [int(c.generate_state(1, dtype=np.uint32)[0])
            for c in children]


@dataclass(frozen=True)
class Cell:
    """One independent unit of experiment work.

    ``fn`` must be a module-level callable and ``args``/``kwargs``
    picklable (they cross the process boundary); the return value must
    be picklable plain data, not a live DES object graph.
    """

    experiment: str
    name: str
    fn: Callable[..., Any]
    args: Tuple[Any, ...] = ()
    kwargs: Dict[str, Any] = field(default_factory=dict)
    #: set False for cells whose value is a *measurement* (wall time,
    #: memory) rather than a pure function of the parameters
    cacheable: bool = True

    @property
    def fn_ref(self) -> str:
        return f"{self.fn.__module__}.{self.fn.__qualname__}"

    def params(self) -> Dict[str, Any]:
        """Canonical parameter mapping for cache keying."""
        return {"args": list(self.args), "kwargs": dict(self.kwargs)}


def _execute(fn: Callable[..., Any], args: Tuple[Any, ...],
             kwargs: Dict[str, Any]) -> Any:
    """Worker entry point (module-level so it pickles)."""
    return fn(*args, **kwargs)


def _execute_observed(fn: Callable[..., Any], args: Tuple[Any, ...],
                      kwargs: Dict[str, Any],
                      ) -> Tuple[Any, Dict[str, Any]]:
    """Observed worker entry point: run the cell inside its own obs
    session and ship the payload back with the result.

    Used for serial execution too, so serial and pooled runs fold the
    exact same per-cell payloads into the parent session.
    """
    with obs.observed() as session:
        value = fn(*args, **kwargs)
    return value, session.to_payload()


class ParallelRunner:
    """Run cells serially (``jobs=1``) or across a process pool.

    Parameters
    ----------
    jobs:
        Worker process count; ``1`` runs in-process (no pool, no
        pickling round-trip) but computes the *same* results.
    cache:
        Optional :class:`~repro.runner.cache.ResultCache`; cached
        cells are answered without executing anything.

    Attributes
    ----------
    timings:
        ``(experiment, cell_name, seconds, from_cache)`` per cell of
        the most recent :meth:`run` calls (appended across calls;
        consumed by ``tools/bench_runner.py``).
    """

    def __init__(self, jobs: int = 1,
                 cache: Optional[ResultCache] = None):
        if jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        self.jobs = jobs
        self.cache = cache
        self.timings: List[Tuple[str, str, float, bool]] = []

    def run(self, cells: Sequence[Cell]) -> List[Any]:
        """Execute ``cells``; returns results in submission order.

        With observability enabled in the caller, every cell runs
        inside its own :func:`repro.obs.observed` session (serially or
        in a worker process) and the per-cell payloads are folded into
        the caller's session **in submission order** -- merged metrics
        are deterministic regardless of worker scheduling.  The result
        cache is bypassed while observing: a cached value carries no
        observability payload.
        """
        observing = obs.ACTIVE
        results: List[Any] = [None] * len(cells)
        pending: List[Tuple[int, Cell, Optional[str]]] = []
        for i, cell in enumerate(cells):
            key = None
            if self.cache is not None and cell.cacheable \
                    and not observing:
                key = self.cache.key(cell.experiment, cell.name,
                                     cell.fn_ref, cell.params())
                hit, value = self.cache.get(key)
                if hit:
                    results[i] = value
                    self.timings.append(
                        (cell.experiment, cell.name, 0.0, True))
                    continue
            pending.append((i, cell, key))
        if not pending:
            return results
        worker = _execute_observed if observing else _execute
        if self.jobs == 1 or len(pending) == 1:
            for i, cell, key in pending:
                t0 = time.perf_counter()  # repro: allow[wall-clock]
                value = worker(cell.fn, cell.args, dict(cell.kwargs))
                self._finish(results, i, cell, key, value,
                             time.perf_counter() - t0,  # repro: allow[wall-clock]
                             observing)
        else:
            workers = min(self.jobs, len(pending))
            with ProcessPoolExecutor(max_workers=workers) as pool:
                submitted = []
                for i, cell, key in pending:
                    t0 = time.perf_counter()  # repro: allow[wall-clock]
                    fut = pool.submit(worker, cell.fn, cell.args,
                                      dict(cell.kwargs))
                    submitted.append((i, cell, key, t0, fut))
                for i, cell, key, t0, fut in submitted:
                    value = fut.result()
                    self._finish(results, i, cell, key, value,
                                 time.perf_counter() - t0,  # repro: allow[wall-clock]
                                 observing)
        return results

    def _finish(self, results: List[Any], i: int, cell: Cell,
                key: Optional[str], value: Any, seconds: float,
                observing: bool = False) -> None:
        if observing:
            value, payload = value
            if obs.ACTIVE:
                obs.SESSION.merge_payload(payload)
        results[i] = value
        if key is not None:
            self.cache.put(key, value)
        self.timings.append((cell.experiment, cell.name, seconds, False))
