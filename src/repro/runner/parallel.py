"""Deterministic parallel execution of experiment cells.

An experiment decomposes into *cells*: independent, picklable pieces
of work (one ``k`` of the Figure 4 curve, one ``(workload, epsilon)``
point of Figure 10, one Table III row/scheme pair).  The runner
executes cells serially or across a process pool; results are
identical either way because

* every cell is a module-level function of explicit parameters -- no
  shared state, no ambient RNG;
* per-cell seeds are derived in the *parent* at submission time via
  :func:`spawn_seeds` (``numpy.random.SeedSequence.spawn``), so what a
  cell computes never depends on which worker runs it or in what
  order;
* results are mapped back by submission index, not completion order.

The ``repro.check`` determinism probe ``runner`` double-runs a
jobs=1-vs-jobs=2 comparison to enforce this bit-for-bit.

Scaling notes (what makes the pool actually pay off):

* **Persistent workers** -- pools are process-wide and reused across
  :meth:`ParallelRunner.run` calls, so worker spawn and module import
  cost is paid once per process, not once per experiment.
* **Chunked submission** -- cells ship to workers in contiguous
  chunks (one pickling round-trip per chunk, not per cell); per-cell
  wall times are measured inside the worker and shipped back with the
  values.
* **Shared-memory ndarrays** -- large arrays in results move through
  ``multiprocessing.shared_memory`` instead of the result pipe; only
  a small handle is pickled.
* **Auto-degrade** -- ``jobs`` above the host's CPU count is clamped,
  and workloads too cheap to amortize dispatch overhead (estimated
  from a serial probe of the first cell) run serially, each with a
  one-line logged notice.  Degrading never changes results, only
  where cells run.
"""

from __future__ import annotations

import atexit
import logging
import math
import os
import time
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro import obs
from repro.runner.cache import ResultCache

__all__ = ["Cell", "ParallelRunner", "spawn_seeds"]

logger = logging.getLogger("repro.runner")

#: ndarrays at or above this many bytes travel via shared memory
SHM_MIN_BYTES = 1 << 16
#: estimated per-run pool dispatch overhead (seconds) used by the
#: auto-degrade heuristic: if the serially-probed estimate of the
#: remaining work is below this, the pool cannot win
MIN_PARALLEL_SECONDS = 0.25


def spawn_seeds(root_seed: int, n: int) -> List[int]:
    """``n`` independent per-cell seeds derived from ``root_seed``.

    Uses ``SeedSequence.spawn`` so the per-cell streams are
    statistically independent *and* a pure function of
    ``(root_seed, index)`` -- the derivation never touches global
    state, which is what makes serial and parallel runs agree.
    """
    children = np.random.SeedSequence(root_seed).spawn(n)
    return [int(c.generate_state(1, dtype=np.uint32)[0])
            for c in children]


@dataclass(frozen=True)
class Cell:
    """One independent unit of experiment work.

    ``fn`` must be a module-level callable and ``args``/``kwargs``
    picklable (they cross the process boundary); the return value must
    be picklable plain data, not a live DES object graph.
    """

    experiment: str
    name: str
    fn: Callable[..., Any]
    args: Tuple[Any, ...] = ()
    kwargs: Dict[str, Any] = field(default_factory=dict)
    #: set False for cells whose value is a *measurement* (wall time,
    #: memory) rather than a pure function of the parameters
    cacheable: bool = True

    @property
    def fn_ref(self) -> str:
        return f"{self.fn.__module__}.{self.fn.__qualname__}"

    def params(self) -> Dict[str, Any]:
        """Canonical parameter mapping for cache keying."""
        return {"args": list(self.args), "kwargs": dict(self.kwargs)}


# -- persistent worker pools ----------------------------------------------

_POOLS: Dict[int, ProcessPoolExecutor] = {}


def _pool(workers: int) -> ProcessPoolExecutor:
    """The process-wide pool for ``workers``, created on first use.

    Reusing pools across runs is most of the scaling win: worker
    spawn + interpreter warm-up is paid once per process lifetime.
    """
    pool = _POOLS.get(workers)
    if pool is None:
        pool = ProcessPoolExecutor(max_workers=workers)
        _POOLS[workers] = pool
    return pool


def _discard_pool(workers: int) -> None:
    pool = _POOLS.pop(workers, None)
    if pool is not None:
        pool.shutdown(wait=False, cancel_futures=True)


@atexit.register
def _shutdown_pools() -> None:  # pragma: no cover - process teardown
    for workers in list(_POOLS):
        _discard_pool(workers)


# -- shared-memory result transport ---------------------------------------

class _ShmArray:
    """Picklable handle to an ndarray parked in shared memory."""

    __slots__ = ("name", "dtype", "shape")

    def __init__(self, name: str, dtype: str, shape: Tuple[int, ...]):
        self.name = name
        self.dtype = dtype
        self.shape = shape

    def __getstate__(self):
        return (self.name, self.dtype, self.shape)

    def __setstate__(self, state):
        self.name, self.dtype, self.shape = state


def _shm_supported() -> bool:
    try:
        from multiprocessing import shared_memory  # noqa: F401
        return True
    except ImportError:  # pragma: no cover - py<3.8 only
        return False


def _encode_result(value: Any) -> Any:
    """Recursively move large ndarrays into shared memory.

    Returns a structurally identical value with big arrays replaced
    by :class:`_ShmArray` handles; the parent reconstructs (and
    unlinks) them in :func:`_decode_result`.  Small arrays and
    non-array values pickle as-is.
    """
    if isinstance(value, np.ndarray) and \
            value.nbytes >= SHM_MIN_BYTES and _shm_supported():
        from multiprocessing import shared_memory

        arr = np.ascontiguousarray(value)
        shm = shared_memory.SharedMemory(create=True, size=arr.nbytes)
        try:
            view = np.ndarray(arr.shape, dtype=arr.dtype,
                              buffer=shm.buf)
            view[...] = arr
            handle = _ShmArray(shm.name, arr.dtype.str, arr.shape)
        finally:
            shm.close()  # parent unlinks after reattaching
        try:
            # Ownership moves to the parent (which unlinks); without
            # this the creator's resource tracker warns at exit about
            # a segment that is already gone.
            from multiprocessing import resource_tracker

            resource_tracker.unregister(shm._name, "shared_memory")
        except Exception:  # pragma: no cover - tracker internals
            pass
        return handle
    if isinstance(value, tuple):
        return tuple(_encode_result(v) for v in value)
    if isinstance(value, list):
        return [_encode_result(v) for v in value]
    if isinstance(value, dict):
        return {k: _encode_result(v) for k, v in value.items()}
    return value


def _decode_result(value: Any) -> Any:
    """Reattach :class:`_ShmArray` handles and release their blocks."""
    if isinstance(value, _ShmArray):
        from multiprocessing import shared_memory

        shm = shared_memory.SharedMemory(name=value.name)
        try:
            out = np.ndarray(value.shape, dtype=np.dtype(value.dtype),
                             buffer=shm.buf).copy()
        finally:
            shm.close()
            shm.unlink()
        return out
    if isinstance(value, tuple):
        return tuple(_decode_result(v) for v in value)
    if isinstance(value, list):
        return [_decode_result(v) for v in value]
    if isinstance(value, dict):
        return {k: _decode_result(v) for k, v in value.items()}
    return value


# -- worker entry points ---------------------------------------------------

def _execute(fn: Callable[..., Any], args: Tuple[Any, ...],
             kwargs: Dict[str, Any]) -> Any:
    """In-process cell execution."""
    return fn(*args, **kwargs)


def _execute_observed(fn: Callable[..., Any], args: Tuple[Any, ...],
                      kwargs: Dict[str, Any],
                      ) -> Tuple[Any, Dict[str, Any]]:
    """In-process cell execution inside its own obs session.

    Used for serial execution too, so serial and pooled runs fold the
    exact same per-cell payloads into the parent session.
    """
    with obs.observed() as session:
        value = fn(*args, **kwargs)
    return value, session.to_payload()


def _execute_chunk(items: List[Tuple[Callable[..., Any],
                                     Tuple[Any, ...],
                                     Dict[str, Any]]],
                   observing: bool,
                   ) -> List[Tuple[Any, Optional[Dict[str, Any]],
                                   float]]:
    """Worker entry point: run a contiguous chunk of cells.

    One pickling round-trip carries the whole chunk; each entry comes
    back as ``(encoded_value, obs_payload_or_None, seconds)``.
    """
    out = []
    for fn, args, kwargs in items:
        t0 = time.perf_counter()  # repro: allow[wall-clock]
        if observing:
            value, payload = _execute_observed(fn, args, kwargs)
        else:
            value, payload = _execute(fn, args, kwargs), None
        seconds = time.perf_counter() - t0  # repro: allow[wall-clock]
        out.append((_encode_result(value), payload, seconds))
    return out


class ParallelRunner:
    """Run cells serially (``jobs=1``) or across a persistent pool.

    Parameters
    ----------
    jobs:
        Worker process count; ``1`` runs in-process (no pool, no
        pickling round-trip) but computes the *same* results.  Values
        above the host CPU count are clamped (with a logged notice).
    cache:
        Optional :class:`~repro.runner.cache.ResultCache`; cached
        cells are answered without executing anything.
    auto_degrade:
        When True (default), workloads too cheap to amortize pool
        dispatch run serially instead, with a logged notice.  The
        determinism probes and benches pass False to force the pool.

    Attributes
    ----------
    timings:
        ``(experiment, cell_name, seconds, from_cache)`` per cell of
        the most recent :meth:`run` calls (appended across calls;
        consumed by ``tools/bench_runner.py``).
    notices:
        One-line degrade decisions from the most recent runs (also
        logged on the ``repro.runner`` logger).
    """

    def __init__(self, jobs: int = 1,
                 cache: Optional[ResultCache] = None,
                 auto_degrade: bool = True):
        if jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        self.jobs = jobs
        self.cache = cache
        self.auto_degrade = auto_degrade
        self.timings: List[Tuple[str, str, float, bool]] = []
        self.notices: List[str] = []

    # -- degrade decisions -------------------------------------------------

    def _notice(self, message: str) -> None:
        self.notices.append(message)
        logger.info(message)

    def _effective_jobs(self, n_pending: int) -> int:
        """Clamp ``jobs`` to the host and the work list."""
        jobs = self.jobs
        cpus = os.cpu_count() or 1
        if self.auto_degrade and jobs > cpus:
            self._notice(
                f"runner: requested jobs={jobs} exceeds {cpus} "
                f"available CPUs; degrading to jobs={cpus}")
            jobs = cpus
        return min(jobs, n_pending)

    # -- execution ---------------------------------------------------------

    def run(self, cells: Sequence[Cell]) -> List[Any]:
        """Execute ``cells``; returns results in submission order.

        With observability enabled in the caller, every cell runs
        inside its own :func:`repro.obs.observed` session (serially or
        in a worker process) and the per-cell payloads are folded into
        the caller's session **in submission order** -- merged metrics
        are deterministic regardless of worker scheduling.  The result
        cache is bypassed while observing: a cached value carries no
        observability payload.
        """
        observing = obs.ACTIVE
        results: List[Any] = [None] * len(cells)
        pending: List[Tuple[int, Cell, Optional[str]]] = []
        for i, cell in enumerate(cells):
            key = None
            if self.cache is not None and cell.cacheable \
                    and not observing:
                key = self.cache.key(cell.experiment, cell.name,
                                     cell.fn_ref, cell.params())
                hit, value = self.cache.get(key)
                if hit:
                    results[i] = value
                    self.timings.append(
                        (cell.experiment, cell.name, 0.0, True))
                    continue
            pending.append((i, cell, key))
        if not pending:
            return results
        jobs = self._effective_jobs(len(pending))
        if jobs <= 1:
            self._run_serial(results, pending, observing)
            return results
        if self.auto_degrade:
            # Serial probe: the first cell runs in-process; if it
            # suggests the remaining work is too cheap to amortize
            # pool dispatch, stay serial.
            i, cell, key = pending[0]
            seconds = self._run_one(results, i, cell, key, observing)
            rest = pending[1:]
            if not rest:
                return results
            estimate = seconds * len(rest)
            if estimate < MIN_PARALLEL_SECONDS:
                self._notice(
                    f"runner: estimated {estimate:.3f}s of remaining "
                    f"work ({len(rest)} cells at ~{seconds:.4f}s) is "
                    f"too cheap to amortize pool dispatch; running "
                    f"serially")
                self._run_serial(results, rest, observing)
                return results
            pending = rest
        self._run_pool(results, pending, observing, jobs)
        return results

    def _run_one(self, results: List[Any], i: int, cell: Cell,
                 key: Optional[str], observing: bool) -> float:
        worker = _execute_observed if observing else _execute
        t0 = time.perf_counter()  # repro: allow[wall-clock]
        value = worker(cell.fn, cell.args, dict(cell.kwargs))
        seconds = time.perf_counter() - t0  # repro: allow[wall-clock]
        self._finish(results, i, cell, key, value, seconds, observing)
        return seconds

    def _run_serial(self, results: List[Any],
                    pending: Sequence[Tuple[int, Cell, Optional[str]]],
                    observing: bool) -> None:
        for i, cell, key in pending:
            self._run_one(results, i, cell, key, observing)

    def _run_pool(self, results: List[Any],
                  pending: Sequence[Tuple[int, Cell, Optional[str]]],
                  observing: bool, jobs: int) -> None:
        """Chunked submission to the persistent pool.

        Contiguous chunks keep submission order trivially
        reconstructable; several chunks per worker smooth over uneven
        cell costs.
        """
        chunk_size = max(1, math.ceil(len(pending) / (jobs * 4)))
        chunks = [pending[a:a + chunk_size]
                  for a in range(0, len(pending), chunk_size)]
        payloads = [
            [(cell.fn, cell.args, dict(cell.kwargs))
             for _, cell, _ in chunk]
            for chunk in chunks]
        try:
            pool = _pool(jobs)
            futures = [pool.submit(_execute_chunk, payload, observing)
                       for payload in payloads]
            outcomes = [f.result() for f in futures]
        except BrokenProcessPool:
            # A worker died (OOM, signal): discard the pool and fall
            # back to a correct-but-serial pass over this work list.
            _discard_pool(jobs)
            self._notice(
                "runner: worker pool broke mid-run; re-running the "
                "work list serially")
            self._run_serial(results, pending, observing)
            return
        # Fold in submission order: chunks are contiguous slices of
        # `pending`, so iterating them in order restores it.
        for chunk, outcome in zip(chunks, outcomes):
            for (i, cell, key), (value, payload, seconds) in zip(
                    chunk, outcome):
                value = _decode_result(value)
                if observing and payload is not None:
                    value = (value, payload)
                self._finish(results, i, cell, key, value, seconds,
                             observing)

    def _finish(self, results: List[Any], i: int, cell: Cell,
                key: Optional[str], value: Any, seconds: float,
                observing: bool = False) -> None:
        if observing:
            value, payload = value
            if obs.ACTIVE:
                obs.SESSION.merge_payload(payload)
        results[i] = value
        if key is not None:
            self.cache.put(key, value)
        self.timings.append((cell.experiment, cell.name, seconds, False))
