"""Parallel experiment engine: cells, process fan-out, result cache.

``repro.runner`` executes experiment *cells* -- independent picklable
units of work -- either serially or across a
``concurrent.futures.ProcessPoolExecutor``, with per-cell seeds
derived deterministically in the parent
(:func:`~repro.runner.parallel.spawn_seeds`) so results are
byte-identical at any ``jobs`` count, and an optional
content-addressed on-disk cache keyed by cell identity and a
source-tree fingerprint (:mod:`repro.runner.cache`).

See docs/performance.md for the design discussion and measured
numbers, and ``tools/bench_runner.py`` for the benchmark harness.
"""

from repro.runner.cache import ResultCache, source_fingerprint
from repro.runner.parallel import Cell, ParallelRunner, spawn_seeds

__all__ = ["Cell", "ParallelRunner", "ResultCache",
           "source_fingerprint", "spawn_seeds"]
