"""Content-addressed on-disk cache for experiment cell results.

A *cell* (see :mod:`repro.runner.parallel`) is a pure function of its
parameters and seed, so its result can be cached across processes and
sessions.  Keys are sha256 digests over the canonical JSON of the
cell's identity -- experiment name, cell name, fully-qualified
function, parameters, a fingerprint of the whole ``repro`` source
tree, and the process-level runtime switches (sanitizers, kernels,
admission kernel)
-- so any code change invalidates every entry at once (cheap and
safe: correctness never depends on a partial-invalidation heuristic)
and results computed under one runtime mode never satisfy another.

Entries live under ``.benchmarks/cache/<2-char prefix>/<digest>.pkl``
(pickle payloads, written atomically via rename).  The directory is
disposable; delete it to force recomputation.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
from pathlib import Path
from typing import Any, Dict, Optional, Tuple

__all__ = ["ResultCache", "source_fingerprint", "runtime_token"]

#: process-wide memo: fingerprinting walks every source file, and the
#: tree cannot change mid-run in a meaningful way
_FINGERPRINTS: Dict[str, str] = {}


def source_fingerprint(package_root: Optional[Path] = None,
                       refresh: bool = False) -> str:
    """Digest of every ``*.py`` under the ``repro`` package.

    The digest covers relative paths and file contents, so moving,
    editing, adding or deleting any source file changes it.
    """
    if package_root is None:
        import repro

        package_root = Path(repro.__file__).parent
    root = Path(package_root)
    memo_key = str(root)
    if not refresh and memo_key in _FINGERPRINTS:
        return _FINGERPRINTS[memo_key]
    digest = hashlib.sha256()
    for path in sorted(root.rglob("*.py")):
        digest.update(path.relative_to(root).as_posix().encode())
        digest.update(b"\0")
        digest.update(hashlib.sha256(path.read_bytes()).digest())
    out = digest.hexdigest()
    _FINGERPRINTS[memo_key] = out
    return out


def runtime_token() -> Dict[str, bool]:
    """Process-level switches that change what a cell computes.

    Sanitizers rewire the simulation with checking wrappers and the
    kernel switch selects between solver implementations; both claim
    byte-identical *results*, but a cache must not take that on faith
    -- a bug in either mode would otherwise leak results across modes
    and mask itself.  Read lazily so runtime toggles
    (``sanitizers.enable()``, ``kernels.disabled()``) take effect.
    """
    from repro.check import sanitizers
    from repro.flash import admitpath
    from repro.graph import kernels

    return {"sanitizers": bool(sanitizers.ACTIVE),
            "kernels": bool(kernels.ENABLED),
            "admission_kernel": bool(admitpath.ENABLED)}


def _canonical(payload: Any) -> str:
    """Stable JSON rendering for hashing (sorted keys, repr fallback)."""
    return json.dumps(payload, sort_keys=True, separators=(",", ":"),
                      default=repr)


class ResultCache:
    """Pickle-backed content-addressed result store.

    Parameters
    ----------
    root:
        Cache directory; defaults to ``.benchmarks/cache`` under the
        current working directory.
    fingerprint:
        Source-tree fingerprint mixed into every key; computed from
        the installed ``repro`` package when omitted.
    """

    def __init__(self, root: Optional[Path] = None,
                 fingerprint: Optional[str] = None):
        self.root = Path(root) if root is not None \
            else Path(".benchmarks") / "cache"
        self.fingerprint = fingerprint or source_fingerprint()
        self.hits = 0
        self.misses = 0

    def key(self, experiment: str, name: str, fn_ref: str,
            params: Dict[str, Any]) -> str:
        """Content address of one cell result."""
        return hashlib.sha256(_canonical({
            "experiment": experiment,
            "cell": name,
            "fn": fn_ref,
            "params": params,
            "source": self.fingerprint,
            "runtime": runtime_token(),
        }).encode("utf-8")).hexdigest()

    def _path(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.pkl"

    def get(self, key: str) -> Tuple[bool, Any]:
        """``(hit, value)``; unreadable or corrupt entries are misses."""
        path = self._path(key)
        try:
            payload = path.read_bytes()
            value = pickle.loads(payload)
        except (OSError, pickle.UnpicklingError, EOFError,
                AttributeError, ImportError):
            self.misses += 1
            return False, None
        self.hits += 1
        return True, value

    def put(self, key: str, value: Any) -> None:
        """Store ``value`` atomically (write-to-temp + rename)."""
        path = self._path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_name(f"{path.name}.{os.getpid()}.tmp")
        tmp.write_bytes(pickle.dumps(value, protocol=4))
        tmp.replace(path)

    # -- maintenance -----------------------------------------------------
    def entries(self) -> list:
        """All ``(path, size_bytes, mtime)`` entries, oldest first.

        Stale ``.tmp`` leftovers from interrupted writes count too --
        pruning should sweep them up.
        """
        rows = []
        if not self.root.is_dir():
            return rows
        for path in self.root.rglob("*.pkl*"):
            try:
                stat = path.stat()
            except OSError:
                continue
            rows.append((path, stat.st_size, stat.st_mtime))
        rows.sort(key=lambda r: (r[2], str(r[0])))
        return rows

    def size_bytes(self) -> int:
        """Total bytes currently stored."""
        return sum(size for _, size, _ in self.entries())

    def prune(self, max_bytes: int = 0) -> Dict[str, int]:
        """Evict oldest entries until at most ``max_bytes`` remain.

        ``max_bytes=0`` clears the cache entirely.  Eviction is by
        modification time (oldest first; path as the tie-break), so
        recently validated results survive.  Missing files are
        ignored -- concurrent runs may prune the same tree.
        """
        if max_bytes < 0:
            raise ValueError("max_bytes must be >= 0")
        rows = self.entries()
        total = sum(size for _, size, _ in rows)
        removed = 0
        removed_bytes = 0
        for path, size, _ in rows:
            if total <= max_bytes:
                break
            try:
                path.unlink()
            except OSError:
                continue
            total -= size
            removed += 1
            removed_bytes += size
        return {"removed": removed, "removed_bytes": removed_bytes,
                "kept_bytes": total}
