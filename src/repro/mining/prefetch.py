"""Rule-driven prefetching study.

An extension on top of the FIM layer: mine interval ``i-1``, derive
single-block association rules, and during interval ``i`` *prefetch*
each trigger's consequent into a small TTL cache.  The score is the
fraction of requests served from the cache -- a direct measure of how
much predictive power the mined pairs carry (high for TPC-E-like hot
sets, low for Exchange-like mail traffic, mirroring Figure 11).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

from repro.mining.apriori import apriori
from repro.mining.rules import derive_rules, prefetch_table
from repro.mining.transactions import transactions_from_trace
from repro.traces.records import Trace

__all__ = ["PrefetchStats", "simulate_prefetching"]


@dataclass
class PrefetchStats:
    """Outcome of one prefetching run."""

    hits: int = 0
    misses: int = 0
    prefetches: int = 0
    #: prefetched blocks that expired unused
    wasted: int = 0

    @property
    def total(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.total if self.total else 0.0

    @property
    def accuracy(self) -> float:
        """Fraction of prefetches that were used before expiring."""
        used = self.prefetches - self.wasted
        return used / self.prefetches if self.prefetches else 0.0


def simulate_prefetching(parts: Sequence[Trace],
                         window_ms: float = 0.133,
                         ttl_ms: float = 1.0,
                         min_confidence: float = 0.6,
                         min_support: int = 2) -> PrefetchStats:
    """Replay ``parts`` with previous-interval rule prefetching.

    The cache maps block -> expiry time; each request for a trigger
    block inserts its rule consequent.  A request is a *hit* when its
    block sits unexpired in the cache (whereupon the entry is consumed).
    """
    if ttl_ms <= 0:
        raise ValueError("ttl_ms must be positive")
    stats = PrefetchStats()
    table: Dict[int, int] = {}
    cache: Dict[int, float] = {}
    for part_idx, part in enumerate(parts):
        for t, blk in zip(part.arrival_ms, part.block):
            t, blk = float(t), int(blk)
            expiry = cache.pop(blk, None)
            if expiry is not None and expiry >= t:
                stats.hits += 1
            else:
                if expiry is not None:
                    stats.wasted += 1
                stats.misses += 1
            hint = table.get(blk)
            if hint is not None and hint != blk:
                if hint not in cache:
                    stats.prefetches += 1
                cache[hint] = t + ttl_ms
        # anything still cached at the interval boundary was never used
        stats.wasted += len(cache)
        cache.clear()
        # mine this interval for the next one
        txns = transactions_from_trace(part, window_ms)
        rules = derive_rules(apriori(txns, min_support, max_size=2),
                             min_confidence)
        table = prefetch_table(rules)
    return stats
