"""FP-growth (Han, Pei & Yin, 2000) -- pattern growth without candidates.

Transactions are compressed into an FP-tree (items ordered by
descending frequency share prefixes); frequent itemsets are mined by
recursively building conditional trees, never generating candidate
sets.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

from repro.mining.itemsets import ItemsetCounts

__all__ = ["fpgrowth"]

Transaction = FrozenSet[int]


class _Node:
    __slots__ = ("item", "count", "parent", "children", "link")

    def __init__(self, item: Optional[int], parent: Optional["_Node"]):
        self.item = item
        self.count = 0
        self.parent = parent
        self.children: Dict[int, "_Node"] = {}
        self.link: Optional["_Node"] = None


class _Tree:
    def __init__(self):
        self.root = _Node(None, None)
        self.heads: Dict[int, _Node] = {}
        self.tails: Dict[int, _Node] = {}

    def insert(self, items: Sequence[int], count: int) -> None:
        node = self.root
        for item in items:
            child = node.children.get(item)
            if child is None:
                child = _Node(item, node)
                node.children[item] = child
                if item in self.tails:
                    self.tails[item].link = child
                else:
                    self.heads[item] = child
                self.tails[item] = child
            child.count += count
            node = child

    def prefix_paths(self, item: int) -> List[Tuple[List[int], int]]:
        """Conditional pattern base of ``item``."""
        paths = []
        node = self.heads.get(item)
        while node is not None:
            path: List[int] = []
            up = node.parent
            while up is not None and up.item is not None:
                path.append(up.item)
                up = up.parent
            if path:
                paths.append((path[::-1], node.count))
            node = node.link
        return paths


def _build(weighted: Sequence[Tuple[Sequence[int], int]],
           min_support: int) -> Tuple[_Tree, Dict[int, int]]:
    counts: Dict[int, int] = defaultdict(int)
    for items, w in weighted:
        for item in items:
            counts[item] += w
    frequent = {i: c for i, c in counts.items() if c >= min_support}
    order = {item: (-c, item) for item, c in frequent.items()}
    tree = _Tree()
    for items, w in weighted:
        kept = sorted((i for i in items if i in frequent),
                      key=order.__getitem__)
        if kept:
            tree.insert(kept, w)
    return tree, frequent


def _mine(tree: _Tree, frequent: Dict[int, int], suffix: Tuple[int, ...],
          min_support: int, max_size: int,
          result: Dict[FrozenSet[int], int]) -> None:
    for item, support in sorted(frequent.items()):
        itemset = frozenset(suffix + (item,))
        result[itemset] = support
        if len(itemset) >= max_size:
            continue
        base = tree.prefix_paths(item)
        subtree, sub_frequent = _build(base, min_support)
        if sub_frequent:
            _mine(subtree, sub_frequent, tuple(sorted(itemset)),
                  min_support, max_size, result)


def fpgrowth(transactions: Sequence[Transaction], min_support: int = 1,
             max_size: int = 2) -> ItemsetCounts:
    """Mine frequent itemsets up to ``max_size`` items via FP-growth.

    Produces exactly the same itemsets and supports as
    :func:`repro.mining.apriori.apriori`.
    """
    if min_support < 1:
        raise ValueError("min_support must be >= 1")
    if max_size < 1:
        raise ValueError("max_size must be >= 1")
    txns = [frozenset(t) for t in transactions]
    weighted = [(sorted(t), 1) for t in txns]
    tree, frequent = _build(weighted, min_support)
    result: Dict[FrozenSet[int], int] = {}
    _mine(tree, frequent, (), min_support, max_size, result)
    return ItemsetCounts(result, len(txns), min_support)
