"""Streaming FP-growth: fold transactions in, mine at any prefix.

The offline loop mines each interval with a fresh batch run
(:func:`repro.mining.fpgrowth.fpgrowth` over the interval's
transactions).  The live controller (:mod:`repro.controller`) cannot
afford to keep raw transactions around, so this module provides the
incremental twin: :class:`StreamingFPGrowth` folds transactions into a
canonical prefix tree one at a time, and :meth:`~StreamingFPGrowth.mine`
produces -- at *any* prefix of the stream -- exactly the itemsets and
supports the batch miner would report for the transactions folded so
far.  The identity is structural, not approximate: mining re-derives a
weighted transaction database from the prefix tree (multiset-equal to
the folded stream) and runs it through the batch miner's own build/mine
machinery, so the result is the same ``ItemsetCounts`` object the
offline loop computes.  The equality is enforced by a hypothesis
property over random stream prefixes and by the ``controller``
determinism probe.

The prefix tree is ordered by item id (a canonical order independent of
frequencies), which keeps :meth:`~StreamingFPGrowth.add` O(|t| log |t|)
and makes the fold order-sensitive only in memory layout, never in the
mined result.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Optional, Tuple

from repro.mining.fpgrowth import _build, _mine, _Node
from repro.mining.itemsets import ItemsetCounts

__all__ = ["StreamingFPGrowth", "StreamingTransactions"]

Transaction = FrozenSet[int]


class StreamingFPGrowth:
    """Incremental FP-growth over a transaction stream.

    Parameters
    ----------
    min_support:
        Minimum absolute support applied at mining time (folding keeps
        every item: a rare item may become frequent later in the
        stream, so pruning at fold time would break prefix identity).
    max_size:
        Largest itemset size mined (the paper's matcher needs 2).
    """

    def __init__(self, min_support: int = 1, max_size: int = 2):
        if min_support < 1:
            raise ValueError("min_support must be >= 1")
        if max_size < 1:
            raise ValueError("max_size must be >= 1")
        self.min_support = min_support
        self.max_size = max_size
        self._root = _Node(None, None)
        self._n_transactions = 0
        self._n_nodes = 0

    @property
    def n_transactions(self) -> int:
        """Transactions folded in since construction / last reset."""
        return self._n_transactions

    @property
    def n_nodes(self) -> int:
        """Prefix-tree size (the miner's memory footprint driver)."""
        return self._n_nodes

    def add(self, transaction: Iterable[int]) -> None:
        """Fold one transaction into the prefix tree.

        Duplicate items collapse (transactions are sets, as in
        :func:`repro.mining.transactions.transactions_from_arrays`);
        an empty transaction still counts toward ``n_transactions``,
        exactly as the batch miner's denominator does.
        """
        items = sorted(set(int(i) for i in transaction))
        self._n_transactions += 1
        node = self._root
        for item in items:
            child = node.children.get(item)
            if child is None:
                child = _Node(item, node)
                node.children[item] = child
                self._n_nodes += 1
            child.count += 1
            node = child

    def add_many(self, transactions: Iterable[Iterable[int]]) -> None:
        for t in transactions:
            self.add(t)

    def reset(self) -> None:
        """Drop all folded transactions (an interval boundary)."""
        self._root = _Node(None, None)
        self._n_transactions = 0
        self._n_nodes = 0

    def _weighted_paths(self) -> List[Tuple[List[int], int]]:
        """The folded stream as a weighted transaction database.

        Each tree node where ``count - sum(children.count) > 0`` marks
        transactions that *end* there; the root-to-node path with that
        weight is one weighted transaction.  The resulting database is
        multiset-equal to the folded stream (dedup by shared prefix),
        which is what makes the mining identity exact rather than
        approximate.
        """
        weighted: List[Tuple[List[int], int]] = []
        stack: List[Tuple[_Node, List[int]]] = [(self._root, [])]
        while stack:
            node, path = stack.pop()
            terminal = node.count - sum(
                c.count for c in node.children.values())
            if node.item is not None and terminal > 0:
                weighted.append((path, terminal))
            for item in sorted(node.children, reverse=True):
                child = node.children[item]
                stack.append((child, path + [item]))
        return weighted

    def mine(self, min_support: Optional[int] = None,
             max_size: Optional[int] = None) -> ItemsetCounts:
        """Frequent itemsets of the folded prefix.

        Identical -- itemsets *and* supports -- to
        ``fpgrowth(folded_transactions, min_support, max_size)``; the
        weighted database reconstructed from the prefix tree feeds the
        batch miner's own build/mine pipeline.
        """
        min_support = self.min_support if min_support is None \
            else min_support
        max_size = self.max_size if max_size is None else max_size
        if min_support < 1:
            raise ValueError("min_support must be >= 1")
        if max_size < 1:
            raise ValueError("max_size must be >= 1")
        weighted = self._weighted_paths()
        tree, frequent = _build(weighted, min_support)
        result: Dict[FrozenSet[int], int] = {}
        _mine(tree, frequent, (), min_support, max_size, result)
        return ItemsetCounts(result, self._n_transactions, min_support)


class StreamingTransactions:
    """Incremental twin of :func:`~repro.mining.transactions.\
transactions_from_arrays`.

    Folds ``(arrival_ms, block)`` pairs (arrival-ordered, reads only --
    the caller filters) into ``window_ms`` transactions and pushes each
    *completed* window into a sink, typically
    :meth:`StreamingFPGrowth.add`.  Windows are aligned to the first
    arrival seen since construction / the last reset, empty windows
    produce no transaction and duplicate blocks collapse -- the exact
    batch semantics, so a flush after the last arrival yields the same
    transaction list the batch builder returns for the same slice.
    """

    def __init__(self, window_ms: float, sink) -> None:
        if window_ms <= 0:
            raise ValueError("window_ms must be positive")
        self.window_ms = window_ms
        self._sink = sink
        self._base: Optional[float] = None
        self._window_idx = 0
        self._current: set = set()
        self._n_emitted = 0

    @property
    def n_emitted(self) -> int:
        """Completed transactions pushed to the sink so far."""
        return self._n_emitted

    def observe(self, arrival_ms: float, block: int) -> None:
        """Fold one request; emits the previous window if it closed."""
        if self._base is None:
            self._base = float(arrival_ms)
        win = int((float(arrival_ms) - self._base)
                  / self.window_ms + 1e-9)
        if win != self._window_idx and self._current:
            self._emit()
        self._window_idx = win
        self._current.add(int(block))

    def flush(self) -> None:
        """Emit the trailing (still-open) window, if any."""
        if self._current:
            self._emit()

    def reset(self) -> None:
        """Forget the alignment base and any open window
        (a mining-interval boundary: each interval's windows re-align
        to that interval's first arrival, as the offline per-interval
        batch build does)."""
        self._base = None
        self._window_idx = 0
        self._current = set()

    def _emit(self) -> None:
        self._sink(frozenset(self._current))
        self._current = set()
        self._n_emitted += 1
