"""FIM-based matching of data blocks to design blocks (paper §IV-A).

The design supports a limited number of design blocks (36 for the
(9,3,1) design) while the storage system has many more data blocks.
The matcher maps data blocks onto design blocks so that *frequently
co-requested* data blocks land on **different** design blocks --
maximising the chance of parallel retrieval -- using the frequent pairs
mined from the previous interval.  Data blocks not seen by FIM fall
back to ``dataBlockNumber % numberOfDesignBlocks``.

Beyond the paper's "different design blocks" rule, the matcher prefers
design blocks whose *device sets* overlap least with the neighbours'
(two distinct design blocks can still share a device; avoiding that
too further reduces serialisation).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Sequence, Set, Tuple

from repro.allocation.base import AllocationScheme
from repro.mining.itemsets import ItemsetCounts

__all__ = ["FIMBlockMatcher", "MatchResult"]


@dataclass
class MatchResult:
    """Outcome of one matching round.

    Attributes
    ----------
    mapping:
        Explicit data-block -> design-block assignments from FIM.
    matched_blocks:
        Data blocks that appeared in the FIM output (Figure 11 counts
        how many of the *next* interval's requests hit this set).
    n_design_blocks:
        Modulo base for the fallback rule.
    """

    mapping: Dict[int, int]
    matched_blocks: FrozenSet[int]
    n_design_blocks: int

    def design_block_of(self, data_block: int) -> int:
        """Mapped design block, falling back to the modulo rule."""
        got = self.mapping.get(int(data_block))
        if got is not None:
            return got
        return int(data_block) % self.n_design_blocks

    def map_blocks(self, data_blocks: Iterable[int]) -> List[int]:
        return [self.design_block_of(b) for b in data_blocks]

    def match_rate(self, data_blocks: Sequence[int]) -> float:
        """Fraction of ``data_blocks`` covered by the FIM mapping.

        This is the paper's Figure 11 metric: the percentage of blocks
        in the current interval that were matched by mining the
        previous one.
        """
        if len(data_blocks) == 0:
            return 0.0
        hits = sum(1 for b in data_blocks
                   if int(b) in self.matched_blocks)
        return hits / len(data_blocks)

    @classmethod
    def empty(cls, n_design_blocks: int) -> "MatchResult":
        """The first-interval result: nothing mined yet, all modulo."""
        return cls({}, frozenset(), n_design_blocks)


class FIMBlockMatcher:
    """Greedy conflict-avoiding matcher driven by mined pairs.

    Parameters
    ----------
    allocation:
        Supplies the design-block count and, for the device-overlap
        preference, each design block's device set.
    """

    def __init__(self, allocation: AllocationScheme):
        self.allocation = allocation
        self.n_design_blocks = allocation.n_buckets
        self._device_sets = [frozenset(allocation.devices_for(b))
                             for b in range(self.n_design_blocks)]

    def match_history(self, itemset_history: Sequence[ItemsetCounts],
                      decay: float = 0.5) -> MatchResult:
        """Match using several intervals of mining history.

        The paper notes "longer history can be used for better matching
        of the design blocks to the data blocks" (§V-D).  Supports from
        older intervals are combined with exponential ``decay`` (most
        recent interval last in the sequence, weight 1; one older,
        weight ``decay``; and so on), then matched as usual.
        """
        if not itemset_history:
            return MatchResult.empty(self.n_design_blocks)
        if not 0 <= decay <= 1:
            raise ValueError("decay must be in [0, 1]")
        combined: Dict[FrozenSet[int], float] = {}
        n_txns = 0
        for age, itemsets in enumerate(reversed(list(itemset_history))):
            weight = decay ** age
            if weight == 0:
                break
            n_txns += itemsets.n_transactions
            for itemset, count in itemsets.items():
                if len(itemset) == 2:
                    combined[itemset] = combined.get(itemset, 0.0) \
                        + weight * count
        # round weighted supports up so every surviving pair stays >= 1
        weighted = ItemsetCounts(
            {s: max(1, int(round(c))) for s, c in combined.items()},
            n_transactions=n_txns, min_support=1)
        return self.match(weighted)

    def match(self, itemsets: ItemsetCounts) -> MatchResult:
        """Assign design blocks given mined pair supports.

        Pairs are processed by descending support; each data block gets
        the design block that (1) differs from every already-assigned
        neighbour's design block and (2) overlaps their device sets
        least, with a rotating tie-break to spread load.
        """
        pairs = itemsets.pairs()
        neighbours: Dict[int, Set[int]] = {}
        for a, b, _support in pairs:
            neighbours.setdefault(a, set()).add(b)
            neighbours.setdefault(b, set()).add(a)

        mapping: Dict[int, int] = {}
        cursor = 0  # rotating start for tie-breaking
        for a, b, _support in pairs:
            for blk in (a, b):
                if blk not in mapping:
                    mapping[blk] = self._choose(blk, neighbours, mapping,
                                                cursor)
                    cursor += 1
        return MatchResult(mapping, frozenset(mapping),
                           self.n_design_blocks)

    def _choose(self, blk: int, neighbours: Dict[int, Set[int]],
                mapping: Dict[int, int], cursor: int) -> int:
        taken: Set[int] = set()
        neighbour_devices: Set[int] = set()
        for other in neighbours.get(blk, ()):
            db = mapping.get(other)
            if db is not None:
                taken.add(db)
                neighbour_devices |= self._device_sets[db]
        n = self.n_design_blocks
        best, best_score = blk % n, None
        for off in range(n):
            cand = (cursor + off) % n
            if cand in taken:
                continue
            overlap = len(self._device_sets[cand] & neighbour_devices)
            score = (overlap, off)
            if best_score is None or score < best_score:
                best, best_score = cand, score
                if overlap == 0:
                    break
        return best
