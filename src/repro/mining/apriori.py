"""Apriori (Agrawal & Srikant, 1996) -- level-wise itemset mining.

The algorithm family the paper uses through Bodon's
``fim_apriori-lowmem``.  Level ``k`` candidates are joins of frequent
``(k-1)``-itemsets whose every ``(k-1)``-subset is frequent; support is
counted in one pass per level.

The implementation is memory-lean in the same spirit as the paper's
"lowmem" variant: candidate counting uses per-transaction intersection
against the frequent-item vocabulary rather than materialising a
candidate hash tree.
"""

from __future__ import annotations

from collections import defaultdict
from itertools import combinations
from typing import Dict, FrozenSet, List, Sequence, Set

from repro.mining.itemsets import ItemsetCounts

__all__ = ["apriori"]

Transaction = FrozenSet[int]


def _frequent_items(transactions: Sequence[Transaction],
                    min_support: int) -> Dict[FrozenSet[int], int]:
    counts: Dict[int, int] = defaultdict(int)
    for t in transactions:
        for item in t:
            counts[item] += 1
    return {frozenset((i,)): c for i, c in counts.items()
            if c >= min_support}


def _candidates(level: List[FrozenSet[int]], k: int) -> Set[FrozenSet[int]]:
    """Join step + prune step for level ``k``."""
    prev = set(level)
    out: Set[FrozenSet[int]] = set()
    # Join: two (k-1)-sets sharing k-2 items.
    by_prefix: Dict[FrozenSet[int], List[FrozenSet[int]]] = defaultdict(list)
    for s in level:
        items = sorted(s)
        by_prefix[frozenset(items[:-1])].append(s)
    for group in by_prefix.values():
        for a, b in combinations(group, 2):
            cand = a | b
            if len(cand) != k:
                continue
            # Prune: every (k-1)-subset must be frequent.
            if all(frozenset(sub) in prev
                   for sub in combinations(cand, k - 1)):
                out.add(cand)
    return out


def apriori(transactions: Sequence[Transaction], min_support: int = 1,
            max_size: int = 2) -> ItemsetCounts:
    """Mine frequent itemsets up to ``max_size`` items.

    Parameters
    ----------
    transactions:
        The transaction database (iterables of hashable ints).
    min_support:
        Minimum absolute support (paper Table IV uses 1 and 3).
    max_size:
        Largest itemset size; the paper's matcher needs ``2``.
    """
    if min_support < 1:
        raise ValueError("min_support must be >= 1")
    if max_size < 1:
        raise ValueError("max_size must be >= 1")
    txns = [frozenset(t) for t in transactions]
    result: Dict[FrozenSet[int], int] = {}
    level_counts = _frequent_items(txns, min_support)
    result.update(level_counts)
    k = 2
    while k <= max_size and level_counts:
        if k == 2:
            # The level-2 join of frequent singletons is *every* pair
            # and the prune step is vacuous, so materialising the
            # candidate set costs O(|vocab|^2) for nothing; counting
            # the pairs observed in the data gives the same result.
            cands: Set[FrozenSet[int]] = set()
        else:
            cands = _candidates(list(level_counts), k)
            if not cands:
                break
        counts: Dict[FrozenSet[int], int] = defaultdict(int)
        vocab = set()
        for s in level_counts:
            vocab |= s
        for t in txns:
            items = t & vocab
            if len(items) < k:
                continue
            if k == 2:
                for pair in combinations(sorted(items), 2):
                    counts[frozenset(pair)] += 1
            else:
                for cand in cands:
                    if cand <= items:
                        counts[cand] += 1
        level_counts = {s: c for s, c in counts.items()
                        if c >= min_support}
        result.update(level_counts)
        k += 1
    return ItemsetCounts(result, len(txns), min_support)
