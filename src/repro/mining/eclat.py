"""Eclat (Zaki, 2000) -- vertical tid-list itemset mining.

Each item carries the set of transaction ids containing it; the support
of an itemset is the size of the intersection of its items' tid-lists.
The search is a depth-first walk over the prefix tree of frequent
itemsets, intersecting as it descends.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Sequence, Set, Tuple

from repro.mining.itemsets import ItemsetCounts

__all__ = ["eclat"]

Transaction = FrozenSet[int]


def eclat(transactions: Sequence[Transaction], min_support: int = 1,
          max_size: int = 2) -> ItemsetCounts:
    """Mine frequent itemsets up to ``max_size`` items (vertical layout).

    Produces exactly the same itemsets and supports as
    :func:`repro.mining.apriori.apriori`.
    """
    if min_support < 1:
        raise ValueError("min_support must be >= 1")
    if max_size < 1:
        raise ValueError("max_size must be >= 1")
    txns = [frozenset(t) for t in transactions]

    tidlists: Dict[int, Set[int]] = {}
    for tid, t in enumerate(txns):
        for item in t:
            tidlists.setdefault(item, set()).add(tid)

    result: Dict[FrozenSet[int], int] = {}
    frequent_items: List[Tuple[int, Set[int]]] = sorted(
        ((item, tids) for item, tids in tidlists.items()
         if len(tids) >= min_support),
        key=lambda kv: kv[0])
    for item, tids in frequent_items:
        result[frozenset((item,))] = len(tids)

    def descend(prefix: Tuple[int, ...], prefix_tids: Set[int],
                tail: List[Tuple[int, Set[int]]]) -> None:
        if len(prefix) >= max_size:
            return
        for i, (item, tids) in enumerate(tail):
            inter = prefix_tids & tids
            if len(inter) < min_support:
                continue
            new_prefix = prefix + (item,)
            result[frozenset(new_prefix)] = len(inter)
            descend(new_prefix, inter, tail[i + 1:])

    for i, (item, tids) in enumerate(frequent_items):
        descend((item,), tids, frequent_items[i + 1:])

    return ItemsetCounts(result, len(txns), min_support)
