"""Shared itemset-mining types and the result container."""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Tuple

__all__ = ["ItemsetCounts"]

Itemset = FrozenSet[int]


class ItemsetCounts:
    """Frequent itemsets with their support counts.

    A thin mapping ``frozenset -> count`` with convenience accessors
    used by the matcher and the cross-algorithm equivalence tests.
    """

    def __init__(self, counts: Dict[Itemset, int],
                 n_transactions: int, min_support: int):
        self._counts = dict(counts)
        self.n_transactions = n_transactions
        self.min_support = min_support

    def support(self, itemset: Iterable[int]) -> int:
        """Absolute support of ``itemset`` (0 if not frequent)."""
        return self._counts.get(frozenset(itemset), 0)

    def of_size(self, k: int) -> Dict[Itemset, int]:
        """Frequent itemsets with exactly ``k`` items."""
        return {s: c for s, c in self._counts.items() if len(s) == k}

    def pairs(self) -> List[Tuple[int, int, int]]:
        """Size-2 itemsets as sorted ``(a, b, support)`` triples,
        ordered by descending support (ties by items)."""
        rows = [(min(s), max(s), c) for s, c in self.of_size(2).items()]
        rows.sort(key=lambda r: (-r[2], r[0], r[1]))
        return rows

    def items(self):
        return self._counts.items()

    def as_dict(self) -> Dict[Itemset, int]:
        return dict(self._counts)

    def __len__(self) -> int:
        return len(self._counts)

    def __contains__(self, itemset) -> bool:
        return frozenset(itemset) in self._counts

    def __eq__(self, other) -> bool:
        if not isinstance(other, ItemsetCounts):
            return NotImplemented
        return self._counts == other._counts

    def __repr__(self) -> str:
        return (f"<ItemsetCounts {len(self)} itemsets over "
                f"{self.n_transactions} transactions "
                f"(min_support={self.min_support})>")
