"""Frequent itemset mining and FIM-based block matching (paper §IV-A).

Implements the substrate the paper takes from ``fim_apriori-lowmem``:

* :mod:`~repro.mining.transactions` -- turning a trace into
  transactions (requests within a ``T`` window form one transaction),
* :mod:`~repro.mining.apriori` / :mod:`~repro.mining.eclat` /
  :mod:`~repro.mining.fpgrowth` -- the three classic FIM algorithm
  families (§IV-A cites exactly these); they produce identical
  itemsets, which the test-suite exploits as a cross-check,
* :mod:`~repro.mining.streaming` -- incremental FP-growth for the live
  controller (:mod:`repro.controller`), provably identical to the
  batch miners at every stream prefix,
* :mod:`~repro.mining.matching` -- mapping data blocks to design
  blocks so that frequently co-requested blocks land on different
  design blocks, with the ``block % n_design_blocks`` fallback.
"""

from repro.mining.apriori import apriori
from repro.mining.eclat import eclat
from repro.mining.fpgrowth import fpgrowth
from repro.mining.itemsets import ItemsetCounts
from repro.mining.matching import FIMBlockMatcher, MatchResult
from repro.mining.streaming import StreamingFPGrowth, StreamingTransactions
from repro.mining.transactions import transactions_from_trace

__all__ = [
    "FIMBlockMatcher",
    "ItemsetCounts",
    "MatchResult",
    "StreamingFPGrowth",
    "StreamingTransactions",
    "apriori",
    "eclat",
    "fpgrowth",
    "transactions_from_trace",
]
