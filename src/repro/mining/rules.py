"""Association rules from frequent itemsets (paper §IV-A).

The paper describes FIM output in association-rule terms ("x customers
who bought item1 also bought item2"); the matcher only needs the raw
pairs, but rules carry direction and *confidence*, which the
prefetching study uses: a rule ``A -> B`` with confidence 0.9 says 90 %
of transactions containing A also contain B -- a strong prefetch hint.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations
from typing import Dict, FrozenSet, List, Tuple

from repro.mining.itemsets import ItemsetCounts

__all__ = ["AssociationRule", "derive_rules"]


@dataclass(frozen=True)
class AssociationRule:
    """A rule ``antecedent -> consequent`` with its statistics."""

    antecedent: FrozenSet[int]
    consequent: FrozenSet[int]
    support: int
    confidence: float

    def __post_init__(self):
        if self.antecedent & self.consequent:
            raise ValueError("antecedent and consequent must be disjoint")
        if not 0 <= self.confidence <= 1:
            raise ValueError("confidence must be in [0, 1]")

    def __str__(self) -> str:
        lhs = ",".join(map(str, sorted(self.antecedent)))
        rhs = ",".join(map(str, sorted(self.consequent)))
        return (f"{{{lhs}}} -> {{{rhs}}} "
                f"(supp={self.support}, conf={self.confidence:.2f})")


def derive_rules(itemsets: ItemsetCounts,
                 min_confidence: float = 0.5) -> List[AssociationRule]:
    """All rules meeting ``min_confidence`` from mined itemsets.

    For every frequent itemset ``I`` with |I| >= 2 and every non-empty
    proper subset ``A``: confidence(``A -> I\\A``) = supp(I)/supp(A).
    The antecedent's support must itself be present in the mined
    result (guaranteed by anti-monotonicity when mining was complete).

    Rules are returned sorted by descending confidence, then support.
    """
    if not 0 <= min_confidence <= 1:
        raise ValueError("min_confidence must be in [0, 1]")
    rules: List[AssociationRule] = []
    for itemset, supp in itemsets.items():
        if len(itemset) < 2:
            continue
        items = sorted(itemset)
        for r in range(1, len(items)):
            for antecedent in combinations(items, r):
                a = frozenset(antecedent)
                supp_a = itemsets.support(a)
                if supp_a <= 0:
                    continue
                conf = supp / supp_a
                if conf >= min_confidence:
                    rules.append(AssociationRule(
                        antecedent=a,
                        consequent=itemset - a,
                        support=supp,
                        confidence=min(1.0, conf)))
    rules.sort(key=lambda r: (-r.confidence, -r.support,
                              tuple(sorted(r.antecedent))))
    return rules


def prefetch_table(rules: List[AssociationRule]) -> Dict[int, int]:
    """Best single-block prefetch hint per trigger block.

    Only single-antecedent, single-consequent rules participate; for
    each trigger the highest-confidence rule wins.
    """
    best: Dict[int, Tuple[float, int, int]] = {}
    for rule in rules:
        if len(rule.antecedent) != 1 or len(rule.consequent) != 1:
            continue
        (a,) = rule.antecedent
        (b,) = rule.consequent
        current = best.get(a)
        # prefer higher confidence, then support; lowest block id ties
        candidate = (rule.confidence, rule.support, -b)
        if current is None or candidate > current:
            best[a] = candidate
    return {a: -entry[2] for a, entry in best.items()}


__all__.append("prefetch_table")
