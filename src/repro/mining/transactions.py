"""Building transaction databases from traces (paper §IV-A).

"We first investigate the trace of the storage system and determine the
data blocks that are requested within a short time interval T."  Each
``T``-window of the trace becomes one transaction: the *set* of
distinct blocks requested in that window.
"""

from __future__ import annotations

from typing import FrozenSet, List, Sequence

import numpy as np

from repro.traces.records import Trace

__all__ = ["transactions_from_trace", "transactions_from_arrays"]

Transaction = FrozenSet[int]


def transactions_from_arrays(arrivals_ms: Sequence[float],
                             blocks: Sequence[int],
                             window_ms: float) -> List[Transaction]:
    """Group ``blocks`` into transactions by ``window_ms`` windows.

    Windows are aligned to the first arrival; empty windows produce no
    transaction; duplicate blocks inside a window collapse (sets).
    """
    if window_ms <= 0:
        raise ValueError("window_ms must be positive")
    arr = np.asarray(arrivals_ms, dtype=np.float64)
    blk = np.asarray(blocks, dtype=np.int64)
    if len(arr) != len(blk):
        raise ValueError("arrivals and blocks must align")
    if len(arr) == 0:
        return []
    order = np.argsort(arr, kind="stable")
    arr, blk = arr[order], blk[order]
    base = arr[0]
    win = ((arr - base) / window_ms + 1e-9).astype(np.int64)
    out: List[Transaction] = []
    current: set[int] = set()
    current_win = win[0]
    for w, b in zip(win, blk):
        if w != current_win:
            out.append(frozenset(current))
            current = set()
            current_win = w
        current.add(int(b))
    out.append(frozenset(current))
    return out


def transactions_from_trace(trace: Trace,
                            window_ms: float) -> List[Transaction]:
    """Transactions of a :class:`Trace` (reads only, as in the paper)."""
    reads = trace.reads_only()
    return transactions_from_arrays(reads.arrival_ms, reads.block,
                                    window_ms)
