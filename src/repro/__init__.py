"""repro -- Replication Based QoS Framework for Flash Arrays.

A from-scratch reproduction of Altiparmak & Tosun, *"Replication Based
QoS Framework for Flash Arrays"* (IEEE CLUSTER 2012): deterministic and
statistical response-time guarantees for flash storage arrays via
design-theoretic replicated declustering, plus every substrate the
paper depends on (discrete-event flash simulator, combinatorial design
library, retrieval algorithms including max-flow, frequent itemset
mining, trace infrastructure) and a benchmark harness regenerating each
table and figure of the evaluation.

Quickstart::

    from repro import QoSFlashArray
    qos = QoSFlashArray(n_devices=9, replication=3, interval_ms=0.133)
    report = qos.run_online(arrival_times_ms, bucket_ids)
    assert report.guarantee_met

See ``DESIGN.md`` for the system inventory and ``EXPERIMENTS.md`` for
paper-vs-measured results.
"""

from repro.core.qos import QoSFlashArray, QoSReport

__version__ = "1.0.0"

__all__ = ["QoSFlashArray", "QoSReport", "__version__"]
