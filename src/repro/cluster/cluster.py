"""``ShardedCluster``: N independent QoS arrays behind one front door.

Scale-out happens in three composable layers:

1. **Sharding** (:mod:`repro.cluster.sharding`) gives every data block
   a *home array*; each array runs the full single-array stack --
   per-array FIM matching, admission control, the byte-identical
   playback engines, module-level fault injection.
2. **Cross-array replication** (:mod:`repro.cluster.replicator`)
   mirrors hot blocks onto secondary arrays under a migration budget,
   reusing :class:`repro.controller.ReplicationPlanner` verbatim.
3. **Routing** (:mod:`repro.cluster.routing`) sends each read of a
   replicated block to the least-loaded *live* replica array, failing
   over when :mod:`repro.faults` kills a whole array.

Determinism contracts (enforced by tests and the ``cluster`` probe):

* **1-shard identity** -- a 1-array cluster replays
  :func:`repro.experiments.common.play_workload` byte for byte: with
  one array, routing is the identity, per-array mining sees exactly
  the offline trace, and the streaming session's chunking invariance
  makes feed-per-part equal feed-once.
* **Mode identity** -- the serial streaming path and the
  parallel-runner cell path produce identical
  :class:`ClusterReport` fingerprints when routing runs open-loop
  (``router_sync=False``): routing is then a pure function of the
  trace, and per-array playback is embarrassingly parallel.
* **Dispatch atomicity** -- array-scoped faults act on *routing
  only*: a request dispatched to an array before the fault instant
  completes normally, so killing fewer replica arrays than a pattern
  holds never fails one of its reads, and per-array QoS reports stay
  well-formed (no mid-flight corruption to merge around).

Roll-up leans on the mergeable observability primitives: per-shard
:class:`~repro.flash.metrics.IntervalSeries` fold into one
cluster-wide series whose state equals recording the concatenated
sample stream (order-independent histogram + exact-moment state).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

import numpy as np

from repro import obs
from repro.cluster.replicator import CrossArrayReplicator
from repro.cluster.routing import ReplicaRouter
from repro.cluster.sharding import Sharding, make_sharding
from repro.controller.planner import pair_support_by_block
from repro.core.qos import QoSFlashArray, QoSReport
from repro.faults import FaultSchedule
from repro.flash.driver import OnlineTracePlayer
from repro.flash.metrics import IntervalSeries
from repro.mining.apriori import apriori
from repro.mining.matching import FIMBlockMatcher, MatchResult
from repro.mining.transactions import transactions_from_trace
from repro.obs.series import ModuleSeries, module_interval_series
from repro.traces.records import Trace

__all__ = ["ClusterConfig", "ShardedCluster", "ClusterReport",
           "ArrayResult", "BoundaryRecord"]


@dataclass(frozen=True)
class ClusterConfig:
    """Everything a :class:`ShardedCluster` needs, in one record.

    The per-array knobs mirror :class:`~repro.core.qos.QoSFlashArray`
    (so the 1-shard identity contract is like-for-like); the cluster
    knobs add sharding, cross-array replication and routing.
    """

    n_arrays: int = 4
    n_devices: int = 9
    replication: int = 3
    interval_ms: float = 0.133
    epsilon: float = 0.0
    accesses: Optional[int] = None
    seed: int = 0
    engine: str = "auto"
    admission: str = "counting"
    #: ``"hash"`` (consistent-hash ring, default) or ``"range"``
    sharding: str = "hash"
    #: block-space size for range sharding (ignored for hash)
    n_blocks: int = 1 << 16
    #: virtual nodes per array on the hash ring
    vnodes: int = 64
    #: replica arrays per hot block including the home (2 = one
    #: mirror); clamped to ``n_arrays``
    cross_replication: int = 2
    #: cross-array mirror moves applied per boundary per mirror rank;
    #: ``None`` = unlimited
    migration_budget: Optional[int] = None
    #: minimum mined pair support for a block to earn a mirror
    hot_support: int = 2
    fim_window_ms: float = 0.133
    min_support: int = 1

    def __post_init__(self):
        if self.n_arrays < 1:
            raise ValueError("n_arrays must be >= 1")
        if self.cross_replication < 1:
            raise ValueError("cross_replication must be >= 1")
        if self.hot_support < 1:
            raise ValueError("hot_support must be >= 1")

    @property
    def effective_cross_replication(self) -> int:
        return min(self.cross_replication, self.n_arrays)

    def make_sharding(self) -> Sharding:
        return make_sharding(self.sharding, self.n_arrays,
                             n_blocks=self.n_blocks,
                             vnodes=self.vnodes)


def _array_faults(faults: Optional[FaultSchedule], array: int,
                  n_devices: int) -> Optional[FaultSchedule]:
    """The module-scope restriction of a cluster schedule to one
    array (array ``a`` owns global modules ``[a*n, (a+1)*n)``)."""
    if faults is None:
        return None
    return faults.for_array(array, array * n_devices, n_devices)


def _make_qos(config: ClusterConfig,
              faults: Optional[FaultSchedule]) -> QoSFlashArray:
    return QoSFlashArray(
        n_devices=config.n_devices, replication=config.replication,
        interval_ms=config.interval_ms, accesses=config.accesses,
        epsilon=config.epsilon, seed=config.seed,
        engine=config.engine, admission=config.admission,
        faults=faults)


def _make_player(config: ClusterConfig, qos: QoSFlashArray,
                 faults: Optional[FaultSchedule]) -> OnlineTracePlayer:
    """Exactly :meth:`QoSFlashArray.run_online`'s player construction
    (the 1-shard identity contract depends on the match)."""
    probs = qos.probabilities() if config.epsilon > 0 else None
    return OnlineTracePlayer(
        qos.allocation, config.interval_ms, epsilon=config.epsilon,
        probabilities=probs, accesses=qos.accesses, params=qos.params,
        engine=config.engine, admission=config.admission,
        faults=faults)


@dataclass
class ArrayResult:
    """One array's contribution to a cluster play-through.

    ``fingerprint`` hashes the full per-request detail columns inside
    the producing process, so cross-mode and double-run identity
    checks never need to ship request lists across workers; ``report``
    carries them anyway in the serial path (``None`` from runner
    cells).
    """

    array: int
    series: IntervalSeries
    n_requests: int
    n_failed: int
    n_faulted: int
    n_delayed: int
    n_rejected: int
    n_violations: int
    fingerprint: str
    report: Optional[QoSReport] = None
    module_series: Optional[ModuleSeries] = None


def _array_result(array: int, series: IntervalSeries, played,
                  guarantee_ms: float,
                  keep_requests: bool) -> ArrayResult:
    report = QoSReport(series, list(played), guarantee_ms)
    h = hashlib.sha256()
    if played:
        floats = np.array(
            [[p.io.arrival, p.io.issued_at, p.io.completed_at,
              p.io.response_ms, p.io.total_ms] for p in played],
            dtype=np.float64)
        ints = np.array(
            [[p.interval, p.io.device, p.io.retries, int(p.delayed),
              int(p.rejected), int(p.failed),
              int(getattr(p.io, "faulted", False))] for p in played],
            dtype=np.int64)
        h.update(floats.tobytes())
        h.update(ints.tobytes())
    n_delayed = sum(1 for p in played
                    if p.delayed and not p.rejected)
    n_rejected = sum(1 for p in played if p.rejected)
    return ArrayResult(
        array=array, series=series, n_requests=len(played),
        n_failed=report.n_failed, n_faulted=report.n_faulted,
        n_delayed=n_delayed, n_rejected=n_rejected,
        n_violations=report.n_violations, fingerprint=h.hexdigest(),
        report=report if keep_requests else None)


def _cell_play_array(config: ClusterConfig, array: int,
                     arrivals: np.ndarray, buckets: np.ndarray,
                     faults_data: Optional[Dict]) -> ArrayResult:
    """One array's full playback -- the parallel runner's cell.

    Module-level and pure: the routed per-array trace comes in as
    plain columns, the per-array fault restriction is rebuilt in the
    worker, and the result is picklable summary state.  Equal to the
    serial streaming path by the session's chunking invariance.
    """
    faults = None
    if faults_data is not None:
        faults = _array_faults(FaultSchedule.from_dict(faults_data),
                               array, config.n_devices)
    qos = _make_qos(config, faults)
    player = _make_player(config, qos, faults)
    series, played = player.play(
        [float(t) for t in arrivals], [int(b) for b in buckets])
    return _array_result(array, series, played, qos.guarantee_ms,
                         keep_requests=False)


@dataclass(frozen=True)
class BoundaryRecord:
    """One part boundary's cluster decisions (audit trail)."""

    part: int
    boundary_ms: float
    n_hot: int
    n_mirrored: int
    moves_applied: int
    moves_deferred: int
    moves_blocked: int
    excluded_arrays: Tuple[int, ...] = ()


@dataclass
class ClusterReport:
    """Cluster-wide roll-up of one play-through.

    ``series`` merges the per-array interval series through the
    mergeable histogram/exact-moment state, so its totals equal a
    single report over the concatenated samples; the per-request
    accounting (``n_failed``, ``n_violations``, ...) sums the
    per-array counts plus the reads the router could not place
    (``n_unrouted`` -- every replica array dead at arrival).
    """

    config: ClusterConfig
    guarantee_ms: float
    arrays: List[ArrayResult]
    n_unrouted: int
    routed: List[int]
    audit: List[BoundaryRecord] = field(default_factory=list)

    @property
    def series(self) -> IntervalSeries:
        merged = IntervalSeries()
        for ar in self.arrays:
            merged.merge(ar.series)
        return merged

    @property
    def overall(self):
        return self.series.overall()

    @property
    def n_requests(self) -> int:
        return sum(ar.n_requests for ar in self.arrays) \
            + self.n_unrouted

    @property
    def n_failed(self) -> int:
        return sum(ar.n_failed for ar in self.arrays) \
            + self.n_unrouted

    @property
    def n_faulted(self) -> int:
        return sum(ar.n_faulted for ar in self.arrays)

    @property
    def n_rejected(self) -> int:
        return sum(ar.n_rejected for ar in self.arrays)

    @property
    def n_violations(self) -> int:
        return sum(ar.n_violations for ar in self.arrays) \
            + self.n_unrouted

    @property
    def violation_rate(self) -> float:
        total = self.n_requests - self.n_rejected
        return self.n_violations / total if total else 0.0

    @property
    def guarantee_met(self) -> bool:
        if self.n_unrouted or self.n_failed:
            return False
        stats = self.overall
        return stats.n_total == 0 \
            or stats.max <= self.guarantee_ms + 1e-9

    @property
    def pct_delayed(self) -> float:
        total = sum(ar.n_requests for ar in self.arrays)
        delayed = sum(ar.n_delayed for ar in self.arrays)
        return 100.0 * delayed / total if total else 0.0

    def summary(self) -> Dict[str, float]:
        stats = self.overall
        out = stats.summary()
        out["guarantee_ms"] = self.guarantee_ms
        out["guarantee_met"] = float(self.guarantee_met)
        out["n_arrays"] = float(len(self.arrays))
        out["n_unrouted"] = float(self.n_unrouted)
        if self.n_failed or self.n_faulted:
            out["n_failed"] = float(self.n_failed)
            out["n_faulted"] = float(self.n_faulted)
            out["violation_rate"] = self.violation_rate
        return out

    def fingerprint(self) -> str:
        """Byte-comparable identity of the whole play-through.

        Covers every per-request detail column (via the per-array
        fingerprints), the routing census and the unrouted count --
        the double-run determinism probe and the serial-vs-runner
        mode test compare exactly this.
        """
        h = hashlib.sha256()
        for ar in self.arrays:
            h.update(f"{ar.array}:{ar.n_requests}:"
                     f"{ar.fingerprint};".encode("ascii"))
        h.update(repr(self.routed).encode("ascii"))
        h.update(str(self.n_unrouted).encode("ascii"))
        return h.hexdigest()


class ShardedCluster:
    """N independent :class:`~repro.core.qos.QoSFlashArray` instances
    behind one request-facing API.

    Parameters
    ----------
    config:
        The :class:`ClusterConfig` in force.
    faults:
        Optional cluster-level :class:`repro.faults.FaultSchedule`.
        Module-scoped events use *global* module IDs (array ``a`` owns
        ``[a*n_devices, (a+1)*n_devices)``) and are restricted per
        array; array-scoped events (``scope="array"``) mask whole
        arrays out of routing (:meth:`~repro.faults.FaultSchedule.\
masked_arrays_at`) without ever touching in-flight playback.
    """

    def __init__(self, config: ClusterConfig,
                 faults: Optional[FaultSchedule] = None):
        self.config = config
        self.faults = faults
        self.sharding = config.make_sharding()
        self.arrays = [
            _make_qos(config, _array_faults(faults, a,
                                            config.n_devices))
            for a in range(config.n_arrays)]
        ref = self.arrays[0]
        self.guarantee_ms = ref.guarantee_ms
        #: aggregate service rate per array, for the router's decay
        self._drain_rate = config.n_devices / ref.params.read_ms

    # -- the play-through -------------------------------------------------
    def play(self, parts: Sequence[Trace], runner=None,
             router_sync: Optional[bool] = None) -> ClusterReport:
        """Play a multi-part workload through the cluster.

        Per part: at the boundary each array mines its own previous
        sub-trace (FIM matching, as in ``play_workload``), the
        cluster-wide hot set drives one budgeted
        :class:`~repro.cluster.replicator.CrossArrayReplicator` round,
        then every request is routed (home array, or the least-loaded
        live replica for mirrored reads) and fed to its array.

        ``runner`` switches per-array playback to parallel-runner
        cells; routing then runs open-loop (no boundary queue-depth
        sync, since playback state does not exist yet) and the result
        is byte-identical to the serial path with
        ``router_sync=False``.  ``router_sync`` defaults to True in
        the serial path and is forced False with a runner.
        """
        cfg = self.config
        parts = list(parts)
        if router_sync is None:
            router_sync = runner is None
        if runner is not None:
            router_sync = False
        router = ReplicaRouter(cfg.n_arrays, self._drain_rate)
        replicator = CrossArrayReplicator(
            cfg.n_arrays, self.sharding.array_of,
            cross_replication=cfg.effective_cross_replication,
            migration_budget=cfg.migration_budget)
        matchers = [FIMBlockMatcher(qos.allocation)
                    for qos in self.arrays]
        match = [MatchResult.empty(qos.allocation.n_buckets)
                 for qos in self.arrays]
        audit: List[BoundaryRecord] = []
        serial = runner is None
        sessions = players = None
        marks = [0] * cfg.n_arrays
        module_series: Optional[List[ModuleSeries]] = None
        if serial:
            players = [
                _make_player(cfg, qos,
                             _array_faults(self.faults, a,
                                           cfg.n_devices))
                for a, qos in enumerate(self.arrays)]
            sessions = [p.session() for p in players]
            if router_sync:
                module_series = [
                    ModuleSeries(cfg.interval_ms, cfg.n_devices)
                    for _ in range(cfg.n_arrays)]
        #: accumulated per-array feeds for the runner path
        feed_arrivals: List[List[np.ndarray]] = \
            [[] for _ in range(cfg.n_arrays)]
        feed_buckets: List[List[np.ndarray]] = \
            [[] for _ in range(cfg.n_arrays)]
        prev_sub: List[Optional[Trace]] = [None] * cfg.n_arrays
        n_unrouted = 0

        for part_idx, part in enumerate(parts):
            boundary = float(part.arrival_ms[0]) if len(part) else 0.0
            if part_idx > 0:
                if serial and all(s.fast for s in sessions):
                    for s in sessions:
                        s.advance(boundary)
                    if router_sync:
                        self._sync_router(router, sessions, marks,
                                          module_series, boundary)
                        marks = [len(s.played) for s in sessions]
                self._boundary_round(part_idx, boundary,
                                     parts[part_idx - 1], prev_sub,
                                     matchers, match, replicator,
                                     audit)
            dest, unrouted = self._route_part(part, router,
                                              replicator)
            n_unrouted += int(unrouted.sum())
            for a in range(cfg.n_arrays):
                sel = np.flatnonzero((dest == a) & ~unrouted)
                if sel.size == 0:
                    sub = None
                else:
                    sub = part[sel]
                prev_sub[a] = sub
                if sub is None:
                    continue
                mapped = self._map_buckets(match[a], sub.block)
                if serial:
                    sessions[a].feed(
                        [float(t) for t in sub.arrival_ms], mapped)
                else:
                    feed_arrivals[a].append(
                        np.asarray(sub.arrival_ms, dtype=np.float64))
                    feed_buckets[a].append(
                        np.asarray(mapped, dtype=np.int64))

        if serial:
            results = []
            for a, session in enumerate(sessions):
                series, played = session.drain()
                result = _array_result(a, series, played,
                                       self.guarantee_ms,
                                       keep_requests=True)
                if module_series is not None:
                    module_series[a].merge(module_interval_series(
                        played[marks[a]:], cfg.n_devices,
                        cfg.interval_ms))
                    result.module_series = module_series[a]
                results.append(result)
                if obs.ACTIVE:
                    obs.SESSION.record_qos_report(result.report)
        else:
            results = self._run_cells(runner, feed_arrivals,
                                      feed_buckets)

        return ClusterReport(config=cfg,
                             guarantee_ms=self.guarantee_ms,
                             arrays=results,
                             n_unrouted=n_unrouted,
                             routed=list(router.routed),
                             audit=audit)

    # -- boundary work ----------------------------------------------------
    def _boundary_round(self, part_idx: int, boundary: float,
                        prev_part: Trace,
                        prev_sub: List[Optional[Trace]],
                        matchers, match, replicator,
                        audit: List[BoundaryRecord]) -> None:
        """Mine at the boundary, then run one replication round.

        Two mining scopes, deliberately distinct: each array mines
        its *own* previous sub-trace to train its FIM bucket matching
        (exactly the single-array pipeline, which keeps the 1-shard
        identity), while the replicator's hot set is mined over the
        *whole* previous part -- a hot pattern whose blocks home on
        different arrays never co-occurs in any per-array sub-trace,
        so only the cluster-wide pass can see it.
        """
        cfg = self.config
        for a, sub in enumerate(prev_sub):
            if sub is None or not len(sub):
                continue
            txns = transactions_from_trace(sub, cfg.fim_window_ms)
            itemsets = apriori(txns, cfg.min_support, max_size=2)
            match[a] = matchers[a].match(itemsets)
        whole = apriori(
            transactions_from_trace(prev_part, cfg.fim_window_ms),
            cfg.min_support, max_size=2)
        hot = {b: s for b, s in pair_support_by_block(whole).items()
               if s >= cfg.hot_support}
        excluded: FrozenSet[int] = frozenset()
        if self.faults is not None:
            excluded = self.faults.masked_arrays_at(boundary)
        applied = deferred = blocked = 0
        if replicator.n_mirrors > 0:
            for plan in replicator.update(hot, excluded=excluded):
                applied += len(plan.applied)
                deferred += len(plan.deferred)
                blocked += len(plan.blocked)
        audit.append(BoundaryRecord(
            part=part_idx, boundary_ms=boundary, n_hot=len(hot),
            n_mirrored=len(replicator.mirror_table()),
            moves_applied=applied, moves_deferred=deferred,
            moves_blocked=blocked,
            excluded_arrays=tuple(sorted(excluded))))

    # -- routing ----------------------------------------------------------
    def _route_part(self, part: Trace, router: ReplicaRouter,
                    replicator: CrossArrayReplicator,
                    ) -> Tuple[np.ndarray, np.ndarray]:
        """Destination array (and unrouted mask) for one part.

        Vectorized over the unique-block table; only mirrored reads
        walk the per-request router loop, so home-only traffic routes
        at numpy speed.  Requests must arrive time-sorted (trace parts
        are) so router decisions replay in arrival order.
        """
        cfg = self.config
        n = len(part)
        if n == 0:
            return (np.zeros(0, dtype=np.int64),
                    np.zeros(0, dtype=bool))
        blocks = np.asarray(part.block, dtype=np.int64)
        arrivals = np.asarray(part.arrival_ms, dtype=np.float64)
        uniq, inverse = np.unique(blocks, return_inverse=True)
        home_lut = np.asarray(
            self.sharding.array_of_many(uniq.tolist()),
            dtype=np.int64)
        dest = home_lut[inverse]
        unrouted = np.zeros(n, dtype=bool)

        mirror_table = replicator.mirror_table() \
            if replicator.n_mirrors > 0 else {}
        routed_by_router = np.zeros(n, dtype=bool)
        if mirror_table:
            replica_lut = {
                int(b): replicator.replicas(int(b))
                for b in uniq if int(b) in mirror_table}
            mirrored_uniq = np.fromiter(
                (int(b) in replica_lut for b in uniq),
                dtype=bool, count=uniq.size)
            candidates_mask = mirrored_uniq[inverse] \
                & np.asarray(part.is_read, dtype=bool)
            for i in np.flatnonzero(candidates_mask):
                t = float(arrivals[i])
                cands = replica_lut[int(blocks[i])]
                if self.faults is not None:
                    masked = self.faults.masked_arrays_at(t)
                    live = [a for a in cands if a not in masked]
                else:
                    live = list(cands)
                choice = router.route(live, t)
                routed_by_router[i] = True
                if choice is None:
                    unrouted[i] = True
                else:
                    dest[i] = choice

        # Home-only traffic: fail requests whose home array is masked
        # at arrival (dispatch-atomic: nothing already dispatched is
        # touched).  Segment-wise so the common healthy case stays
        # fully vectorized.
        if self.faults is not None:
            pts, masks = self.faults.array_mask_segments()
            if any(masks):
                seg = np.searchsorted(np.asarray(pts), arrivals,
                                      side="right")
                plain = ~routed_by_router
                for s in np.unique(seg):
                    dead = masks[s]
                    if not dead:
                        continue
                    sel = plain & (seg == s) \
                        & np.isin(dest, sorted(dead))
                    unrouted |= sel
        return dest, unrouted

    def _map_buckets(self, match: MatchResult,
                     blocks: np.ndarray) -> List[int]:
        """FIM-mapped design buckets via a unique-block table."""
        uniq, inverse = np.unique(np.asarray(blocks, dtype=np.int64),
                                  return_inverse=True)
        lut = np.fromiter(
            (match.design_block_of(int(b)) for b in uniq),
            dtype=np.int64, count=uniq.size)
        return [int(b) for b in lut[inverse]]

    def _sync_router(self, router: ReplicaRouter, sessions, marks,
                     module_series: List[ModuleSeries],
                     boundary: float) -> None:
        """Re-anchor the router to measured boundary queue depths.

        The per-array :class:`~repro.obs.series.ModuleSeries` is a
        pure function of played timestamps (importable and exact
        whether or not observability is recording), so syncing never
        couples routing to ``repro.obs`` being enabled.
        """
        cfg = self.config
        k = int(boundary / cfg.interval_ms + 1e-9)
        for a, session in enumerate(sessions):
            fresh = module_interval_series(
                session.played[marks[a]:], cfg.n_devices,
                cfg.interval_ms)
            module_series[a].merge(fresh)
            depth = sum(
                module_series[a].depth.get((d, k), 0)
                for d in range(cfg.n_devices))
            router.sync(a, depth, boundary)

    # -- parallel cells ---------------------------------------------------
    def _run_cells(self, runner, feed_arrivals,
                   feed_buckets) -> List[ArrayResult]:
        """Per-array playback as parallel-runner cells."""
        from repro.runner import Cell

        cfg = self.config
        faults_data = self.faults.to_dict() \
            if self.faults is not None else None
        cells = []
        for a in range(cfg.n_arrays):
            arr = (np.concatenate(feed_arrivals[a])
                   if feed_arrivals[a]
                   else np.zeros(0, dtype=np.float64))
            buck = (np.concatenate(feed_buckets[a])
                    if feed_buckets[a]
                    else np.zeros(0, dtype=np.int64))
            cells.append(Cell(
                "cluster", f"array{a}", _cell_play_array,
                (cfg, a, arr, buck, faults_data),
                cacheable=False))
        return list(runner.run(cells))
