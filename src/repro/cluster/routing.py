"""Least-loaded replica routing across arrays.

When a data block is cross-replicated, every read of it has a choice
of serving arrays.  :class:`ReplicaRouter` picks the *least-loaded
live* candidate using a deterministic queue-depth estimate:

* each routed read adds one job to its target's backlog;
* backlog drains at the array's aggregate service rate
  (``n_devices / read_ms`` jobs per ms) between routing decisions;
* at part boundaries the estimate can be re-synced to the *actual*
  boundary queue depth of each array, computed from the played
  request timestamps via :func:`repro.obs.series.\
module_interval_series` -- a pure post-hoc function, so routing never
  depends on whether observability is enabled;
* ties break by *replica preference order* (home array first, then
  mirrors in rank order), never by array index arithmetic -- the
  tie-break unit test pins this down.

Dead arrays are handled by the caller masking candidates through
:meth:`repro.faults.FaultSchedule.masked_arrays_at` before asking the
router; the router itself is fault-agnostic.

Modeling grounding: *Modeling of Request Cloning in Cloud Server
Systems using Processor Sharing* -- routing each request to the
shortest queue among replicas approximates the cloning win without
issuing redundant work.

Everything here is a pure function of the routing-call sequence, so
double-running the same workload replays byte-identical decisions
(the cluster determinism probe enforces this).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

__all__ = ["ReplicaRouter"]


class ReplicaRouter:
    """Deterministic least-loaded routing over replica arrays.

    Parameters
    ----------
    n_arrays:
        Cluster size.
    drain_rate:
        Estimated jobs an array retires per millisecond (aggregate
        service rate, ``n_devices / read_ms``).
    """

    def __init__(self, n_arrays: int, drain_rate: float):
        if n_arrays < 1:
            raise ValueError("n_arrays must be >= 1")
        if drain_rate <= 0:
            raise ValueError("drain_rate must be > 0")
        self.n_arrays = n_arrays
        self.drain_rate = float(drain_rate)
        self._backlog = [0.0] * n_arrays
        self._last_t = [0.0] * n_arrays
        #: routing census: reads sent to each array
        self.routed = [0] * n_arrays

    def backlog(self, array: int, t: float) -> float:
        """The decayed backlog estimate for ``array`` at time ``t``."""
        decayed = self._backlog[array] \
            - (t - self._last_t[array]) * self.drain_rate
        return decayed if decayed > 0.0 else 0.0

    def route(self, candidates: Sequence[int],
              t: float) -> Optional[int]:
        """Pick the least-loaded candidate for a read arriving at ``t``.

        ``candidates`` must already be masked to live arrays, in
        replica preference order (home first); on a backlog tie the
        *earliest* candidate wins.  Returns ``None`` when no candidate
        is live (the caller accounts the read as unrouted).
        """
        best = None
        best_load = 0.0
        for a in candidates:
            load = self.backlog(a, t)
            if best is None or load < best_load:
                best, best_load = a, load
        if best is None:
            return None
        self._backlog[best] = best_load + 1.0
        self._last_t[best] = t
        self.routed[best] += 1
        return best

    def observe(self, array: int, t: float) -> None:
        """Account a read routed outside the router (home-only
        traffic) so the estimate reflects total array load."""
        self._backlog[array] = self.backlog(array, t) + 1.0
        self._last_t[array] = t

    def sync(self, array: int, depth: int, t: float) -> None:
        """Re-anchor ``array``'s estimate to a measured queue depth.

        Called at part boundaries with the boundary depth from the
        per-array :class:`repro.obs.series.ModuleSeries`; between
        syncs the decaying estimate extrapolates.
        """
        self._backlog[array] = float(depth)
        self._last_t[array] = t

    def state(self) -> Dict[str, List[float]]:
        """Comparable snapshot (fingerprinted by determinism tests)."""
        return {"backlog": list(self._backlog),
                "last_t": list(self._last_t),
                "routed": list(self.routed)}
