"""Partitioning the data-block space across arrays.

A sharding function assigns every data block a *home array* -- the
array that owns the block's primary replicas.  Two strategies:

:class:`HashSharding` (default)
    A consistent-hash ring with virtual nodes.  Each array owns
    ``vnodes`` points on a 64-bit ring derived from sha256 (never the
    builtin ``hash``, whose per-process randomisation would break
    determinism); a block maps to the first ring point clockwise from
    its own sha256 position.  Adding an array only claims the keys
    whose successor became one of the new array's points -- every
    other key keeps its home, the property the cluster remap test
    locks down.

:class:`RangeSharding`
    Explicit split points over the block space: array ``i`` owns
    ``[boundaries[i-1], boundaries[i])``.  Degenerate layouts (empty
    shards, everything on one array) are legal and covered by the
    boundary-case unit tests.

Both are pure functions of their construction parameters, so a
sharding decision replayed from the same config is byte-identical --
the cluster determinism probe double-runs exactly that.
"""

from __future__ import annotations

import hashlib
from bisect import bisect_right
from typing import Dict, Iterable, List, Sequence, Tuple

__all__ = ["Sharding", "HashSharding", "RangeSharding", "make_sharding"]


def _ring_hash(token: str) -> int:
    """Deterministic 64-bit ring position for ``token`` (sha256)."""
    digest = hashlib.sha256(token.encode("ascii")).digest()
    return int.from_bytes(digest[:8], "big")


class Sharding:
    """Base interface: map data blocks to home-array indices."""

    #: number of arrays in the cluster
    n_arrays: int

    def array_of(self, block: int) -> int:
        raise NotImplementedError

    def array_of_many(self, blocks: Iterable[int]) -> List[int]:
        """Memoized bulk lookup (the routing pass's hot loop)."""
        cache: Dict[int, int] = self._cache
        out = []
        for b in blocks:
            b = int(b)
            a = cache.get(b)
            if a is None:
                a = cache[b] = self.array_of(b)
            out.append(a)
        return out

    @property
    def _cache(self) -> Dict[int, int]:
        cache = getattr(self, "_memo", None)
        if cache is None:
            cache = self._memo = {}
        return cache

    def describe(self) -> Dict[str, object]:
        raise NotImplementedError


class HashSharding(Sharding):
    """Consistent-hash ring sharding with virtual nodes.

    Parameters
    ----------
    n_arrays:
        Cluster size.
    vnodes:
        Ring points per array; more points smooth the key balance at
        the cost of a larger ring (64 keeps the max/min shard ratio
        modest while the ring stays tiny).
    """

    def __init__(self, n_arrays: int, vnodes: int = 64):
        if n_arrays < 1:
            raise ValueError("n_arrays must be >= 1")
        if vnodes < 1:
            raise ValueError("vnodes must be >= 1")
        self.n_arrays = n_arrays
        self.vnodes = vnodes
        points: List[Tuple[int, int]] = []
        for a in range(n_arrays):
            for v in range(vnodes):
                points.append((_ring_hash(f"array-{a}:vnode-{v}"), a))
        # Ties between distinct tokens are astronomically unlikely but
        # the sort must still be total: break by array index.
        points.sort()
        self._ring_keys = [p[0] for p in points]
        self._ring_arrays = [p[1] for p in points]

    def array_of(self, block: int) -> int:
        pos = _ring_hash(f"block-{int(block)}")
        idx = bisect_right(self._ring_keys, pos)
        if idx == len(self._ring_keys):
            idx = 0  # wrap: the ring is circular
        return self._ring_arrays[idx]

    def describe(self) -> Dict[str, object]:
        return {"kind": "hash", "n_arrays": self.n_arrays,
                "vnodes": self.vnodes}

    def __repr__(self) -> str:
        return (f"HashSharding(n_arrays={self.n_arrays}, "
                f"vnodes={self.vnodes})")


class RangeSharding(Sharding):
    """Contiguous block ranges per array.

    ``boundaries`` are ``n_arrays - 1`` ascending split points; array
    ``i`` owns blocks ``b`` with ``boundaries[i-1] <= b <
    boundaries[i]`` (array 0 from ``-inf``, the last array to
    ``+inf``).  A repeated boundary yields an *empty shard*, which the
    cluster handles like any other array (it simply plays nothing).
    """

    def __init__(self, boundaries: Sequence[int], n_arrays: int):
        if n_arrays < 1:
            raise ValueError("n_arrays must be >= 1")
        if len(boundaries) != n_arrays - 1:
            raise ValueError(
                f"need {n_arrays - 1} boundaries for {n_arrays} "
                f"arrays, got {len(boundaries)}")
        bounds = [int(b) for b in boundaries]
        if any(b2 < b1 for b1, b2 in zip(bounds, bounds[1:])):
            raise ValueError("boundaries must be non-decreasing")
        self.n_arrays = n_arrays
        self.boundaries = bounds

    @classmethod
    def even(cls, n_arrays: int, n_blocks: int) -> "RangeSharding":
        """Equal-width ranges over ``[0, n_blocks)``."""
        if n_blocks < n_arrays:
            raise ValueError("need at least one block per array")
        step = n_blocks / n_arrays
        bounds = [int(round(step * i)) for i in range(1, n_arrays)]
        return cls(bounds, n_arrays)

    def array_of(self, block: int) -> int:
        return bisect_right(self.boundaries, int(block))

    def describe(self) -> Dict[str, object]:
        return {"kind": "range", "n_arrays": self.n_arrays,
                "boundaries": list(self.boundaries)}

    def __repr__(self) -> str:
        return (f"RangeSharding({self.boundaries}, "
                f"n_arrays={self.n_arrays})")


def make_sharding(kind: str, n_arrays: int,
                  n_blocks: int = 0, vnodes: int = 64) -> Sharding:
    """Factory over the two strategies (``"hash"`` or ``"range"``)."""
    if kind == "hash":
        return HashSharding(n_arrays, vnodes=vnodes)
    if kind == "range":
        return RangeSharding.even(n_arrays, n_blocks)
    raise ValueError(f"unknown sharding kind {kind!r}; "
                     f"choose from ('hash', 'range')")
