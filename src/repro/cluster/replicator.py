"""Cross-array replication of hot FIM patterns.

The single-array controller re-replicates hot data blocks across
*design blocks*; the cluster repeats the trick one level up: blocks
whose mined pair support marks them hot get a read-only mirror on a
*secondary array*, so reads of them can fail over (and load-balance)
across arrays.

The planning problem is identical to the single-array one -- diff a
target placement against the current one, order moves by support,
apply at most ``migration_budget`` per boundary, defer the rest, veto
moves onto dead hardware -- so :class:`CrossArrayReplicator` *is*
:class:`repro.controller.ReplicationPlanner` run over a synthetic
one-replica allocation in which "design block" ``a`` lives on
"device" ``a``: design blocks and devices are both array indices, the
planner's mapping **is** the block -> mirror-array table, and its
budget/deferral/veto/rescue semantics carry over unchanged (the
budget-parity unit test pins this).

Lifecycle (after the QumuloReplication accept/clean model): a block
enters the mirror table when mining marks it hot (*accept*), keeps
its mirror while the pattern persists, and is evicted under the same
budget when the pattern fades (*clean*).  Mirrors are read-only
serving copies; the home array remains the write master.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Optional, Tuple

from repro.allocation.base import AllocationScheme
from repro.controller.planner import ReplicationPlan, ReplicationPlanner
from repro.mining.matching import MatchResult

__all__ = ["ArrayMirrorAllocation", "CrossArrayReplicator"]


class ArrayMirrorAllocation(AllocationScheme):
    """The cluster seen as a 1-replica allocation over arrays.

    Design block ``a`` lives on device ``a`` -- both are array
    indices -- so a :class:`ReplicationPlanner` over this scheme plans
    block -> *array* placements: its dead-array veto becomes a
    dead-array veto and its migration cost counts whole-array copies.

    One extra *phantom* bucket (index ``n_arrays``) with an empty
    device set stands for "no mirror".  The replicator keys its
    mapping so every block's modulo fallback lands on the phantom
    (see :meth:`CrossArrayReplicator._key`): the planner's implicit
    "already in place" default then always means *unmirrored*, every
    real mirror is an explicit budgeted move, and evictions back to
    the fallback (= dropping the mirror) can never be vetoed by dead
    hardware -- the phantom touches none.
    """

    def __init__(self, n_arrays: int):
        if n_arrays < 1:
            raise ValueError("n_arrays must be >= 1")
        self.n_devices = n_arrays
        self.replication = 1
        self.n_buckets = n_arrays + 1

    def devices_for(self, bucket: int) -> Tuple[int, ...]:
        bucket = int(bucket)
        if not 0 <= bucket < self.n_buckets:
            raise ValueError(f"bucket {bucket} out of range")
        if bucket == self.n_buckets - 1:
            return ()  # the phantom "no mirror" bucket
        return (bucket,)


class CrossArrayReplicator:
    """Budgeted mirroring of hot blocks onto secondary arrays.

    Parameters
    ----------
    n_arrays:
        Cluster size (mirroring needs at least 2).
    home_of:
        Callable block -> home array (the sharding function).
    cross_replication:
        Total replica arrays per hot block including the home
        (``2`` = one mirror, the paper-style double).  Each mirror
        rank runs its own planner round under its own budget.
    migration_budget:
        Cross-array moves applied per boundary *per rank*; ``None`` =
        unlimited.  Unfunded moves defer exactly like the single-array
        planner's.
    """

    def __init__(self, n_arrays: int, home_of,
                 cross_replication: int = 2,
                 migration_budget: Optional[int] = None):
        if cross_replication < 1:
            raise ValueError("cross_replication must be >= 1")
        if cross_replication > n_arrays:
            raise ValueError(
                f"cannot keep {cross_replication} replica arrays in a "
                f"{n_arrays}-array cluster")
        self.n_arrays = n_arrays
        self.home_of = home_of
        self.cross_replication = cross_replication
        self.n_mirrors = cross_replication - 1
        self.allocation = ArrayMirrorAllocation(n_arrays)
        self._planners = [
            ReplicationPlanner(self.allocation,
                               migration_budget=migration_budget)
            for _ in range(self.n_mirrors)]
        self._current = [MatchResult.empty(self.allocation.n_buckets)
                         for _ in range(self.n_mirrors)]

    # -- key space ---------------------------------------------------------
    def _key(self, block: int) -> int:
        """Planner key for a data block.

        Chosen so ``key % n_buckets`` is always the phantom bucket:
        the planner's modulo fallback then uniformly means "no
        mirror", so creating *any* real mirror is an explicit move
        (diffed, budgeted, vetoable) and dropping one is an eviction
        back to the phantom.
        """
        base = self.allocation.n_buckets
        return int(block) * base + self.n_arrays

    def _block_of_key(self, key: int) -> int:
        return (int(key) - self.n_arrays) // self.allocation.n_buckets

    # -- placement geometry ----------------------------------------------
    def mirror_target(self, block: int, rank: int) -> int:
        """Deterministic rank-``rank`` mirror array for ``block``.

        Spreads mirrors over the ``n_arrays - 1`` non-home arrays by
        block number; distinct ranks land on distinct arrays.
        """
        home = int(self.home_of(block))
        span = self.n_arrays - 1
        return (home + 1 + (int(block) % span + rank) % span) \
            % self.n_arrays

    def mirrors(self, block: int) -> Tuple[int, ...]:
        """The live mirror arrays for ``block``, by rank.

        Reads the planner mapping *directly*: a block with no explicit
        entry sits on the phantom fallback, i.e. has no mirror.
        """
        key = self._key(block)
        out: List[int] = []
        for cur in self._current:
            m = cur.mapping.get(key)
            if m is not None and m not in out:
                out.append(m)
        return tuple(out)

    def replicas(self, block: int) -> Tuple[int, ...]:
        """All serving arrays for ``block`` in preference order:
        home first, then mirrors by rank."""
        home = int(self.home_of(block))
        return (home,) + tuple(m for m in self.mirrors(block)
                               if m != home)

    def mirror_table(self) -> Dict[int, Tuple[int, ...]]:
        """Snapshot: every mirrored block -> its mirror arrays."""
        blocks = sorted({self._block_of_key(k) for cur in self._current
                         for k in cur.mapping})
        return {b: self.mirrors(b) for b in blocks}

    # -- the boundary round ----------------------------------------------
    def update(self, hot_supports: Dict[int, int],
               excluded: FrozenSet[int] = frozenset(),
               ) -> List[ReplicationPlan]:
        """One planning round: mirror the hot set, clean the rest.

        ``hot_supports`` maps each currently-hot data block to its
        mined support (e.g. :func:`repro.controller.\
pair_support_by_block` output, thresholded by the caller);
        ``excluded`` is the dead-array set at the boundary
        (:meth:`repro.faults.FaultSchedule.masked_arrays_at`).
        Returns one :class:`ReplicationPlan` per mirror rank; deferred
        moves are retried next round while the pattern persists.
        """
        plans: List[ReplicationPlan] = []
        supports = {self._key(b): int(s)
                    for b, s in hot_supports.items()}
        for rank, planner in enumerate(self._planners):
            mapping = {self._key(b): self.mirror_target(b, rank)
                       for b in sorted(hot_supports)}
            target = MatchResult(mapping, frozenset(mapping),
                                 self.allocation.n_buckets)
            plan = planner.plan(target, self._current[rank],
                                supports=supports,
                                excluded=excluded)
            self._current[rank] = plan.mapping
            plans.append(plan)
        return plans
