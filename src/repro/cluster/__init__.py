"""``repro.cluster``: sharded multi-array QoS (scale-out layer).

Wraps N independent :class:`~repro.core.qos.QoSFlashArray` instances
behind one request-facing API: consistent-hash or range sharding of
the block space, cross-array replication of hot FIM patterns under a
migration budget, least-loaded replica routing with whole-array fault
domains, and a mergeable cluster-wide QoS roll-up.  See
``docs/cluster.md`` for the architecture and the determinism
contracts.
"""

from repro.cluster.cluster import (ArrayResult, BoundaryRecord,
                                   ClusterConfig, ClusterReport,
                                   ShardedCluster)
from repro.cluster.replicator import (ArrayMirrorAllocation,
                                      CrossArrayReplicator)
from repro.cluster.routing import ReplicaRouter
from repro.cluster.sharding import (HashSharding, RangeSharding,
                                    Sharding, make_sharding)

__all__ = [
    "ArrayMirrorAllocation",
    "ArrayResult",
    "BoundaryRecord",
    "ClusterConfig",
    "ClusterReport",
    "CrossArrayReplicator",
    "HashSharding",
    "RangeSharding",
    "ReplicaRouter",
    "ShardedCluster",
    "Sharding",
    "make_sharding",
]
