"""Runtime invariant sanitizers (opt-in, zero-cost when off).

Static analysis cannot prove flow conservation or event-ordering
monotonicity -- those are properties of *runs*.  This module provides
assertion batteries that the hot paths consult behind a single module
flag:

* flow conservation and capacity respect after every max-flow solve
  (:mod:`repro.graph.dinic`);
* schedule validity -- every request served by one of its replica
  devices, no device over its access budget
  (:mod:`repro.retrieval.maxflow`);
* event-ordering monotonicity in the DES kernel
  (:mod:`repro.sim.core`);
* FCFS service order in :class:`repro.flash.module.FlashModule`;
* replica-placement validity (pairwise balance included) after every
  allocation construction, surfaced through
  :func:`repro.core.selfcheck.self_check`.

Enable with the environment variable ``REPRO_SANITIZERS=1``, the CLI
flag ``python -m repro.check --sanitize ...``, or programmatically::

    from repro.check import sanitizers
    with sanitizers.sanitized():
        qos.run_online(...)

A tripped invariant raises :class:`SanitizerError` (an
``AssertionError`` subclass, so ``pytest.raises(AssertionError)``
works too).
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from typing import Iterator, Optional, Sequence, Tuple

__all__ = ["SanitizerError", "ACTIVE", "enable", "disable", "sanitized",
           "check_flow_conservation", "check_schedule",
           "check_event_order", "check_fcfs_order", "check_allocation"]


class SanitizerError(AssertionError):
    """A runtime invariant of the reproduction was violated."""


def _env_active() -> bool:
    return os.environ.get("REPRO_SANITIZERS", "").strip().lower() \
        not in ("", "0", "false", "off", "no")


#: The master switch. Hot paths read this module attribute directly
#: (``if sanitizers.ACTIVE:``), so the disabled cost is one attribute
#: load and a falsy branch per checkpoint.
ACTIVE: bool = _env_active()


def enable() -> None:
    """Turn all sanitizers on for this process."""
    global ACTIVE
    ACTIVE = True


def disable() -> None:
    """Turn all sanitizers off."""
    global ACTIVE
    ACTIVE = False


@contextmanager
def sanitized(active: bool = True) -> Iterator[None]:
    """Scoped enable (or disable, with ``active=False``)."""
    global ACTIVE
    previous = ACTIVE
    ACTIVE = active
    try:
        yield
    finally:
        ACTIVE = previous


def _fail(message: str) -> None:
    raise SanitizerError(message)


# -- flow networks -------------------------------------------------------

def check_flow_conservation(net, source: int, sink: int) -> None:
    """Assert conservation and capacity respect on a solved network.

    For every forward edge, ``0 <= flow <= capacity``; for every node
    other than the terminals, inflow equals outflow; and the source's
    net outflow equals the sink's net inflow.
    """
    n = net.n_nodes
    balance = [0] * n
    for edge in range(0, 2 * net.n_edges, 2):
        flow = net.flow_on(edge)
        residual = net.residual_capacity(edge)
        if flow < 0:
            _fail(f"edge {edge}: negative flow {flow}")
        if residual < 0:
            _fail(f"edge {edge}: negative residual capacity {residual}")
        u = net._to[edge ^ 1]
        v = net._to[edge]
        balance[u] -= flow
        balance[v] += flow
    for node in range(n):
        if node in (source, sink):
            continue
        if balance[node] != 0:
            _fail(f"flow conservation violated at node {node}: "
                  f"net imbalance {balance[node]}")
    if balance[source] != -balance[sink]:
        _fail(f"terminal imbalance: source {balance[source]} vs "
              f"sink {balance[sink]}")


def check_schedule(candidates: Sequence[Sequence[int]],
                   assignment: Sequence[int],
                   capacities) -> None:
    """Assert a retrieval assignment is feasible.

    ``capacities`` is either one integer budget for every device or a
    per-device sequence (the carry-aware driver's residuals).
    """
    loads: dict = {}
    for i, device in enumerate(assignment):
        if device not in tuple(candidates[i]):
            _fail(f"request {i} scheduled on device {device}, not one "
                  f"of its replicas {tuple(candidates[i])}")
        loads[device] = loads.get(device, 0) + 1
    for device in sorted(loads):
        cap = capacities[device] \
            if hasattr(capacities, "__getitem__") else capacities
        if loads[device] > cap:
            _fail(f"device {device} assigned {loads[device]} requests, "
                  f"capacity {cap}")


# -- event kernel --------------------------------------------------------

def check_event_order(last: Optional[Tuple[float, int]],
                      current: Tuple[float, int]) -> None:
    """Assert events leave the queue in ``(time, seq)`` order."""
    if last is not None and current < last:
        _fail(f"event popped out of order: {current} after {last} "
              f"(queue invariant broken)")


def check_fcfs_order(module_id: int, previous_enqueued: Optional[float],
                     enqueued: float) -> None:
    """Assert a FIFO module serves in arrival order."""
    if previous_enqueued is not None and enqueued < previous_enqueued:
        _fail(f"module {module_id} served a request enqueued at "
              f"{enqueued} after one enqueued at {previous_enqueued} "
              f"(FCFS violated)")


# -- allocations ---------------------------------------------------------

def check_allocation(alloc) -> None:
    """Assert replica-placement validity of an allocation scheme.

    Structural validity (replica count, distinct in-range devices) via
    :meth:`AllocationScheme.validate`, plus pairwise balance of the
    underlying design when the scheme exposes one.
    """
    from repro.designs.verify import verify_design

    try:
        alloc.validate()
    except ValueError as exc:
        _fail(f"allocation structurally invalid: {exc}")
    design = getattr(alloc, "design", None)
    if design is not None:
        try:
            verify_design(design)
        except ValueError as exc:
            _fail(f"allocation design loses pairwise balance: {exc}")
