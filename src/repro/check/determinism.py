"""Double-execution determinism probe.

The strongest cheap evidence that a simulation is deterministic is to
run it twice from the same seed and compare the *serialized* results
byte for byte.  Hashing the JSON catches everything the result tables
expose: event ordering, float accumulation order, RNG consumption and
dict construction order.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

__all__ = ["DeterminismProbe", "determinism_probe", "PROBE_WORKLOADS"]


@dataclass(frozen=True)
class DeterminismProbe:
    """Outcome of one double-run probe."""

    workload: str
    runs: int
    digests: List[str]
    identical: bool
    detail: str

    def to_dict(self) -> Dict[str, object]:
        return {"workload": self.workload, "runs": self.runs,
                "digests": self.digests, "identical": self.identical,
                "detail": self.detail}


def _fig8_small(seed: int) -> str:
    from repro.experiments import fig8

    return fig8.run(scale=0.15, n_intervals=3, seed=seed).to_json()


def _table3_small(seed: int) -> str:
    from repro.experiments import table3

    return table3.run(total_requests=200, seed=seed).to_json()


def _selfcheck_small(seed: int) -> str:
    from repro.core.qos import QoSFlashArray
    from repro.core.selfcheck import self_check

    qos = QoSFlashArray(n_devices=9, replication=3, accesses=1)
    return self_check(qos, trials=20, seed=seed).render()


def _runner_small(seed: int) -> str:
    """fig8 through a 2-worker process pool (uncached).

    Identity across runs proves the parallel fan-out is as
    deterministic as the serial path: per-cell seeds are derived in
    the parent and results are reassembled in submission order.
    """
    from repro.experiments import fig8
    from repro.runner import ParallelRunner

    runner = ParallelRunner(jobs=2, cache=None, auto_degrade=False)
    return fig8.run(scale=0.15, n_intervals=3, seed=seed,
                    runner=runner).to_json()


def _fastpath_small(seed: int) -> str:
    """Vectorized playback vs the DES on the same trace.

    Raises if the two engines disagree on any sample (float-exact),
    so a divergence fails the probe outright; the returned payload
    then guards both engines' determinism across runs.
    """
    from repro.experiments.common import play_original
    from repro.experiments.fig8 import make_parts

    parts = make_parts("exchange", 0.15, 3, seed)
    payload = []
    for engine in ("fast", "des"):
        series = play_original(parts, 13, engine=engine)
        payload.append(";".join(
            f"{i}:{series.stats(i).n_total}:"
            f"{series.stats(i).state()!r}"
            for i in series.intervals()))
    if payload[0] != payload[1]:
        raise ValueError(
            "fast playback diverged from the DES on the probe trace")
    return "|".join(payload)


def _obs_small(seed: int) -> str:
    """Observability sanitizer probe: one fig8 cell with obs on.

    Asserts (a) experiment outputs are byte-identical with
    observability enabled vs disabled, (b) both playback engines
    produce identical request-section payloads, and (c) on the DES
    every span opened at issue time is closed by drain time.  The
    returned blob (plain outputs + canonical payloads) then guards the
    instrumentation's own determinism across runs.
    """
    import json

    from repro import obs
    from repro.experiments import fig8
    from repro.experiments.common import play_workload
    from repro.obs.session import request_sections

    plain = fig8.run(scale=0.15, n_intervals=3, seed=seed).to_json()
    with obs.observed():
        observed = fig8.run(scale=0.15, n_intervals=3,
                            seed=seed).to_json()
    if plain != observed:
        raise ValueError(
            "experiment output changed when observability was enabled")

    parts = fig8.make_parts("exchange", 0.15, 3, seed)
    payloads = {}
    for engine in ("des", "fast"):
        with obs.observed() as session:
            play_workload(parts, n_devices=9, engine=engine)
        payloads[engine] = session.to_payload()
    sections = {engine: json.dumps(request_sections(payload),
                                   sort_keys=True)
                for engine, payload in payloads.items()}
    if sections["des"] != sections["fast"]:
        raise ValueError("observability payloads diverge between "
                         "the DES and the fast engine")
    kernel = payloads["des"]["kernel"]
    if kernel["live_opened"] != kernel["live_closed"] \
            or kernel["live_opened"] == 0:
        raise ValueError(
            f"unbalanced spans at drain time: "
            f"{kernel['live_opened']} opened, "
            f"{kernel['live_closed']} closed")
    return plain + "|" + sections["des"] + "|" + \
        json.dumps(kernel, sort_keys=True)


def _kernels_small(seed: int) -> str:
    """Kernel-equivalence probe: bitset kernels vs legacy solvers.

    Runs the retrieval-heavy workloads (the Figure 4 sampler plus the
    three batch-solving ablations) twice -- once with the
    ``repro.graph.kernels`` fast paths enabled, once with them forced
    off -- and raises unless the serialized outputs are byte-identical.
    Caches are cleared on both sides so the comparison covers the cold
    path, not a memoized answer.  The returned blob then guards the
    kernels' own run-to-run determinism.
    """
    from repro.experiments import ablations, fig4
    from repro.graph import kernels

    def harvest() -> str:
        kernels.clear_caches()
        parts = [fig4.run(max_k=12, trials=300, seed=seed).to_json(),
                 ablations.allocation_zoo(trials=60,
                                          seed=seed).to_json(),
                 ablations.query_types(trials=60, seed=seed).to_json(),
                 ablations.failure_degradation(trials=40,
                                               seed=seed).to_json()]
        return "|".join(parts)

    fast = harvest()
    with kernels.disabled():
        legacy = harvest()
    if fast != legacy:
        raise ValueError(
            "retrieval kernels diverged from the legacy solvers on "
            "the probe workloads")
    return fast


def _faults_small(seed: int) -> str:
    """Fault-injection determinism probe.

    Runs (a) the scripted-crash experiment family and (b) a stochastic
    :class:`repro.faults.FaultModel` materialization played online,
    serializing per-request timestamps, devices, retries and failure
    flags.  Identity across runs proves the entire fault path --
    seeded event materialization, down-window waits, counter-based
    read-error draws, driver failover order -- is deterministic.  Also
    asserts that an *empty* schedule leaves the fast path eligible and
    byte-identical to the healthy run (fault-free prefix identity).
    """
    import json

    from repro.experiments import faults as faults_exp
    from repro.faults import FaultModel, FaultSchedule
    from repro.flash.driver import OnlineTracePlayer, resolve_engine

    table = faults_exp.run(n_requests=180, max_failures=3,
                           seed=seed).to_json()

    if resolve_engine("auto", faults=FaultSchedule.none()) != "fast":
        raise ValueError("an empty fault schedule must keep the "
                         "fast path eligible")

    alloc = faults_exp.make_allocation("design", 9)
    arrivals = [i * 0.3 for i in range(120)]
    buckets = [i % alloc.n_buckets for i in range(120)]

    def fingerprint(played) -> str:
        return json.dumps([[p.io.issued_at, p.io.completed_at,
                            p.io.device, p.io.retries,
                            int(p.io.faulted), int(p.failed),
                            p.io.fail_reason] for p in played])

    healthy = OnlineTracePlayer(alloc, interval_ms=0.4)
    _, base = healthy.play(arrivals, buckets)
    empty = OnlineTracePlayer(alloc, interval_ms=0.4,
                              faults=FaultSchedule.none())
    _, base_empty = empty.play(arrivals, buckets)
    if fingerprint(base) != fingerprint(base_empty):
        raise ValueError("an empty fault schedule changed playback")

    model = FaultModel(down_rate=0.4, down_mean_ms=1.0,
                       slow_rate=0.4, slow_mean_ms=1.0,
                       slow_factor=3.0, error_rate=0.4,
                       error_mean_ms=1.0, error_prob=0.5)
    schedule = model.materialize(9, horizon_ms=40.0, seed=seed + 17)
    player = OnlineTracePlayer(alloc, interval_ms=0.4,
                               faults=schedule)
    if player.engine_selected != "fast":
        raise ValueError("a materialized fault schedule must keep "
                         "the fast engine")
    _, played = player.play(arrivals, buckets)
    # Cross-engine identity: the faulted replay must be byte-identical
    # to the DES on the same schedule -- a divergence fails the probe
    # outright, before the across-runs comparison even happens.
    des = OnlineTracePlayer(alloc, interval_ms=0.4,
                            faults=schedule, engine="des")
    _, played_des = des.play(arrivals, buckets)
    if fingerprint(played) != fingerprint(played_des):
        raise ValueError("faulted fast playback diverged from the "
                         "DES on the probe schedule")
    return table + "|" + schedule.cache_token() + "|" + \
        fingerprint(played)


def _controller_small(seed: int) -> str:
    """Live-controller loop probe: the whole loop, replayed.

    Asserts, before the across-runs comparison:

    * **streaming-vs-batch mining identity** -- folding each interval's
      transactions into :class:`repro.mining.streaming.\
StreamingFPGrowth` mines the exact itemsets and supports batch
      ``fpgrowth`` (and ``apriori``) reports;
    * **live-vs-offline loop identity** -- an unbudgeted, fault-free
      :class:`repro.controller.ReplicationController` run reproduces
      ``play_workload`` byte for byte: same per-request floats, same
      match rates.

    The returned payload (controller experiment table + per-request
    fingerprint + audit trail) then guards the loop's own run-to-run
    determinism.
    """
    import json

    from repro.controller import ControllerConfig, ReplicationController
    from repro.experiments import controller as controller_exp
    from repro.experiments.common import play_workload
    from repro.experiments.fig8 import make_parts
    from repro.mining.fpgrowth import fpgrowth
    from repro.mining.streaming import StreamingFPGrowth
    from repro.mining.transactions import transactions_from_trace

    parts = make_parts("exchange", 0.2, 4, seed)

    for part in parts:
        txns = transactions_from_trace(part, 0.133)
        miner = StreamingFPGrowth(min_support=1, max_size=2)
        miner.add_many(txns)
        if miner.mine() != fpgrowth(txns, 1, max_size=2):
            raise ValueError("streaming FP-growth diverged from "
                             "batch fpgrowth on a probe interval")

    offline = play_workload(parts, n_devices=9, epsilon=0.01,
                            seed=seed)
    live = ReplicationController(ControllerConfig(
        n_devices=9, epsilon=0.01, seed=seed)).run(parts)

    def fingerprint(report) -> str:
        return json.dumps([[p.index, p.interval, int(p.delayed),
                            int(p.rejected), p.io.response_ms,
                            p.io.total_ms]
                           for p in report.requests])

    if fingerprint(live.report) != fingerprint(offline.report) \
            or live.match_rates != offline.match_rates:
        raise ValueError("the live controller diverged from the "
                         "offline play_workload loop")

    table = controller_exp.run(scale=0.2, n_intervals=4,
                               seed=seed).to_json()
    audit = json.dumps([[a.part, a.boundary_ms, a.n_transactions,
                         a.n_itemsets, a.deltas_applied,
                         a.deltas_deferred, a.deltas_blocked,
                         a.migration_cost, a.match_rate, a.epsilon]
                        for a in live.audit])
    return table + "|" + fingerprint(live.report) + "|" + audit


def _admission_small(seed: int) -> str:
    """Vectorized-admission kernel probe: on-vs-off double run.

    Plays delayed-pileup, reject-overflow and faulted workloads with
    the segmented admission kernel (:mod:`repro.flash.admitpath`)
    enabled and disabled, and demands byte-identical
    :class:`~repro.core.qos.QoSReport` fingerprints -- per-request
    timestamps, devices, delay/reject flags *and* the degraded-mode
    counts ``n_failed``/``n_faulted``.  Also asserts the kernel
    actually engaged (no silent scalar fallback would make the
    comparison vacuous).  The returned payload then guards the
    kernel's own run-to-run determinism.
    """
    import json
    import random

    from repro.core.qos import QoSReport
    from repro.experiments import faults as faults_exp
    from repro.faults import FaultModel, FaultSchedule
    from repro.flash import admitpath
    from repro.flash.driver import OnlineTracePlayer, engine_tally
    from repro.flash.params import FlashParams

    alloc = faults_exp.make_allocation("design", 9)
    rng = random.Random(seed)
    burst_arr = [k * 0.4 + j * 0.001
                 for k in range(8) for j in range(30)]
    rand_arr = sorted(rng.uniform(0.0, 10.0) for _ in range(300))
    model = FaultModel(down_rate=0.4, down_mean_ms=1.0,
                       slow_rate=0.4, slow_mean_ms=1.0,
                       slow_factor=3.0, error_rate=0.4,
                       error_mean_ms=1.0, error_prob=0.5)
    cells = [
        ("pileup_delay", burst_arr, "delay", None),
        ("pileup_reject", burst_arr, "reject", None),
        ("random_delay", rand_arr, "delay", None),
        ("crash", burst_arr, "delay",
         FaultSchedule.crashes([0, 4], at=0.5)),
        ("stochastic", burst_arr, "delay",
         model.materialize(9, horizon_ms=4.0, seed=seed + 31)),
    ]

    def fingerprint(report) -> str:
        rows = [[p.index, p.interval, int(p.delayed), int(p.rejected),
                 p.io.arrival, p.io.issued_at, p.io.completed_at,
                 p.io.device, p.io.retries, int(p.io.faulted),
                 int(p.failed), p.io.fail_reason]
                for p in report.requests]
        return json.dumps([rows, report.n_failed, report.n_faulted])

    def run_cells() -> Dict[str, str]:
        out = {}
        for name, arr, overflow, faults in cells:
            player = OnlineTracePlayer(alloc, interval_ms=0.4,
                                       overflow=overflow,
                                       faults=faults)
            buckets = [i % alloc.n_buckets for i in range(len(arr))]
            series, played = player.play(arr, buckets)
            params = player.params or FlashParams()
            guarantee = player.accesses * params.read_ms
            out[name] = fingerprint(
                QoSReport(series, played, guarantee))
        return out

    before = engine_tally().get("admission.vector", 0)
    vectorized = run_cells()
    engaged = engine_tally().get("admission.vector", 0) - before
    if engaged < len(cells):
        raise ValueError(
            f"the vectorized admission kernel engaged on only "
            f"{engaged}/{len(cells)} probe cells -- the on-vs-off "
            "comparison would be vacuous")
    with admitpath.disabled():
        scalar = run_cells()
    for name in vectorized:
        if vectorized[name] != scalar[name]:
            raise ValueError(
                f"vectorized admission diverged from the scalar "
                f"loop on the {name!r} probe cell")
    return "|".join(f"{k}:{v}" for k, v in sorted(vectorized.items()))


def _cluster_small(seed: int) -> str:
    """Sharded-cluster probe: the scale-out layer, replayed.

    Asserts, before the across-runs comparison:

    * **1-shard identity** -- a 1-array cluster reproduces
      ``play_workload`` byte for byte (same interval-series state),
      so the scale-out layer adds nothing at N=1;
    * **mode identity** -- the serial streaming path (routing sync
      off) and the parallel-runner cell path produce identical
      :class:`~repro.cluster.ClusterReport` fingerprints.

    The returned payload (cluster experiment table + 4-array cluster
    fingerprint) then guards the layer's run-to-run determinism:
    sharding, mirror planning, replica routing and the mergeable
    roll-up.
    """
    from repro.cluster import ClusterConfig, ShardedCluster
    from repro.experiments import cluster as cluster_exp
    from repro.experiments.common import play_workload
    from repro.experiments.fig8 import make_parts
    from repro.runner import ParallelRunner

    parts = make_parts("exchange", 0.2, 4, seed)

    single = play_workload(parts, n_devices=9, seed=seed)
    one = ShardedCluster(ClusterConfig(
        n_arrays=1, n_devices=9, cross_replication=1,
        seed=seed)).play(parts)
    if one.series.state() != single.report.series.state():
        raise ValueError("a 1-array cluster diverged from the "
                         "single-array pipeline")

    config = ClusterConfig(n_arrays=4, n_devices=9,
                           cross_replication=2, seed=seed)
    serial = ShardedCluster(config).play(parts, router_sync=False)
    runner = ParallelRunner(jobs=2, cache=None, auto_degrade=False)
    celled = ShardedCluster(config).play(parts, runner=runner)
    if serial.fingerprint() != celled.fingerprint():
        raise ValueError("the serial cluster path diverged from the "
                         "parallel-runner cell path")

    table = cluster_exp.run(scale=0.2, n_intervals=4,
                            seed=seed).to_json()
    synced = ShardedCluster(config).play(parts)
    return table + "|" + synced.fingerprint() + "|" + \
        serial.fingerprint()


#: name -> callable(seed) -> serialized result string
PROBE_WORKLOADS: Dict[str, Callable[[int], str]] = {
    "fig8": _fig8_small,
    "table3": _table3_small,
    "selfcheck": _selfcheck_small,
    "runner": _runner_small,
    "fastpath": _fastpath_small,
    "obs": _obs_small,
    "kernels": _kernels_small,
    "faults": _faults_small,
    "controller": _controller_small,
    "admission": _admission_small,
    "cluster": _cluster_small,
}


def determinism_probe(workload: str = "fig8", seed: int = 0,
                      runs: int = 2,
                      runner: Optional[Callable[[int], str]] = None,
                      ) -> DeterminismProbe:
    """Run ``workload`` ``runs`` times from ``seed``; demand identity.

    Parameters
    ----------
    workload:
        Key into :data:`PROBE_WORKLOADS` (ignored when ``runner`` is
        given, except as the label).
    runner:
        Override callable ``seed -> serialized-result`` for tests.
    """
    if runs < 2:
        raise ValueError("a determinism probe needs at least 2 runs")
    if runner is None:
        if workload not in PROBE_WORKLOADS:
            raise ValueError(
                f"unknown probe workload {workload!r}; "
                f"choose from {sorted(PROBE_WORKLOADS)}")
        runner = PROBE_WORKLOADS[workload]
    digests = []
    for _ in range(runs):
        payload = runner(seed)
        digests.append(hashlib.sha256(
            payload.encode("utf-8")).hexdigest())
    identical = len(set(digests)) == 1
    detail = (f"{runs} seeded runs bit-identical "
              f"(sha256 {digests[0][:12]}...)" if identical else
              f"digests diverge across {runs} runs: {digests}")
    return DeterminismProbe(workload=workload, runs=runs,
                            digests=digests, identical=identical,
                            detail=detail)
