"""Contract propagation: failure-mask arguments must be forwarded.

The fault-injection layer threads *contracts* through the call tree:
``excluded=`` (dead devices), ``faults=`` (the schedule), ``masked_at``
(time-dependent masks).  The invariant is simple and brutal: **a
function that accepts a contract parameter must forward it to every
callee that also accepts it.**  A call that silently omits it computes
over the healthy array while the caller believes the mask is in force
-- the exact class of bug PR 5 had to find by hand, one golden diff at
a time.

For every function ``F`` with contract parameter ``p`` and every call
``F -> G`` where ``G`` (function, method or class constructor) also
accepts ``p``, the call must cover ``p`` by one of:

* keyword: ``G(..., p=...)`` (any value -- masking with a transformed
  or narrowed contract is still a deliberate decision);
* position: enough positional arguments to reach ``p``'s slot;
* splat: ``G(..., **kw)`` may carry it (assumed, to stay quiet);

otherwise the site is reported.  Deliberate drops (the contract was
consumed, e.g. candidates were already masked) carry a
``# repro: allow[contract-flow]`` pragma that doubles as reviewer
documentation.
"""

from __future__ import annotations

from typing import List

from repro.check.flow.config import FlowConfig
from repro.check.flow.findings import Finding
from repro.check.flow.project import ProjectModel

__all__ = ["ContractFlowPass"]

PASS_ID = "contract-flow"


class ContractFlowPass:
    """Report call sites that drop a live contract parameter."""

    pass_id = PASS_ID

    def run(self, model: ProjectModel,
            config: FlowConfig) -> List[Finding]:
        contract = tuple(config.contract_params)
        findings: List[Finding] = []
        for module, summary in model.modules.items():
            for fn in summary.functions:
                held = [p for p in fn.params if p in contract]
                if not held:
                    continue
                cls_ctx = fn.qualname.split(".")[0] \
                    if "." in fn.qualname else None
                for site in fn.calls:
                    callee = model.resolve_callee(module, site,
                                                  cls_ctx, fn)
                    if callee is None:
                        continue
                    callee_params = model.callable_params(callee)
                    if not callee_params:
                        continue
                    for p in held:
                        if p not in callee_params:
                            continue
                        if self._covered(site, callee_params, p):
                            continue
                        if summary.is_allowed((PASS_ID,), site.line):
                            continue
                        callee_name = callee.split(":", 1)[1]
                        findings.append(Finding(
                            pass_id=PASS_ID, path=summary.path,
                            line=site.line, symbol=fn.qualname,
                            message=(f"call to {callee_name} drops "
                                     f"contract parameter {p!r} "
                                     f"held by {fn.qualname}; "
                                     f"forward it (or pragma a "
                                     f"deliberate consume)")))
        findings.sort(key=Finding.sort_key)
        return findings

    @staticmethod
    def _covered(site, callee_params, p: str) -> bool:
        if site.has_star_kwargs:
            return True
        if p in site.keyword_names():
            return True
        index = callee_params.index(p)
        return site.n_pos > index
