"""Per-file fact extraction: one AST walk, one plain-data summary.

The interprocedural passes never touch an AST.  Each source file is
reduced -- once, and cached by content hash -- to a
:class:`ModuleSummary`: import bindings, the symbol table of top-level
functions/classes, and for every function a :class:`FunctionSummary`
holding its call sites, nondeterminism source facts, RNG constructions
(with a local seed-provenance classification) and pickle hazards.

Summaries are deliberately *plain data* (tuples, strings, ints) so
they round-trip through JSON -- that is what makes the incremental
result cache (:mod:`repro.check.flow.engine`) possible: a warm run
deserializes summaries for unchanged files instead of re-parsing them.

Nesting is flattened: facts inside nested functions, lambdas and
comprehensions are folded into the enclosing top-level function (or
method), which over-approximates reachability exactly the way a taint
analysis wants.
"""

from __future__ import annotations

import ast
import hashlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

__all__ = ["CallSite", "SourceFact", "RngConstruction",
           "FunctionSummary", "ImportBinding", "ClassInfo",
           "ModuleSummary", "summarize_source", "MODULE_BODY"]

#: pseudo-function name for module-level code
MODULE_BODY = "<module>"

#: dotted names whose *call* reads the host clock
_WALL_CLOCK = {
    ("time", "time"), ("time", "time_ns"),
    ("time", "monotonic"), ("time", "monotonic_ns"),
    ("time", "perf_counter"), ("time", "perf_counter_ns"),
    ("time", "process_time"), ("time", "process_time_ns"),
    ("datetime", "now"), ("datetime", "utcnow"), ("datetime", "today"),
    ("date", "today"),
}

_NUMPY_ALIASES = {"np", "numpy"}

#: numpy.random members that do not touch the hidden global state
_NP_RANDOM_OK = {"default_rng", "Generator", "SeedSequence", "PCG64",
                 "Philox", "BitGenerator", "RandomState"}

#: stdlib random module functions backed by the global Twister
_STDLIB_RANDOM_FNS = {
    "random", "randint", "randrange", "choice", "choices", "shuffle",
    "sample", "uniform", "gauss", "normalvariate", "expovariate",
    "betavariate", "gammavariate", "lognormvariate", "paretovariate",
    "weibullvariate", "triangular", "vonmisesvariate", "getrandbits",
    "randbytes",
}

#: RNG constructors the seed-flow pass audits: dotted suffix -> kind
_RNG_CONSTRUCTORS = {
    ("default_rng",): "default_rng",
    ("Random",): "Random",
    ("RandomState",): "RandomState",
    ("SeedSequence",): "SeedSequence",
}


def _dotted(node: ast.AST) -> Optional[Tuple[str, ...]]:
    """``a.b.c`` as ``("a", "b", "c")``; None for anything richer."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return tuple(reversed(parts))
    return None


@dataclass(frozen=True)
class CallSite:
    """One call expression inside a function body."""

    callee: Tuple[str, ...]
    line: int
    n_pos: int
    #: dotted name of each positional arg when it is a plain name/attr
    pos_dotted: Tuple[Optional[Tuple[str, ...]], ...]
    #: keyword name -> dotted value (or None), in source order
    keywords: Tuple[Tuple[str, Optional[Tuple[str, ...]]], ...]
    has_star_kwargs: bool
    #: pickle hazards per positional arg subtree ("lambda", "genexp",
    #: "open-call", "local-def:<name>")
    pos_hazards: Tuple[Tuple[str, ...], ...]
    kw_hazards: Tuple[Tuple[str, Tuple[str, ...]], ...]

    def keyword_names(self) -> Tuple[str, ...]:
        return tuple(k for k, _ in self.keywords)

    def to_dict(self) -> Dict[str, object]:
        return {
            "callee": list(self.callee), "line": self.line,
            "n_pos": self.n_pos,
            "pos_dotted": [list(d) if d else None
                           for d in self.pos_dotted],
            "keywords": [[k, list(v) if v else None]
                         for k, v in self.keywords],
            "has_star_kwargs": self.has_star_kwargs,
            "pos_hazards": [list(h) for h in self.pos_hazards],
            "kw_hazards": [[k, list(h)] for k, h in self.kw_hazards],
        }

    @classmethod
    def from_dict(cls, d: Dict[str, object]) -> "CallSite":
        return cls(
            callee=tuple(d["callee"]), line=int(d["line"]),
            n_pos=int(d["n_pos"]),
            pos_dotted=tuple(tuple(x) if x else None
                             for x in d["pos_dotted"]),
            keywords=tuple((k, tuple(v) if v else None)
                           for k, v in d["keywords"]),
            has_star_kwargs=bool(d["has_star_kwargs"]),
            pos_hazards=tuple(tuple(h) for h in d["pos_hazards"]),
            kw_hazards=tuple((k, tuple(h)) for k, h in d["kw_hazards"]),
        )


@dataclass(frozen=True)
class SourceFact:
    """A syntactic witness of nondeterminism inside a function."""

    kind: str  # wall-clock | unseeded-rng | set-iteration | builtin-hash
    line: int
    detail: str

    def to_dict(self) -> Dict[str, object]:
        return {"kind": self.kind, "line": self.line,
                "detail": self.detail}

    @classmethod
    def from_dict(cls, d: Dict[str, object]) -> "SourceFact":
        return cls(kind=str(d["kind"]), line=int(d["line"]),
                   detail=str(d["detail"]))


@dataclass(frozen=True)
class RngConstruction:
    """One RNG/SeedSequence construction with its seed provenance.

    ``seed_from`` classifies where the seed expression's entropy comes
    from, by a local forward def-use scan:

    * ``"param"`` -- derives from a parameter (or ``self``/``cls``
      attribute) of the enclosing function: threadable, fine;
    * ``"constant"`` -- a literal constant at the construction site;
    * ``"module-const"`` -- a module-level name, not threaded through
      the function's parameters;
    * ``"missing"`` -- no seed argument at all (entropy-seeded);
    * ``"other"`` -- references only locals of unknown provenance.
    """

    kind: str
    line: int
    seed_from: str
    detail: str

    def to_dict(self) -> Dict[str, object]:
        return {"kind": self.kind, "line": self.line,
                "seed_from": self.seed_from, "detail": self.detail}

    @classmethod
    def from_dict(cls, d: Dict[str, object]) -> "RngConstruction":
        return cls(kind=str(d["kind"]), line=int(d["line"]),
                   seed_from=str(d["seed_from"]),
                   detail=str(d["detail"]))


@dataclass(frozen=True)
class FunctionSummary:
    """Everything the passes need to know about one function."""

    qualname: str  # "func", "Class.method", or MODULE_BODY
    line: int
    #: positional + keyword-only parameter names, in order, with the
    #: leading self/cls of methods *included* (resolution strips it)
    params: Tuple[str, ...]
    has_kwargs: bool
    is_method: bool
    calls: Tuple[CallSite, ...]
    sources: Tuple[SourceFact, ...]
    rngs: Tuple[RngConstruction, ...]
    #: names of functions/classes defined *inside* this function
    local_defs: Tuple[str, ...]
    #: local name -> dotted constructor it was assigned from
    #: (``sampler = OptimalRetrievalSampler(...)``)
    local_types: Tuple[Tuple[str, Tuple[str, ...]], ...] = ()

    def local_type_map(self) -> Dict[str, Tuple[str, ...]]:
        return dict(self.local_types)

    def to_dict(self) -> Dict[str, object]:
        return {
            "qualname": self.qualname, "line": self.line,
            "params": list(self.params),
            "has_kwargs": self.has_kwargs,
            "is_method": self.is_method,
            "calls": [c.to_dict() for c in self.calls],
            "sources": [s.to_dict() for s in self.sources],
            "rngs": [r.to_dict() for r in self.rngs],
            "local_defs": list(self.local_defs),
            "local_types": [[n, list(t)] for n, t in self.local_types],
        }

    @classmethod
    def from_dict(cls, d: Dict[str, object]) -> "FunctionSummary":
        return cls(
            qualname=str(d["qualname"]), line=int(d["line"]),
            params=tuple(d["params"]),
            has_kwargs=bool(d["has_kwargs"]),
            is_method=bool(d["is_method"]),
            calls=tuple(CallSite.from_dict(c) for c in d["calls"]),
            sources=tuple(SourceFact.from_dict(s)
                          for s in d["sources"]),
            rngs=tuple(RngConstruction.from_dict(r)
                       for r in d["rngs"]),
            local_defs=tuple(d["local_defs"]),
            local_types=tuple((n, tuple(t))
                              for n, t in d["local_types"]),
        )


@dataclass(frozen=True)
class ImportBinding:
    """One name bound by an import statement."""

    local: str
    module: str
    symbol: Optional[str]  # None for a plain module import
    line: int

    def to_dict(self) -> Dict[str, object]:
        return {"local": self.local, "module": self.module,
                "symbol": self.symbol, "line": self.line}

    @classmethod
    def from_dict(cls, d: Dict[str, object]) -> "ImportBinding":
        return cls(local=str(d["local"]), module=str(d["module"]),
                   symbol=d["symbol"], line=int(d["line"]))


@dataclass(frozen=True)
class ClassInfo:
    """Top-level class: bases (as written) and dataclass-style fields."""

    name: str
    line: int
    bases: Tuple[Tuple[str, ...], ...]
    #: annotated class-body assignments, in order -- the implicit
    #: ``__init__`` signature of dataclasses
    fields: Tuple[str, ...]
    methods: Tuple[str, ...]
    #: instance attribute -> dotted constructor (``self.m = Matcher(...)``)
    attr_types: Tuple[Tuple[str, Tuple[str, ...]], ...] = ()

    def attr_type_map(self) -> Dict[str, Tuple[str, ...]]:
        return dict(self.attr_types)

    def to_dict(self) -> Dict[str, object]:
        return {"name": self.name, "line": self.line,
                "bases": [list(b) for b in self.bases],
                "fields": list(self.fields),
                "methods": list(self.methods),
                "attr_types": [[n, list(t)]
                               for n, t in self.attr_types]}

    @classmethod
    def from_dict(cls, d: Dict[str, object]) -> "ClassInfo":
        return cls(name=str(d["name"]), line=int(d["line"]),
                   bases=tuple(tuple(b) for b in d["bases"]),
                   fields=tuple(d["fields"]),
                   methods=tuple(d["methods"]),
                   attr_types=tuple((n, tuple(t))
                                    for n, t in d["attr_types"]))


@dataclass
class ModuleSummary:
    """The complete per-file fact base, JSON-round-trippable."""

    module: str
    path: str
    sha256: str
    imports: Tuple[ImportBinding, ...]
    functions: Tuple[FunctionSummary, ...]
    classes: Tuple[ClassInfo, ...]
    #: module-level ``NAME = <plain name/attr>`` aliases
    aliases: Tuple[Tuple[str, Tuple[str, ...]], ...]
    #: module-level names bound to constants
    constants: Tuple[str, ...]
    #: pragma line -> waived ids
    pragmas: Tuple[Tuple[int, Tuple[str, ...]], ...]

    def to_dict(self) -> Dict[str, object]:
        return {
            "module": self.module, "path": self.path,
            "sha256": self.sha256,
            "imports": [i.to_dict() for i in self.imports],
            "functions": [f.to_dict() for f in self.functions],
            "classes": [c.to_dict() for c in self.classes],
            "aliases": [[n, list(t)] for n, t in self.aliases],
            "constants": list(self.constants),
            "pragmas": [[line, list(ids)]
                        for line, ids in self.pragmas],
        }

    @classmethod
    def from_dict(cls, d: Dict[str, object]) -> "ModuleSummary":
        return cls(
            module=str(d["module"]), path=str(d["path"]),
            sha256=str(d["sha256"]),
            imports=tuple(ImportBinding.from_dict(i)
                          for i in d["imports"]),
            functions=tuple(FunctionSummary.from_dict(f)
                            for f in d["functions"]),
            classes=tuple(ClassInfo.from_dict(c)
                          for c in d["classes"]),
            aliases=tuple((n, tuple(t)) for n, t in d["aliases"]),
            constants=tuple(d["constants"]),
            pragmas=tuple((int(line), tuple(ids))
                          for line, ids in d["pragmas"]),
        )

    def pragma_map(self) -> Dict[int, Tuple[str, ...]]:
        return dict(self.pragmas)

    def is_allowed(self, ids: Tuple[str, ...], line: int) -> bool:
        """True if any of ``ids`` (or ``*``) is waived on ``line``."""
        pragmas = self.pragma_map()
        for candidate in (line, line - 1):
            waived = pragmas.get(candidate)
            if waived and ("*" in waived
                           or any(i in waived for i in ids)):
                return True
        return False


# ---------------------------------------------------------------------------
# extraction
# ---------------------------------------------------------------------------

def _resolve_relative(module: str, level: int,
                      target: Optional[str], is_package: bool) -> str:
    """Absolute module for a ``from ...x import y`` statement."""
    if level == 0:
        return target or ""
    parts = module.split(".")
    if not is_package:
        parts = parts[:-1]
    if level > 1:
        parts = parts[:len(parts) - (level - 1)]
    if target:
        parts = parts + target.split(".")
    return ".".join(parts)


def _arg_hazards(node: ast.AST, local_defs: frozenset,
                 lambda_locals: frozenset) -> Tuple[str, ...]:
    """Pickle hazards anywhere inside one argument expression."""
    hazards: List[str] = []
    for sub in ast.walk(node):
        if isinstance(sub, ast.Lambda):
            hazards.append("lambda")
        elif isinstance(sub, ast.GeneratorExp):
            hazards.append("genexp")
        elif isinstance(sub, ast.Call) \
                and isinstance(sub.func, ast.Name) \
                and sub.func.id == "open":
            hazards.append("open-call")
        elif isinstance(sub, ast.Name):
            if sub.id in local_defs:
                hazards.append(f"local-def:{sub.id}")
            elif sub.id in lambda_locals:
                hazards.append("lambda")
    return tuple(dict.fromkeys(hazards))


class _FunctionCollector:
    """Accumulates the facts for one top-level function (flattened)."""

    def __init__(self, qualname: str, line: int,
                 params: Tuple[str, ...], has_kwargs: bool,
                 is_method: bool):
        self.qualname = qualname
        self.line = line
        self.params = params
        self.has_kwargs = has_kwargs
        self.is_method = is_method
        self.calls: List[CallSite] = []
        self.sources: List[SourceFact] = []
        self.rngs: List[RngConstruction] = []
        self.local_defs: List[str] = []
        #: names proven to derive from a parameter
        self.derived = set(params) | {"self", "cls"}
        #: local names bound to lambdas (pickle hazard by reference)
        self.lambda_locals: set = set()
        #: local name -> dotted constructor (first assignment wins)
        self.local_types: Dict[str, Tuple[str, ...]] = {}

    def finish(self) -> FunctionSummary:
        return FunctionSummary(
            qualname=self.qualname, line=self.line, params=self.params,
            has_kwargs=self.has_kwargs, is_method=self.is_method,
            calls=tuple(self.calls), sources=tuple(self.sources),
            rngs=tuple(self.rngs),
            local_defs=tuple(dict.fromkeys(self.local_defs)),
            local_types=tuple(sorted(self.local_types.items())))


def _params_of(node) -> Tuple[Tuple[str, ...], bool]:
    args = node.args
    names = [a.arg for a in args.posonlyargs + args.args
             + args.kwonlyargs]
    return tuple(names), args.kwarg is not None


def _names_in(node: ast.AST) -> List[str]:
    out = []
    for sub in ast.walk(node):
        if isinstance(sub, ast.Name):
            out.append(sub.id)
        elif isinstance(sub, ast.Attribute):
            base = sub.value
            if isinstance(base, ast.Name) and base.id in ("self", "cls"):
                out.append(base.id)
    return out


def _assign_targets(node: ast.AST) -> List[str]:
    out = []
    stack = [node]
    while stack:
        t = stack.pop()
        if isinstance(t, ast.Name):
            out.append(t.id)
        elif isinstance(t, (ast.Tuple, ast.List)):
            stack.extend(t.elts)
        elif isinstance(t, ast.Starred):
            stack.append(t.value)
    return out


class _Extractor(ast.NodeVisitor):
    """One pass over a module AST producing all function summaries."""

    def __init__(self, module: str):
        self.module = module
        self.functions: List[FunctionSummary] = []
        self.classes: List[ClassInfo] = []
        self.imports: List[ImportBinding] = []
        self.aliases: List[Tuple[str, Tuple[str, ...]]] = []
        self.constants: List[str] = []
        self._class: Optional[str] = None
        self._collector: Optional[_FunctionCollector] = None
        self._module_collector = _FunctionCollector(
            MODULE_BODY, 1, (), False, False)
        self._class_fields: List[str] = []
        self._class_methods: List[str] = []
        self._class_attr_types: Dict[str, Tuple[str, ...]] = {}

    # -- imports --------------------------------------------------------
    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            local = alias.asname or alias.name.split(".")[0]
            target = alias.name if alias.asname else \
                alias.name.split(".")[0]
            self.imports.append(ImportBinding(
                local=local, module=target, symbol=None,
                line=node.lineno))
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        base = _resolve_relative(self.module, node.level, node.module,
                                 self._is_package)
        for alias in node.names:
            if alias.name == "*":
                continue
            self.imports.append(ImportBinding(
                local=alias.asname or alias.name, module=base,
                symbol=alias.name, line=node.lineno))
        self.generic_visit(node)

    _is_package = False  # set by summarize_source

    # -- definitions ----------------------------------------------------
    def _visit_def(self, node) -> None:
        if self._collector is not None:
            # nested def: record the name, fold the body into the
            # enclosing top-level function
            self._collector.local_defs.append(node.name)
            self.generic_visit(node)
            return
        params, has_kwargs = _params_of(node)
        qual = f"{self._class}.{node.name}" if self._class else node.name
        collector = _FunctionCollector(qual, node.lineno, params,
                                       has_kwargs,
                                       is_method=self._class is not None)
        self._collector = collector
        if self._class is not None:
            self._class_methods.append(node.name)
        self.generic_visit(node)
        self._collector = None
        self.functions.append(collector.finish())

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._visit_def(node)

    def visit_AsyncFunctionDef(self, node) -> None:
        self._visit_def(node)

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        if self._collector is not None:
            self._collector.local_defs.append(node.name)
            self.generic_visit(node)
            return
        if self._class is not None:
            # nested class inside a class body: skip the fine detail
            self.generic_visit(node)
            return
        self._class = node.name
        self._class_fields = []
        self._class_methods = []
        self._class_attr_types = {}
        self.generic_visit(node)
        bases = tuple(d for d in (_dotted(b) for b in node.bases)
                      if d is not None)
        self.classes.append(ClassInfo(
            name=node.name, line=node.lineno, bases=bases,
            fields=tuple(self._class_fields),
            methods=tuple(self._class_methods),
            attr_types=tuple(sorted(self._class_attr_types.items()))))
        self._class = None

    # -- assignments ----------------------------------------------------
    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if self._class is not None and self._collector is None \
                and isinstance(node.target, ast.Name):
            self._class_fields.append(node.target.id)
        self._note_assignment(node, [node.target] if node.value else [])
        self.generic_visit(node)

    def visit_Assign(self, node: ast.Assign) -> None:
        self._note_assignment(node, node.targets)
        self.generic_visit(node)

    def _note_assignment(self, node, targets) -> None:
        value = getattr(node, "value", None)
        if value is None:
            return
        collector = self._collector
        if collector is not None:
            names = [n for t in targets for n in _assign_targets(t)]
            if any(n in collector.derived for n in _names_in(value)):
                collector.derived.update(names)
            if isinstance(value, ast.Lambda):
                collector.lambda_locals.update(names)
            if isinstance(value, ast.Call):
                ctor = _dotted(value.func)
                if ctor is not None:
                    for n in names:
                        collector.local_types.setdefault(n, ctor)
                    for t in targets:
                        if isinstance(t, ast.Attribute) \
                                and isinstance(t.value, ast.Name) \
                                and t.value.id == "self":
                            self._class_attr_types.setdefault(
                                t.attr, ctor)
            return
        if self._class is None:
            # module level: record aliases and constants
            for t in targets:
                if not isinstance(t, ast.Name):
                    continue
                dotted = _dotted(value)
                if dotted is not None:
                    self.aliases.append((t.id, dotted))
                elif isinstance(value, ast.Constant):
                    self.constants.append(t.id)

    def visit_For(self, node: ast.For) -> None:
        collector = self._collector
        if collector is not None \
                and any(n in collector.derived
                        for n in _names_in(node.iter)):
            collector.derived.update(_assign_targets(node.target))
        self._check_set_iteration(node)
        self.generic_visit(node)

    # -- facts ----------------------------------------------------------
    def _sink_collector(self) -> _FunctionCollector:
        return self._collector if self._collector is not None \
            else self._module_collector

    def _check_set_iteration(self, node: ast.For) -> None:
        from repro.check.rules.ordering import _is_unordered_set

        if _is_unordered_set(node.iter):
            self._sink_collector().sources.append(SourceFact(
                kind="set-iteration", line=node.lineno,
                detail="for-loop over an unordered set"))

    def visit_Call(self, node: ast.Call) -> None:
        collector = self._sink_collector()
        dotted = _dotted(node.func)
        if dotted is not None:
            self._record_call(collector, node, dotted)
            self._record_sources(collector, node, dotted)
            self._record_rng(collector, node, dotted)
        self.generic_visit(node)

    def _record_call(self, collector: _FunctionCollector,
                     node: ast.Call, dotted: Tuple[str, ...]) -> None:
        local_defs = frozenset(collector.local_defs)
        lambda_locals = frozenset(collector.lambda_locals)
        pos_dotted = tuple(_dotted(a) for a in node.args)
        keywords = tuple((kw.arg, _dotted(kw.value))
                         for kw in node.keywords
                         if kw.arg is not None)
        has_star = any(kw.arg is None for kw in node.keywords)
        pos_hazards = tuple(_arg_hazards(a, local_defs, lambda_locals)
                            for a in node.args)
        kw_hazards = tuple(
            (kw.arg, _arg_hazards(kw.value, local_defs, lambda_locals))
            for kw in node.keywords if kw.arg is not None)
        collector.calls.append(CallSite(
            callee=dotted, line=node.lineno, n_pos=len(node.args),
            pos_dotted=pos_dotted, keywords=keywords,
            has_star_kwargs=has_star, pos_hazards=pos_hazards,
            kw_hazards=kw_hazards))

    def _record_sources(self, collector: _FunctionCollector,
                        node: ast.Call,
                        dotted: Tuple[str, ...]) -> None:
        line = node.lineno
        name = ".".join(dotted)
        if len(dotted) >= 2 and (dotted[-2], dotted[-1]) in _WALL_CLOCK \
                and len(dotted) <= 3:
            collector.sources.append(SourceFact(
                kind="wall-clock", line=line,
                detail=f"{name}() reads the host clock"))
        elif len(dotted) == 3 and dotted[0] in _NUMPY_ALIASES \
                and dotted[1] == "random":
            if dotted[2] == "default_rng" and not node.args \
                    and not node.keywords:
                collector.sources.append(SourceFact(
                    kind="unseeded-rng", line=line,
                    detail="default_rng() without a seed"))
            elif dotted[2] not in _NP_RANDOM_OK and dotted[2] != "seed":
                collector.sources.append(SourceFact(
                    kind="unseeded-rng", line=line,
                    detail=f"{name} uses the hidden global "
                           f"RandomState"))
        elif len(dotted) == 2 and dotted[0] == "random" \
                and dotted[1] in _STDLIB_RANDOM_FNS:
            collector.sources.append(SourceFact(
                kind="unseeded-rng", line=line,
                detail=f"{name} draws from the process-global "
                       f"Twister"))
        elif dotted in (("id",), ("hash",)):
            collector.sources.append(SourceFact(
                kind="builtin-hash", line=line,
                detail=f"{dotted[0]}() is process-salted / "
                       f"address-derived"))

    def _record_rng(self, collector: _FunctionCollector,
                    node: ast.Call, dotted: Tuple[str, ...]) -> None:
        kind = None
        if len(dotted) == 3 and dotted[0] in _NUMPY_ALIASES \
                and dotted[1] == "random" \
                and (dotted[2],) in _RNG_CONSTRUCTORS:
            kind = _RNG_CONSTRUCTORS[(dotted[2],)]
        elif len(dotted) == 2 and dotted[0] == "random" \
                and dotted[1] == "Random":
            kind = "Random"
        elif len(dotted) == 1 and dotted in _RNG_CONSTRUCTORS:
            kind = _RNG_CONSTRUCTORS[dotted]
        if kind is None:
            return
        seed_args = [a for a in node.args
                     if not isinstance(a, ast.Starred)]
        for kw in node.keywords:
            if kw.arg in ("seed", "entropy", "x"):
                seed_args.append(kw.value)
        if not seed_args:
            seed_from, detail = "missing", "no seed argument"
        else:
            expr = seed_args[0]
            names = _names_in(expr)
            if isinstance(expr, ast.Constant):
                seed_from = "constant"
                detail = f"literal seed {expr.value!r}"
            elif any(n in collector.derived for n in names):
                seed_from, detail = "param", ""
            elif names and all(n in self._module_constants()
                               for n in names):
                seed_from = "module-const"
                detail = (f"seed comes from module constant(s) "
                          f"{', '.join(sorted(set(names)))}")
            elif not names:
                # expression of constants only, e.g. 1 + 2
                seed_from, detail = "constant", "constant expression"
            else:
                seed_from, detail = "other", ""
        collector.rngs.append(RngConstruction(
            kind=kind, line=node.lineno, seed_from=seed_from,
            detail=detail))

    def _module_constants(self) -> frozenset:
        return frozenset(self.constants)


def summarize_source(source: str, *, module: str, path: str,
                     is_package: bool = False,
                     sha256: Optional[str] = None) -> ModuleSummary:
    """Extract the :class:`ModuleSummary` of one source string."""
    from repro.check.lint import _collect_pragmas

    tree = ast.parse(source, filename=path)
    extractor = _Extractor(module)
    extractor._is_package = is_package
    extractor.visit(tree)
    functions = list(extractor.functions)
    functions.append(extractor._module_collector.finish())
    digest = sha256 if sha256 is not None else \
        hashlib.sha256(source.encode("utf-8")).hexdigest()
    pragmas = tuple(sorted(
        (line, tuple(sorted(ids)))
        for line, ids in _collect_pragmas(source).items()))
    return ModuleSummary(
        module=module, path=path, sha256=digest,
        imports=tuple(extractor.imports),
        functions=tuple(functions),
        classes=tuple(extractor.classes),
        aliases=tuple(extractor.aliases),
        constants=tuple(extractor.constants),
        pragmas=pragmas)
