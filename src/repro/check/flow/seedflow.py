"""Seed-flow: every RNG construction must be threadable from params.

The repository's reproducibility story hinges on one discipline: a
random stream is a pure function of an integer seed that the caller
-- ultimately the experiment harness -- controls.  The extraction
layer classifies the seed expression of every ``default_rng`` /
``Random`` / ``RandomState`` / ``SeedSequence`` construction by a
local def-use scan; this pass flags the constructions whose entropy
provably does *not* flow in through the enclosing function's
parameters:

* ``missing``  -- no seed at all (OS entropy; never reproduces);
* ``constant`` -- a literal at the construction site (cannot be swept
  or varied by the harness: the hidden-pin bug);
* ``module-const`` -- a module-level constant, same problem one
  indirection later;
* any construction at module import time (no parameters exist to
  thread a seed through).

Parameter-derived seeds -- including ``self.seed`` attributes and
locals computed from parameters (``seed ^ 0x5EED``, spawned
sequences) -- pass.  ``seed_from == "other"`` (locals of unknown
provenance) is deliberately not flagged: the goal is zero noisy
findings, enforced by the empty committed baseline.

Suppress a deliberate fixed stream with ``# repro: allow[seed-flow]``.
"""

from __future__ import annotations

from typing import List

from repro.check.flow.config import FlowConfig
from repro.check.flow.findings import Finding
from repro.check.flow.project import ProjectModel
from repro.check.flow.summary import MODULE_BODY

__all__ = ["SeedFlowPass"]

PASS_ID = "seed-flow"

_FLAGGED = {
    "missing": "is constructed without a seed (entropy-seeded)",
    "constant": "pins its seed to a literal constant",
    "module-const": "takes its seed from a module constant",
}


class SeedFlowPass:
    """Flag RNGs whose seed cannot be threaded from experiment params."""

    pass_id = PASS_ID

    def run(self, model: ProjectModel,
            config: FlowConfig) -> List[Finding]:
        findings: List[Finding] = []
        for summary in model.modules.values():
            for fn in summary.functions:
                at_module = fn.qualname == MODULE_BODY
                for rng in fn.rngs:
                    if at_module:
                        reason = ("is constructed at module import "
                                  "time, where no seed parameter can "
                                  "reach it")
                    elif rng.seed_from in _FLAGGED:
                        reason = _FLAGGED[rng.seed_from]
                    else:
                        continue
                    if summary.is_allowed((PASS_ID, "unseeded-rng"),
                                          rng.line):
                        continue
                    symbol = summary.module if at_module \
                        else fn.qualname
                    detail = f" [{rng.detail}]" if rng.detail else ""
                    findings.append(Finding(
                        pass_id=PASS_ID, path=summary.path,
                        line=rng.line, symbol=symbol,
                        message=(f"{rng.kind}(...) {reason}; thread "
                                 f"the seed through a parameter "
                                 f"derived from experiment "
                                 f"params{detail}")))
        findings.sort(key=Finding.sort_key)
        return findings
