"""The analysis engine: incremental extraction, passes, reporting.

``analyze`` is the library entry point behind ``python -m repro.check
--all``: it walks the source tree, (re)extracts per-file summaries,
builds the :class:`~repro.check.flow.project.ProjectModel` and runs
the four registered passes.

Incrementality: summaries are cached on disk keyed by each file's
sha256 (plus the analyzer schema version and Python minor version).
Extraction -- the only AST work -- is skipped for unchanged files, so
a warm run is bounded by JSON deserialization and the interprocedural
propagation itself, both of which are fast enough for a pre-commit
hook; the acceptance test pins <10 s cold and <2 s warm on this tree.
The cache is *content*-addressed per file: editing one module
re-extracts one summary, and the propagation (which is global by
nature) always re-runs over the full summary set, so results never go
stale the way a per-file *result* cache would.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

from repro.check.flow.config import PASS_CATALOG, FlowConfig
from repro.check.flow.contracts import ContractFlowPass
from repro.check.flow.findings import Baseline, Finding
from repro.check.flow.picklesafety import PickleSafetyPass
from repro.check.flow.project import ProjectModel
from repro.check.flow.seedflow import SeedFlowPass
from repro.check.flow.summary import ModuleSummary, summarize_source
from repro.check.flow.taint import TaintPass

__all__ = ["FlowReport", "analyze", "build_model", "ALL_PASSES",
           "default_cache_path", "default_baseline_path"]

#: bump when the summary schema or pass semantics change: stale cache
#: entries must re-extract, not deserialize into garbage
ANALYZER_VERSION = 2

ALL_PASSES = (TaintPass(), SeedFlowPass(), PickleSafetyPass(),
              ContractFlowPass())


def default_cache_path() -> Path:
    return Path(".benchmarks") / "flowcache.json"


def default_baseline_path(src_root: Path) -> Path:
    """``FLOW_BASELINE.json`` next to the source tree (repo root)."""
    return Path(src_root).resolve().parent / "FLOW_BASELINE.json"


@dataclass
class FlowReport:
    """Outcome of one whole-program analysis."""

    findings: List[Finding]
    new_findings: List[Finding]
    baselined: List[Finding]
    files_analyzed: int
    files_reused: int
    seconds: float
    baseline_entries: int = 0
    passes: Tuple[str, ...] = field(
        default_factory=lambda: tuple(p.pass_id for p in ALL_PASSES))

    @property
    def clean(self) -> bool:
        """True iff no *non-baselined* findings remain."""
        return not self.new_findings

    def to_dict(self) -> Dict[str, object]:
        return {
            "passes": [
                {"id": pass_id,
                 "title": PASS_CATALOG[pass_id][0],
                 "rationale": PASS_CATALOG[pass_id][1]}
                for pass_id in self.passes],
            "files_analyzed": self.files_analyzed,
            "files_reused": self.files_reused,
            "seconds": round(self.seconds, 3),
            "baseline_entries": self.baseline_entries,
            "baselined": [f.to_dict() for f in self.baselined],
            "findings": [f.to_dict() for f in self.new_findings],
            "clean": self.clean,
        }

    def render(self) -> str:
        lines = [f"  flow: {len(self.new_findings)} finding(s) "
                 f"({len(self.baselined)} baselined) across "
                 f"{self.files_analyzed} file(s), "
                 f"{self.files_reused} summaries reused, "
                 f"{self.seconds:.2f}s"]
        for f in self.new_findings:
            for line in f.render().splitlines():
                lines.append("    " + line)
        return "\n".join(lines)


# ---------------------------------------------------------------------------
# summary cache
# ---------------------------------------------------------------------------

def _cache_token() -> str:
    import sys

    return (f"v{ANALYZER_VERSION}-py{sys.version_info[0]}."
            f"{sys.version_info[1]}")


def _load_cache(path: Path) -> Dict[str, Dict[str, object]]:
    try:
        data = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, ValueError):
        return {}
    if data.get("token") != _cache_token():
        return {}
    files = data.get("files")
    return files if isinstance(files, dict) else {}

def _save_cache(path: Path, files: Dict[str, Dict[str, object]]) -> None:
    payload = {"token": _cache_token(),
               "files": {k: files[k] for k in sorted(files)}}
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_name(f"{path.name}.{os.getpid()}.tmp")
    tmp.write_text(json.dumps(payload, sort_keys=True,
                              separators=(",", ":")),
                   encoding="utf-8")
    tmp.replace(path)


def _collect_summaries(src_root: Path, cache_path: Optional[Path],
                       ) -> Tuple[List[ModuleSummary], int]:
    """(summaries, reused_count); refreshes the on-disk cache."""
    import hashlib

    from repro.check.lint import iter_python_files, module_name_for

    cached = _load_cache(cache_path) if cache_path else {}
    next_cache: Dict[str, Dict[str, object]] = {}
    summaries: List[ModuleSummary] = []
    reused = 0
    for path in iter_python_files(Path(src_root)):
        raw = path.read_bytes()
        digest = hashlib.sha256(raw).hexdigest()
        try:
            rel = str(path.relative_to(Path(src_root).parent))
        except ValueError:  # pragma: no cover - root at fs top
            rel = str(path)
        entry = cached.get(rel)
        if entry and entry.get("sha256") == digest:
            summary = ModuleSummary.from_dict(entry["summary"])
            reused += 1
        else:
            module = module_name_for(path, Path(src_root))
            summary = summarize_source(
                raw.decode("utf-8"), module=module, path=rel,
                is_package=path.name == "__init__.py",
                sha256=digest)
        summaries.append(summary)
        next_cache[rel] = {"sha256": digest,
                           "summary": summary.to_dict()}
    if cache_path is not None:
        _save_cache(cache_path, next_cache)
    return summaries, reused


# ---------------------------------------------------------------------------
# entry points
# ---------------------------------------------------------------------------

def build_model(src_root: Path,
                cache_path: Optional[Path] = None) -> ProjectModel:
    """Project model only (no passes) -- the test-fixture entry point."""
    summaries, _ = _collect_summaries(Path(src_root), cache_path)
    return ProjectModel(summaries)


def analyze(src_root: Path,
            config: Optional[FlowConfig] = None,
            cache_path: Optional[Path] = None,
            baseline: Optional[Baseline] = None,
            passes: Optional[Sequence] = None) -> FlowReport:
    """Run the whole-program analysis over ``src_root``.

    ``cache_path=None`` disables the summary cache (tests);
    ``baseline=None`` treats every finding as new.
    """
    t0 = time.perf_counter()
    summaries, reused = _collect_summaries(Path(src_root), cache_path)
    model = ProjectModel(summaries)
    cfg = config if config is not None else FlowConfig()
    findings: List[Finding] = []
    for pass_obj in (passes if passes is not None else ALL_PASSES):
        findings.extend(pass_obj.run(model, cfg))
    findings.sort(key=Finding.sort_key)
    base = baseline if baseline is not None else Baseline.empty()
    new, old = base.split(findings)
    return FlowReport(
        findings=findings, new_findings=new, baselined=old,
        files_analyzed=len(summaries), files_reused=reused,
        seconds=time.perf_counter() - t0,
        baseline_entries=len(base))
