"""SARIF 2.1.0 export: findings as GitHub code-scanning annotations.

One run, one tool (``repro.check.flow``), one rule per analysis pass.
Taint findings carry their sink-to-source call path as a ``codeFlow``
so the annotation shows *why* a line is a problem, not just where.
Output is deterministic: findings arrive pre-sorted and the emitter
adds nothing environment-dependent (no timestamps, no absolute
paths).
"""

from __future__ import annotations

import json
from typing import Dict, FrozenSet, List, Sequence

from repro.check.flow.config import PASS_CATALOG, PASS_IDS
from repro.check.flow.findings import Finding

__all__ = ["to_sarif", "sarif_json"]

_NO_FINGERPRINTS: FrozenSet[str] = frozenset()

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = ("https://raw.githubusercontent.com/oasis-tcs/"
                "sarif-spec/master/Schemata/sarif-schema-2.1.0.json")


def _location(path: str, line: int,
              message: str = "") -> Dict[str, object]:
    loc: Dict[str, object] = {
        "physicalLocation": {
            "artifactLocation": {"uri": path.replace("\\", "/")},
            "region": {"startLine": max(1, line)},
        },
    }
    if message:
        loc["message"] = {"text": message}
    return loc


def _result(finding: Finding,
            baselined: FrozenSet[str]) -> Dict[str, object]:
    result: Dict[str, object] = {
        "ruleId": finding.pass_id,
        "level": "error",
        "message": {"text": f"{finding.symbol}: {finding.message}"},
        "locations": [_location(finding.path, finding.line)],
        "partialFingerprints": {
            "reproFlow/v1": finding.fingerprint(),
        },
    }
    if finding.fingerprint() in baselined:
        result["suppressions"] = [{
            "kind": "external",
            "justification": "baselined in FLOW_BASELINE.json",
        }]
    if finding.trace:
        result["codeFlows"] = [{
            "threadFlows": [{
                "locations": [
                    {"location": _location(step.path, step.line,
                                           step.symbol
                                           + (f" ({step.note})"
                                              if step.note else ""))}
                    for step in finding.trace],
            }],
        }]
    return result


def to_sarif(findings: Sequence[Finding],
             baselined: FrozenSet[str] = _NO_FINGERPRINTS,
             ) -> Dict[str, object]:
    """The SARIF log document for one analysis run.

    ``baselined`` holds fingerprints of triaged findings; matching
    results carry an external ``suppression`` so code-scanning shows
    them resolved instead of re-announcing them on every push.
    """
    rules: List[Dict[str, object]] = []
    for pass_id in PASS_IDS:
        title, rationale = PASS_CATALOG[pass_id]
        rules.append({
            "id": pass_id,
            "shortDescription": {"text": title},
            "fullDescription": {"text": rationale},
            "defaultConfiguration": {"level": "error"},
        })
    return {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [{
            "tool": {
                "driver": {
                    "name": "repro.check.flow",
                    "informationUri":
                        "https://example.invalid/repro/docs/checking",
                    "rules": rules,
                },
            },
            "results": [_result(f, baselined) for f in findings],
            "columnKind": "utf16CodeUnits",
        }],
    }


def sarif_json(findings: Sequence[Finding],
               baselined: FrozenSet[str] = _NO_FINGERPRINTS) -> str:
    return json.dumps(to_sarif(findings, baselined), indent=2,
                      sort_keys=True)
