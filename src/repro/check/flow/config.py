"""Analyzer configuration: what the passes treat as sinks and contracts.

Defaults describe *this* repository -- the determinism-critical sinks
(:class:`~repro.core.qos.QoSReport`, the golden-snapshot writers, the
result-cache key derivation), the contract parameters whose silent
dropping caused the PR-5 class of bugs, and the cell types whose
payloads must pickle.  Tests override the config to analyze fixture
trees.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Tuple

__all__ = ["FlowConfig", "PASS_IDS", "PASS_CATALOG"]

#: stable pass ids (the pragma keys and SARIF rule ids)
PASS_IDS = ("flow-taint", "seed-flow", "pickle-safety",
            "contract-flow")

#: pass id -> (title, rationale) for report/SARIF rule metadata
PASS_CATALOG = {
    "flow-taint": (
        "no nondeterminism may reach reports, snapshots or cache keys",
        "Wall-clock reads, unseeded RNG draws, unordered-set iteration "
        "and salted hash()/id() values drift between runs; anything "
        "call-reachable from a QoS report, golden-snapshot writer or "
        "result-cache key must be free of them."),
    "seed-flow": (
        "every RNG must derive its seed from threaded parameters",
        "An RNG constructed from a literal or module constant cannot "
        "be varied by the experiment harness, silently pinning what "
        "should be a swept axis; seeds must flow in through function "
        "parameters (ultimately from experiment params)."),
    "pickle-safety": (
        "parallel-runner cell payloads must pickle",
        "Cells cross a process boundary: lambdas, nested functions, "
        "open handles and generator expressions in a cell's fn/args "
        "fail at submission time on the pool path only, so serial "
        "runs mask the bug."),
    "contract-flow": (
        "failure-contract arguments must be forwarded",
        "A function accepting excluded=/faults=/masked_at must pass "
        "it to every callee that also accepts it; silently dropping "
        "the contract re-introduces dead devices into schedules, the "
        "exact bug class the fault-injection PR fixed by hand."),
}


@dataclass(frozen=True)
class FlowConfig:
    """Tunable surface of the whole-program analysis."""

    #: taint sinks: patterns ``mod:func`` / ``mod:Class`` / ``mod:*``
    sink_roots: Tuple[str, ...] = (
        "repro.core.qos:QoSReport",
        "repro.experiments.golden:*",
        "repro.runner.cache:ResultCache.key",
    )
    #: source kinds the taint pass considers (summary SourceFact kinds)
    taint_kinds: Tuple[str, ...] = (
        "wall-clock", "unseeded-rng", "set-iteration", "builtin-hash")
    #: parameters forming forwarding contracts
    contract_params: Tuple[str, ...] = ("excluded", "faults",
                                        "masked_at")
    #: cell classes: (node pattern, fn position, fn keyword)
    cell_types: Tuple[Tuple[str, int, str], ...] = (
        ("repro.runner.parallel:Cell", 2, "fn"),
    )
    #: package prefix the analysis covers (informational)
    package: str = "repro"
