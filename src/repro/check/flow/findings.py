"""Findings: what the dataflow passes report, and how it is suppressed.

A :class:`Finding` is one violation of a whole-program property, anchored
at a source location and optionally carrying the call-graph *trace* that
explains it (for taint findings, the sink-to-source path).  Findings are
value objects with a stable sort order and a content *fingerprint* used
by the committed baseline file -- the fingerprint deliberately excludes
the line number so that unrelated edits shifting code up or down do not
churn the baseline.

Suppression happens at two levels:

* a ``# repro: allow[<pass-id>]`` pragma on the anchor line (or the line
  above) silences one finding in place, exactly like the lint rules;
* the baseline file (:class:`Baseline`) records fingerprints of known,
  triaged findings so the CI gate fails only on *new* ones.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Sequence, Tuple

__all__ = ["TraceStep", "Finding", "Baseline"]


@dataclass(frozen=True)
class TraceStep:
    """One hop of a call-graph path explaining a finding."""

    path: str
    line: int
    symbol: str
    note: str = ""

    def to_dict(self) -> Dict[str, object]:
        return {"path": self.path, "line": self.line,
                "symbol": self.symbol, "note": self.note}

    def render(self) -> str:
        note = f" ({self.note})" if self.note else ""
        return f"{self.path}:{self.line} {self.symbol}{note}"


@dataclass(frozen=True)
class Finding:
    """One violation reported by a dataflow pass."""

    pass_id: str
    path: str
    line: int
    symbol: str
    message: str
    trace: Tuple[TraceStep, ...] = field(default_factory=tuple)

    def sort_key(self) -> Tuple[str, int, str, str]:
        return (self.path, self.line, self.pass_id, self.message)

    def fingerprint(self) -> str:
        """Stable content address; excludes the line number on purpose."""
        payload = json.dumps(
            [self.pass_id, self.path, self.symbol, self.message],
            separators=(",", ":"))
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:20]

    def to_dict(self) -> Dict[str, object]:
        return {
            "pass": self.pass_id,
            "path": self.path,
            "line": self.line,
            "symbol": self.symbol,
            "message": self.message,
            "fingerprint": self.fingerprint(),
            "trace": [s.to_dict() for s in self.trace],
        }

    def render(self) -> str:
        lines = [f"{self.path}:{self.line}: [{self.pass_id}] "
                 f"{self.symbol}: {self.message}"]
        for step in self.trace:
            lines.append(f"    via {step.render()}")
        return "\n".join(lines)


class Baseline:
    """The committed suppression file: fingerprints of triaged findings.

    The workflow mirrors the golden snapshots: ``--baseline write``
    records the current findings, review happens on the diff, and
    ``--baseline check`` fails only when a finding's fingerprint is not
    in the file.  An empty baseline therefore asserts the tree is clean.
    """

    SCHEMA_VERSION = 1

    def __init__(self, entries: Dict[str, Dict[str, object]]):
        self.entries = dict(entries)

    @classmethod
    def empty(cls) -> "Baseline":
        return cls({})

    @classmethod
    def load(cls, path: Path) -> "Baseline":
        data = json.loads(Path(path).read_text(encoding="utf-8"))
        if data.get("schema_version") != cls.SCHEMA_VERSION:
            raise ValueError(
                f"baseline {path} has schema "
                f"{data.get('schema_version')!r}, expected "
                f"{cls.SCHEMA_VERSION}; regenerate with --baseline write")
        return cls(data.get("findings", {}))

    @classmethod
    def from_findings(cls, findings: Sequence[Finding]) -> "Baseline":
        entries = {}
        for f in sorted(findings, key=Finding.sort_key):
            entries[f.fingerprint()] = {
                "pass": f.pass_id, "path": f.path,
                "symbol": f.symbol, "message": f.message,
            }
        return cls(entries)

    def save(self, path: Path) -> None:
        payload = {
            "schema_version": self.SCHEMA_VERSION,
            "tool": "repro.check.flow",
            "findings": {k: self.entries[k]
                         for k in sorted(self.entries)},
        }
        Path(path).write_text(
            json.dumps(payload, indent=2, sort_keys=True) + "\n",
            encoding="utf-8")

    def __len__(self) -> int:
        return len(self.entries)

    def __contains__(self, finding: Finding) -> bool:
        return finding.fingerprint() in self.entries

    def split(self, findings: Sequence[Finding],
              ) -> Tuple[List[Finding], List[Finding]]:
        """``(new, baselined)`` partition, both in stable order."""
        new = [f for f in findings if f not in self]
        old = [f for f in findings if f in self]
        return new, old
