"""Whole-program determinism & contract analysis (``repro.check.flow``).

The per-file lint rules (:mod:`repro.check.rules`) catch *syntactic*
hazards; the determinism probes catch drift *after the fact* by
double-running workloads.  Between them sat a gap: an unseeded RNG or
wall-clock read can travel through three call layers into a QoS report
and be caught -- if at all -- only by a golden-snapshot diff.  This
package closes the gap with an interprocedural static analysis over
``src/repro``:

1. a **project model** -- import graph, symbol tables and an
   approximate call graph built by AST extraction plus name resolution
   (:mod:`~repro.check.flow.summary`, :mod:`~repro.check.flow.project`);
2. four **dataflow passes** over it:

   * ``flow-taint`` -- nondeterminism sources reachable from QoS
     reports, golden-snapshot writers or cache-key derivation, with
     the full sink-to-source call path
     (:mod:`~repro.check.flow.taint`);
   * ``seed-flow`` -- every RNG construction must derive its seed from
     threaded parameters, never literals or module constants
     (:mod:`~repro.check.flow.seedflow`);
   * ``pickle-safety`` -- parallel-runner cell payloads must be
     transitively picklable (:mod:`~repro.check.flow.picklesafety`);
   * ``contract-flow`` -- ``excluded=``/``faults=``/``masked_at``
     contracts must be forwarded to every callee that accepts them
     (:mod:`~repro.check.flow.contracts`);

3. **reporting**: JSON, SARIF for code-scanning annotations
   (:mod:`~repro.check.flow.sarif`), a committed baseline file and
   ``# repro: allow[...]`` pragma integration, and an incremental
   per-file-hash summary cache so the CI gate runs in seconds
   (:mod:`~repro.check.flow.engine`).

Run it via ``python -m repro.check --all``; see ``docs/checking.md``.
"""

from __future__ import annotations

from repro.check.flow.config import PASS_CATALOG, PASS_IDS, FlowConfig
from repro.check.flow.contracts import ContractFlowPass
from repro.check.flow.engine import (ALL_PASSES, FlowReport, analyze,
                                     build_model,
                                     default_baseline_path,
                                     default_cache_path)
from repro.check.flow.findings import Baseline, Finding, TraceStep
from repro.check.flow.picklesafety import PickleSafetyPass
from repro.check.flow.project import CallEdge, ProjectModel
from repro.check.flow.sarif import sarif_json, to_sarif
from repro.check.flow.seedflow import SeedFlowPass
from repro.check.flow.summary import ModuleSummary, summarize_source
from repro.check.flow.taint import TaintPass

__all__ = [
    "ALL_PASSES",
    "Baseline",
    "CallEdge",
    "ContractFlowPass",
    "Finding",
    "FlowConfig",
    "FlowReport",
    "ModuleSummary",
    "PASS_CATALOG",
    "PASS_IDS",
    "PickleSafetyPass",
    "ProjectModel",
    "SeedFlowPass",
    "TaintPass",
    "TraceStep",
    "analyze",
    "build_model",
    "default_baseline_path",
    "default_cache_path",
    "sarif_json",
    "summarize_source",
    "to_sarif",
]
