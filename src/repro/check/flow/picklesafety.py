"""Pickle-safety: parallel-runner cell payloads must cross processes.

A :class:`repro.runner.parallel.Cell` is shipped to a worker process:
its ``fn`` and every element of ``args``/``kwargs`` are pickled.  The
failure mode is nasty because ``jobs=1`` never pickles -- a lambda in
a cell runs fine serially and explodes only on the pool path, usually
on someone else's machine.  This pass checks every ``Cell(...)``
construction site statically:

* the ``fn`` argument must be a reference to a module-level function
  (possibly wrapped in ``functools.partial``); lambdas, functions
  defined inside the enclosing scope, and ``self.x`` bound methods
  are flagged;
* ``args``/``kwargs`` expressions must not contain lambdas, generator
  expressions, ``open(...)`` handles, or references to locally
  defined functions/classes -- the statically recognisable
  transitively-unpicklable payloads.

Suppress a false positive (e.g. a name the resolver cannot see that
is in fact module-level) with ``# repro: allow[pickle-safety]``.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.check.flow.config import FlowConfig
from repro.check.flow.findings import Finding
from repro.check.flow.project import ProjectModel
from repro.check.flow.summary import CallSite, FunctionSummary

__all__ = ["PickleSafetyPass"]

PASS_ID = "pickle-safety"

_HAZARD_TEXT = {
    "lambda": "a lambda (lambdas never pickle)",
    "genexp": "a generator expression (generators never pickle)",
    "open-call": "an open file handle (handles never pickle)",
}


def _hazard_message(hazard: str) -> str:
    if hazard.startswith("local-def:"):
        name = hazard.split(":", 1)[1]
        return (f"locally defined {name!r} (nested definitions "
                f"never pickle)")
    return _HAZARD_TEXT.get(hazard, hazard)


class PickleSafetyPass:
    """Statically vet every cell-construction payload."""

    pass_id = PASS_ID

    def run(self, model: ProjectModel,
            config: FlowConfig) -> List[Finding]:
        cell_nodes = {}
        for pattern, fn_pos, fn_kw in config.cell_types:
            for node in model.expand_roots([pattern]):
                cell_nodes[node] = (fn_pos, fn_kw)
        if not cell_nodes:
            return []
        findings: List[Finding] = []
        for module, summary in model.modules.items():
            for fn in summary.functions:
                cls_ctx = fn.qualname.split(".")[0] \
                    if "." in fn.qualname else None
                for site in fn.calls:
                    callee = model.resolve_callee(module, site,
                                                  cls_ctx, fn)
                    if callee is None or callee not in cell_nodes:
                        continue
                    fn_pos, fn_kw = cell_nodes[callee]
                    for message in self._check_site(model, module,
                                                    cls_ctx, fn, site,
                                                    fn_pos, fn_kw):
                        if summary.is_allowed((PASS_ID,), site.line):
                            continue
                        findings.append(Finding(
                            pass_id=PASS_ID, path=summary.path,
                            line=site.line, symbol=fn.qualname,
                            message=message))
        findings.sort(key=Finding.sort_key)
        return findings

    def _check_site(self, model: ProjectModel, module: str,
                    cls_ctx: Optional[str], fn: FunctionSummary,
                    site: CallSite, fn_pos: int,
                    fn_kw: str) -> List[str]:
        messages: List[str] = []
        # -- the fn argument ------------------------------------------
        fn_dotted: Optional[Tuple[str, ...]] = None
        fn_hazards: Tuple[str, ...] = ()
        if site.n_pos > fn_pos:
            fn_dotted = site.pos_dotted[fn_pos]
            fn_hazards = site.pos_hazards[fn_pos]
        else:
            for key, value in site.keywords:
                if key == fn_kw:
                    fn_dotted = value
            for key, hazards in site.kw_hazards:
                if key == fn_kw:
                    fn_hazards = hazards
        for hazard in fn_hazards:
            messages.append(
                f"cell fn is {_hazard_message(hazard)}; use a "
                f"module-level function")
        if not fn_hazards and fn_dotted is not None:
            messages.extend(self._check_fn_ref(model, module, cls_ctx,
                                               fn_dotted))
        # -- the remaining payload ------------------------------------
        for i, hazards in enumerate(site.pos_hazards):
            if i == fn_pos:
                continue
            for hazard in hazards:
                messages.append(
                    f"cell argument {i} contains "
                    f"{_hazard_message(hazard)}; cells must carry "
                    f"plain picklable data")
        for key, hazards in site.kw_hazards:
            if key == fn_kw:
                continue
            for hazard in hazards:
                messages.append(
                    f"cell argument {key!r} contains "
                    f"{_hazard_message(hazard)}; cells must carry "
                    f"plain picklable data")
        return messages

    @staticmethod
    def _check_fn_ref(model: ProjectModel, module: str,
                      cls_ctx: Optional[str],
                      dotted: Tuple[str, ...]) -> List[str]:
        if dotted[0] in ("self", "cls"):
            return [f"cell fn {'.'.join(dotted)} is a bound method; "
                    f"the whole instance would be pickled -- use a "
                    f"module-level function"]
        # partial(...) is handled via hazards of its own arguments;
        # a plain name must resolve to a module-level def (or stay
        # unresolved: a callable threaded in via parameters is the
        # caller's responsibility)
        resolved = model.resolve_dotted(module, dotted, cls_ctx)
        if resolved is not None and resolved[0] == "module":
            return [f"cell fn {'.'.join(dotted)} resolves to a "
                    f"module object, not a callable"]
        return []
