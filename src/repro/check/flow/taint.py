"""Nondeterminism taint: no host entropy may reach a determinism sink.

Sinks are the functions whose output the repository promises to be
byte-identical between runs -- QoS reports, golden-snapshot writers,
result-cache key derivation (configurable).  The pass walks the call
graph *from* every sink root and reports each nondeterminism source
fact (wall-clock read, unseeded RNG, unordered-set iteration, salted
``hash()``/``id()``) found in any transitively-called function,
together with the full sink-to-source call path.

Direction matters: reachability is computed sink -> callee, so a
``time.perf_counter()`` in a leaf utility is only reported if some
sink actually (transitively) calls it.  A breadth-first search from
all roots at once yields, per tainted function, the *shortest*
explaining path -- and because adjacency is built in deterministic
(module, definition, call-site) order, the reported paths are stable
across runs and machines.

Suppression: a ``# repro: allow[<kind>]`` pragma on the source line
(the same ids the lint rules use: ``wall-clock``, ``unseeded-rng``,
``set-iteration``, ``builtin-hash``) or ``allow[flow-taint]`` waives
the source.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, List, Optional

from repro.check.flow.config import FlowConfig
from repro.check.flow.findings import Finding, TraceStep
from repro.check.flow.project import ProjectModel
from repro.check.flow.summary import MODULE_BODY

__all__ = ["TaintPass"]

PASS_ID = "flow-taint"


class TaintPass:
    """Sink-reachable nondeterminism sources, with call paths."""

    pass_id = PASS_ID

    def run(self, model: ProjectModel,
            config: FlowConfig) -> List[Finding]:
        expanded = model.expand_roots(config.sink_roots)
        if not expanded:
            return []
        adjacency = model.adjacency()
        # Widen: a function that *calls* a sink feeds it whatever it
        # computed, so its own entropy (and that of its callees) is
        # sink-relevant even though the sink never calls back into it.
        root_note: Dict[str, str] = {r: "sink root" for r in expanded}
        sink_set = frozenset(expanded)
        for edge in model.call_edges():
            if edge.callee in sink_set \
                    and edge.caller not in root_note:
                callee_name = edge.callee.split(":", 1)[1]
                root_note[edge.caller] = f"feeds sink {callee_name}"
        #: node -> (parent node, call line) discovered by the BFS
        parent: Dict[str, Optional[tuple]] = {}
        queue = deque()
        for root in root_note:
            if root not in parent:
                parent[root] = None
                queue.append(root)
        order: List[str] = []
        while queue:
            node = queue.popleft()
            order.append(node)
            for edge in adjacency.get(node, ()):
                if edge.callee not in parent:
                    parent[edge.callee] = (node, edge.site.line)
                    queue.append(edge.callee)

        kinds = frozenset(config.taint_kinds)
        findings: List[Finding] = []
        for node in order:
            fn = model.function(node)
            if fn is None:
                continue
            summary = model.modules.get(model.module_of(node))
            if summary is None:
                continue
            for fact in fn.sources:
                if fact.kind not in kinds:
                    continue
                if summary.is_allowed((fact.kind, PASS_ID),
                                      fact.line):
                    continue
                trace = self._path_to(model, parent, node,
                                      root_note)
                symbol = fn.qualname if fn.qualname != MODULE_BODY \
                    else summary.module
                sink = trace[0].symbol if trace else symbol
                findings.append(Finding(
                    pass_id=PASS_ID, path=summary.path,
                    line=fact.line, symbol=symbol,
                    message=(f"{fact.detail}; value is reachable from "
                             f"determinism sink {sink}"),
                    trace=tuple(trace)))
        findings.sort(key=Finding.sort_key)
        return findings

    @staticmethod
    def _path_to(model: ProjectModel,
                 parent: Dict[str, Optional[tuple]],
                 node: str,
                 root_note: Dict[str, str]) -> List[TraceStep]:
        """Sink-root -> ... -> node, as trace steps."""
        chain: List[tuple] = []  # (node, call line into next hop)
        cursor: Optional[str] = node
        line_into = 0
        while cursor is not None:
            chain.append((cursor, line_into))
            entry = parent.get(cursor)
            if entry is None:
                break
            cursor, line_into = entry
        chain.reverse()
        steps: List[TraceStep] = []
        for fq, line in chain:
            fn = model.function(fq)
            note = root_note.get(fq, "") if not steps else ""
            steps.append(TraceStep(
                path=model.path_of(fq),
                line=line if line else (fn.line if fn else 0),
                symbol=fq.split(":", 1)[1], note=note))
        return steps
