"""The whole-program model: modules, symbols, and the call graph.

Built purely from :class:`~repro.check.flow.summary.ModuleSummary`
facts -- no import execution, no ASTs.  Name resolution is the
approximate-but-honest kind a determinism audit needs:

* import bindings are followed through re-export chains (``from
  repro.check import lint_paths`` resolves through ``repro/check/
  __init__.py`` to the defining module), with a cycle guard;
* ``self.method()`` / ``cls.method()`` resolve within the enclosing
  class, then through resolvable base classes;
* ``Class(...)`` resolves to ``Class.__init__`` when one is defined,
  else to the class node itself (whose params are its dataclass-style
  fields);
* ``functools.partial(fn, ...)`` contributes a call edge to ``fn``.

Unresolvable callees (builtins, third-party, attribute chains on
arbitrary objects) simply produce no edge: the passes over-approximate
*within* the project and stay silent about the outside, which keeps
false positives at review-tolerable levels.

Node ids are ``"<module>:<qualname>"`` strings, e.g.
``repro.retrieval.maxflow:maxflow_retrieval`` or
``repro.core.qos:QoSReport.__init__``; module-level code is the
pseudo-function ``<module>``.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.check.flow.summary import (CallSite, ClassInfo,
                                      FunctionSummary, ModuleSummary)

__all__ = ["ProjectModel", "CallEdge"]


class CallEdge:
    """One resolved call-graph edge."""

    __slots__ = ("caller", "callee", "site")

    def __init__(self, caller: str, callee: str, site: CallSite):
        self.caller = caller
        self.callee = callee
        self.site = site

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"CallEdge({self.caller} -> {self.callee})"


class ProjectModel:
    """Modules, symbol tables and the resolved call graph."""

    def __init__(self, summaries: Sequence[ModuleSummary]):
        #: dotted module name -> summary, insertion-sorted by name
        self.modules: Dict[str, ModuleSummary] = {
            s.module: s for s in sorted(summaries,
                                        key=lambda s: s.module)}
        self._functions: Dict[str, FunctionSummary] = {}
        self._classes: Dict[str, ClassInfo] = {}
        self._module_of: Dict[str, str] = {}
        for summary in self.modules.values():
            for fn in summary.functions:
                node = f"{summary.module}:{fn.qualname}"
                self._functions[node] = fn
                self._module_of[node] = summary.module
            for cls in summary.classes:
                self._classes[f"{summary.module}:{cls.name}"] = cls
        self._edges: Optional[List[CallEdge]] = None
        self._adjacency: Optional[Dict[str, List[CallEdge]]] = None

    # -- lookups ---------------------------------------------------------
    def functions(self) -> Dict[str, FunctionSummary]:
        return self._functions

    def function(self, node: str) -> Optional[FunctionSummary]:
        return self._functions.get(node)

    def class_info(self, node: str) -> Optional[ClassInfo]:
        return self._classes.get(node)

    def module_of(self, node: str) -> str:
        return node.split(":", 1)[0]

    def path_of(self, node: str) -> str:
        summary = self.modules.get(self.module_of(node))
        return summary.path if summary else "<unknown>"

    # -- symbol resolution -----------------------------------------------
    def _binding_of(self, module: str, name: str):
        """What ``name`` means at top level of ``module``.

        Returns ``("function"|"class"|"module", target)`` or ``None``;
        follows import re-export chains with a cycle guard.
        """
        seen = set()
        while True:
            if (module, name) in seen:
                return None
            seen.add((module, name))
            summary = self.modules.get(module)
            if summary is None:
                return None
            fq = f"{module}:{name}"
            if fq in self._classes:
                return ("class", fq)
            if fq in self._functions:
                return ("function", fq)
            binding = None
            for imp in summary.imports:
                if imp.local == name:
                    binding = imp
            if binding is not None:
                if binding.symbol is None:
                    return ("module", binding.module)
                # ``from M import sym``: sym may itself be a module
                candidate = f"{binding.module}.{binding.symbol}"
                if candidate in self.modules:
                    return ("module", candidate)
                module, name = binding.module, binding.symbol
                continue
            alias = None
            for alias_name, target in summary.aliases:
                if alias_name == name:
                    alias = target
            if alias is not None and len(alias) == 1:
                name = alias[0]
                continue
            submodule = f"{module}.{name}"
            if submodule in self.modules:
                return ("module", submodule)
            return None

    def _method_in_class(self, class_fq: str, method: str,
                         _depth: int = 0) -> Optional[str]:
        """Resolve ``method`` in a class or its resolvable bases."""
        if _depth > 8:
            return None
        info = self._classes.get(class_fq)
        if info is None:
            return None
        module = class_fq.split(":", 1)[0]
        if method in info.methods:
            return f"{module}:{info.name}.{method}"
        for base in info.bases:
            resolved = self.resolve_dotted(module, base,
                                           class_context=None)
            if resolved and resolved[0] == "class":
                found = self._method_in_class(resolved[1], method,
                                              _depth + 1)
                if found:
                    return found
        return None

    def _instance_method(self, module: str,
                         ctor: Tuple[str, ...], method: str,
                         class_context: Optional[str]):
        """``obj.method`` where ``obj`` was built by ``ctor(...)``."""
        resolved = self.resolve_dotted(module, ctor, class_context)
        if resolved and resolved[0] == "class":
            found = self._method_in_class(resolved[1], method)
            if found:
                return ("function", found)
        return None

    def resolve_dotted(self, module: str, dotted: Tuple[str, ...],
                       class_context: Optional[str] = None,
                       fn: Optional[FunctionSummary] = None):
        """Resolve a dotted name used inside ``module``.

        ``class_context`` is the enclosing class name for ``self.x`` /
        ``cls.x`` resolution; ``fn`` supplies local instance types for
        ``obj.method()`` on constructor-assigned locals.  Returns
        ``("function"|"class"|"module", fq)`` or ``None``.
        """
        if not dotted:
            return None
        head = dotted[0]
        if head in ("self", "cls") and class_context is not None:
            if len(dotted) == 2:
                found = self._method_in_class(
                    f"{module}:{class_context}", dotted[1])
                if found:
                    return ("function", found)
            elif len(dotted) == 3:
                # self.attr.method() via the recorded attribute type
                info = self._classes.get(f"{module}:{class_context}")
                if info is not None:
                    ctor = info.attr_type_map().get(dotted[1])
                    if ctor is not None:
                        return self._instance_method(
                            module, ctor, dotted[2], class_context)
            return None
        if fn is not None and len(dotted) == 2:
            ctor = fn.local_type_map().get(head)
            if ctor is not None:
                resolved = self._instance_method(
                    module, ctor, dotted[1], class_context)
                if resolved is not None:
                    return resolved
        binding = self._binding_of(module, head)
        if binding is None:
            return None
        kind, target = binding
        for part in dotted[1:]:
            if kind == "module":
                binding = self._binding_of(target, part)
                if binding is None:
                    return None
                kind, target = binding
            elif kind == "class":
                found = self._method_in_class(target, part)
                if found is None:
                    return None
                kind, target = "function", found
            else:
                return None  # attribute of a function result
        return (kind, target)

    def resolve_callee(self, module: str, site: CallSite,
                       class_context: Optional[str] = None,
                       fn: Optional[FunctionSummary] = None,
                       ) -> Optional[str]:
        """The call-graph node a call site lands on, or ``None``.

        Class constructions resolve to ``Class.__init__`` when defined
        (searching bases), else to the class node itself.
        """
        resolved = self.resolve_dotted(module, site.callee,
                                       class_context, fn)
        if resolved is None:
            return None
        kind, target = resolved
        if kind == "function":
            return target
        if kind == "class":
            init = self._method_in_class(target, "__init__")
            return init if init is not None else target
        return None

    # -- call graph ------------------------------------------------------
    def call_edges(self) -> List[CallEdge]:
        """Every resolved edge, in deterministic (module, def) order."""
        if self._edges is not None:
            return self._edges
        edges: List[CallEdge] = []
        for module, summary in self.modules.items():
            for fn in summary.functions:
                caller = f"{module}:{fn.qualname}"
                cls_ctx = fn.qualname.split(".")[0] \
                    if "." in fn.qualname else None
                for site in fn.calls:
                    callee = self.resolve_callee(module, site, cls_ctx,
                                                 fn)
                    if callee is not None:
                        edges.append(CallEdge(caller, callee, site))
                    # Higher-order flow: a project function passed by
                    # reference (Cell payloads, functools.partial,
                    # factory parameters) may be called by the
                    # receiver; over-approximate with an edge from the
                    # passer.  Class references stay reference-only.
                    for ref in self._arg_refs(site):
                        resolved = self.resolve_dotted(module, ref,
                                                       cls_ctx, fn)
                        if resolved and resolved[0] == "function" \
                                and resolved[1] != caller:
                            edges.append(CallEdge(
                                caller, resolved[1], site))
        self._edges = edges
        return edges

    @staticmethod
    def _arg_refs(site: CallSite):
        """Dotted names passed as argument values at a call site."""
        for dotted in site.pos_dotted:
            if dotted is not None:
                yield dotted
        for _, dotted in site.keywords:
            if dotted is not None:
                yield dotted

    def adjacency(self) -> Dict[str, List[CallEdge]]:
        """Caller node -> outgoing edges (deterministic order)."""
        if self._adjacency is not None:
            return self._adjacency
        adj: Dict[str, List[CallEdge]] = {}
        for edge in self.call_edges():
            adj.setdefault(edge.caller, []).append(edge)
        self._adjacency = adj
        return adj

    # -- node matching ---------------------------------------------------
    def expand_roots(self, patterns: Sequence[str]) -> List[str]:
        """Expand root patterns to concrete call-graph nodes.

        Supported forms: ``mod:func``, ``mod:Class`` (the class node
        plus every method), ``mod:*`` (every function in the module),
        and ``mod:Class.method``.  Unknown patterns expand to nothing.
        """
        out: List[str] = []
        for pattern in patterns:
            if ":" not in pattern:
                continue
            module, symbol = pattern.split(":", 1)
            if symbol == "*":
                summary = self.modules.get(module)
                if summary is not None:
                    out.extend(f"{module}:{fn.qualname}"
                               for fn in summary.functions)
                continue
            fq = f"{module}:{symbol}"
            if fq in self._classes:
                info = self._classes[fq]
                out.append(fq)
                out.extend(f"{module}:{info.name}.{m}"
                           for m in info.methods)
                continue
            if fq in self._functions:
                out.append(fq)
        return list(dict.fromkeys(out))

    def callable_params(self, node: str) -> Optional[Tuple[str, ...]]:
        """Parameter names of a node, self/cls stripped for methods.

        For a bare class node (dataclass without ``__init__``) the
        annotated fields stand in for the constructor signature.
        """
        fn = self._functions.get(node)
        if fn is not None:
            params = fn.params
            if fn.is_method and params \
                    and params[0] in ("self", "cls"):
                params = params[1:]
            return params
        info = self._classes.get(node)
        if info is not None:
            return info.fields
        return None

    def node_has_kwargs(self, node: str) -> bool:
        fn = self._functions.get(node)
        return fn.has_kwargs if fn is not None else False
