"""The lint engine: parse, run rules, honour allowlist pragmas.

A rule flags *syntactic* witnesses of the property it protects -- it
never executes the code under test.  False positives are expected to be
rare and are silenced in place with an allowlist pragma on the offending
line (or the line directly above it)::

    t = time.time()  # repro: allow[wall-clock]

    # repro: allow[set-iteration,magic-latency]
    for d in {0, 1, 2}: ...

The pragma names one or more rule ids (comma-separated) or ``*`` for a
blanket waiver.  Waivers are deliberately line-scoped: a file- or
package-level opt-out would defeat the point of review-time checking.
"""

from __future__ import annotations

import ast
import re
import tokenize
from dataclasses import dataclass, field
from io import StringIO
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Set

__all__ = ["Violation", "LintContext", "LintReport",
           "lint_source", "lint_paths", "iter_python_files",
           "module_name_for"]

#: ``# repro: allow[rule-a,rule-b]`` or ``# repro: allow[*]``
_PRAGMA_RE = re.compile(r"#\s*repro:\s*allow\[([\w\-*,\s]+)\]")


@dataclass(frozen=True)
class Violation:
    """One rule hit at one source location."""

    rule_id: str
    path: str
    line: int
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule_id}] {self.message}"

    def to_dict(self) -> Dict[str, object]:
        return {"rule": self.rule_id, "path": self.path,
                "line": self.line, "message": self.message}


@dataclass
class LintContext:
    """Everything a rule needs to inspect one file."""

    path: str
    module: str
    source: str
    tree: ast.AST
    #: line number -> rule ids waived on that line ("*" waives all)
    allowed: Dict[int, Set[str]] = field(default_factory=dict)

    def is_allowed(self, rule_id: str, line: int) -> bool:
        """True if ``rule_id`` is waived on ``line`` (or the line above)."""
        for candidate in (line, line - 1):
            ids = self.allowed.get(candidate)
            if ids and ("*" in ids or rule_id in ids):
                return True
        return False

    def in_package(self, prefixes: Optional[Sequence[str]]) -> bool:
        """True if this module falls under one of ``prefixes``.

        ``None`` means the rule applies everywhere.
        """
        if prefixes is None:
            return True
        return any(self.module == p or self.module.startswith(p + ".")
                   for p in prefixes)


@dataclass
class LintReport:
    """Outcome of linting a set of files."""

    violations: List[Violation]
    files_checked: int

    @property
    def clean(self) -> bool:
        return not self.violations

    def render(self) -> str:
        lines = [v.render() for v in self.violations]
        lines.append(f"{len(self.violations)} violation(s) in "
                     f"{self.files_checked} file(s)")
        return "\n".join(lines)


def _collect_pragmas(source: str) -> Dict[int, Set[str]]:
    """Map line numbers to the rule ids their pragmas waive.

    Pragmas are read from real COMMENT tokens so that pragma-shaped
    text inside string literals does not waive anything.
    """
    allowed: Dict[int, Set[str]] = {}
    try:
        tokens = tokenize.generate_tokens(StringIO(source).readline)
        for tok in tokens:
            if tok.type != tokenize.COMMENT:
                continue
            match = _PRAGMA_RE.search(tok.string)
            if not match:
                continue
            ids = {part.strip() for part in match.group(1).split(",")
                   if part.strip()}
            allowed.setdefault(tok.start[0], set()).update(ids)
    except tokenize.TokenError:  # pragma: no cover - unparsable file
        pass
    return allowed


def lint_source(source: str, *, path: str = "<string>",
                module: str = "repro", rules=None) -> List[Violation]:
    """Lint one source string; the unit used by the rule tests."""
    from repro.check.rules import ALL_RULES

    tree = ast.parse(source, filename=path)
    ctx = LintContext(path=path, module=module, source=source, tree=tree,
                      allowed=_collect_pragmas(source))
    out: List[Violation] = []
    for rule in (rules if rules is not None else ALL_RULES):
        if not ctx.in_package(rule.scope):
            continue
        for violation in rule.check(ctx):
            if not ctx.is_allowed(violation.rule_id, violation.line):
                out.append(violation)
    out.sort(key=lambda v: (v.path, v.line, v.rule_id))
    return out


def module_name_for(path: Path, root: Path) -> str:
    """Dotted module name of ``path`` relative to the source ``root``.

    ``root`` is the directory *containing* the top-level package (e.g.
    ``src``), so ``src/repro/sim/core.py`` maps to ``repro.sim.core``.
    """
    rel = path.resolve().relative_to(root.resolve())
    parts = list(rel.with_suffix("").parts)
    if parts and parts[-1] == "__init__":
        parts.pop()
    return ".".join(parts)


def iter_python_files(root: Path) -> Iterable[Path]:
    """All ``.py`` files under ``root``, sorted for stable reports."""
    return sorted(p for p in root.rglob("*.py")
                  if "__pycache__" not in p.parts)


def lint_paths(src_root: Path, rules=None) -> LintReport:
    """Lint every Python file under ``src_root`` (e.g. ``src/``)."""
    violations: List[Violation] = []
    count = 0
    for path in iter_python_files(src_root):
        count += 1
        module = module_name_for(path, src_root)
        source = path.read_text(encoding="utf-8")
        try:
            rel = str(path.relative_to(src_root.parent))
        except ValueError:  # pragma: no cover - root at filesystem top
            rel = str(path)
        violations.extend(
            lint_source(source, path=rel, module=module, rules=rules))
    violations.sort(key=lambda v: (v.path, v.line, v.rule_id))
    return LintReport(violations=violations, files_checked=count)
