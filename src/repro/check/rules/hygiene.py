"""Hygiene rules: failure modes that corrupt state silently.

A mutable default argument is shared across every call of the function,
so one caller's mutation leaks into the next -- in a simulator that
manifests as cross-run contamination, the exact class of bug the
determinism probe exists to catch.  A bare ``except`` swallows
``SanitizerError`` (and ``KeyboardInterrupt``) along with whatever it
meant to catch.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.check.lint import LintContext, Violation
from repro.check.rules import Rule

__all__ = ["MutableDefault", "BareExcept", "RULES"]

_MUTABLE_CALLS = {"list", "dict", "set", "defaultdict", "deque",
                  "Counter", "OrderedDict"}


def _is_mutable_default(node: ast.AST) -> bool:
    if isinstance(node, (ast.List, ast.Dict, ast.Set, ast.ListComp,
                         ast.DictComp, ast.SetComp)):
        return True
    return (isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id in _MUTABLE_CALLS)


class MutableDefault(Rule):
    """No mutable default arguments."""

    rule_id = "mutable-default"
    title = "no mutable default arguments"
    rationale = ("A mutable default is evaluated once and shared by all "
                 "calls; state leaks across invocations and across "
                 "simulation runs. Default to None and construct inside.")
    scope = None

    def check(self, ctx: LintContext) -> Iterator[Violation]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, (ast.FunctionDef,
                                     ast.AsyncFunctionDef, ast.Lambda)):
                continue
            args = node.args
            defaults = list(args.defaults) + \
                [d for d in args.kw_defaults if d is not None]
            for default in defaults:
                if _is_mutable_default(default):
                    yield self.violation(
                        ctx, default.lineno,
                        "mutable default argument is shared across "
                        "calls; default to None and build per call")


class BareExcept(Rule):
    """No bare ``except:`` clauses."""

    rule_id = "bare-except"
    title = "no bare except"
    rationale = ("except: catches SystemExit, KeyboardInterrupt and "
                 "SanitizerError alike, hiding tripped invariants; "
                 "name the exception type.")
    scope = None

    def check(self, ctx: LintContext) -> Iterator[Violation]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.ExceptHandler) and node.type is None:
                yield self.violation(
                    ctx, node.lineno,
                    "bare except swallows sanitizer and interrupt "
                    "exceptions; catch a specific type")


RULES = [MutableDefault, BareExcept]
