"""Rule: device latency constants live in :mod:`repro.flash.params`.

The paper's headline number -- one 8 KB read = 0.132507 ms -- and its
decomposition are defined exactly once, in ``FlashParams``.  An inline
copy elsewhere silently decouples an experiment from the parameter set
it claims to use: change the device model and the experiment keeps
asserting against the stale constant.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.check.lint import LintContext, Violation
from repro.check.rules import Rule

__all__ = ["MagicLatency", "RULES", "LATENCY_CONSTANTS"]

#: floats that uniquely identify the MSR SSD timing model
LATENCY_CONSTANTS = {
    0.132507: "FlashParams.read_ms (8 KB read)",
    0.107507: "FlashParams.transfer_ms (bus transfer)",
    0.307507: "FlashParams.write_ms (8 KB program)",
}


class MagicLatency(Rule):
    """Latency constants must flow through ``flash.params``."""

    rule_id = "magic-latency"
    title = "no inline device latency constants"
    rationale = ("An inline 0.132507 stops tracking FlashParams; import "
                 "MSR_SSD_PARAMS (or take a params argument) so device "
                 "timing has one source of truth.")
    scope = None  # everywhere except the definition site below

    #: the parameter definition site and this rule's own lookup table
    exempt_modules = ("repro.flash.params", "repro.check.rules.constants")

    def check(self, ctx: LintContext) -> Iterator[Violation]:
        if ctx.module in self.exempt_modules:
            return
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Constant) \
                    and isinstance(node.value, float) \
                    and node.value in LATENCY_CONSTANTS:
                meaning = LATENCY_CONSTANTS[node.value]
                yield self.violation(
                    ctx, node.lineno,
                    f"inline latency constant {node.value} duplicates "
                    f"{meaning}; use repro.flash.params")


RULES = [MagicLatency]
