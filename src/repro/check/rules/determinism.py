"""Rules protecting seeded, replayable randomness.

A reproduction whose benchmark numbers move between runs cannot support
the paper's claims.  Randomness is welcome -- but only through an
explicitly seeded generator that the caller controls, and never from
the wall clock.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Optional, Tuple

from repro.check.lint import LintContext, Violation
from repro.check.rules import Rule, SIM_CRITICAL

__all__ = ["UnseededRng", "WallClock", "DurationClock", "GlobalRngSeed",
           "SeedDefaultNone", "RULES"]

#: attribute access spelled out, e.g. ``np.random.default_rng`` ->
#: ("np", "random", "default_rng")
def _dotted(node: ast.AST) -> Optional[Tuple[str, ...]]:
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return tuple(reversed(parts))
    return None


_NUMPY_ALIASES = {"np", "numpy"}

#: order-independent members of ``numpy.random`` that do not touch the
#: legacy global state
_NP_RANDOM_OK = {"default_rng", "Generator", "SeedSequence", "PCG64",
                 "Philox", "BitGenerator", "RandomState"}

#: stdlib ``random`` module functions backed by the hidden global Twister
_STDLIB_RANDOM_FNS = {
    "random", "randint", "randrange", "choice", "choices", "shuffle",
    "sample", "uniform", "gauss", "normalvariate", "expovariate",
    "betavariate", "gammavariate", "lognormvariate", "paretovariate",
    "weibullvariate", "triangular", "vonmisesvariate", "getrandbits",
    "randbytes",
}


class UnseededRng(Rule):
    """No unseeded or global-state RNG in simulation-critical code."""

    rule_id = "unseeded-rng"
    title = "RNG must be an explicitly seeded Generator"
    rationale = ("Unseeded generators and the hidden global state of "
                 "numpy.random/* and random.* make trace generation and "
                 "scheduling irreproducible between runs.")
    scope = SIM_CRITICAL

    def check(self, ctx: LintContext) -> Iterator[Violation]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            dotted = _dotted(node.func)
            if dotted is None:
                continue
            # np.random.default_rng() with no seed argument
            if (len(dotted) == 3 and dotted[0] in _NUMPY_ALIASES
                    and dotted[1] == "random"
                    and dotted[2] == "default_rng"
                    and not node.args and not node.keywords):
                yield self.violation(
                    ctx, node.lineno,
                    "default_rng() without a seed is entropy-seeded; "
                    "pass an explicit seed or SeedSequence")
            # legacy numpy global state: np.random.rand / choice / ...
            elif (len(dotted) == 3 and dotted[0] in _NUMPY_ALIASES
                    and dotted[1] == "random"
                    and dotted[2] not in _NP_RANDOM_OK
                    and dotted[2] != "seed"):
                yield self.violation(
                    ctx, node.lineno,
                    f"numpy.random.{dotted[2]} uses the hidden global "
                    f"RandomState; use a seeded default_rng(...) instead")
            # stdlib module-level random.* (random.Random(...) is fine)
            elif (len(dotted) == 2 and dotted[0] == "random"
                    and dotted[1] in _STDLIB_RANDOM_FNS):
                yield self.violation(
                    ctx, node.lineno,
                    f"random.{dotted[1]} draws from the process-global "
                    f"Twister; use random.Random(seed) or a numpy "
                    f"Generator")


_TIME_FNS = {"time", "time_ns", "monotonic", "monotonic_ns",
             "perf_counter", "perf_counter_ns", "process_time",
             "process_time_ns"}
_DATETIME_FNS = {"now", "utcnow", "today"}


class WallClock(Rule):
    """No wall-clock reads in simulation-critical code."""

    rule_id = "wall-clock"
    title = "simulated time must come from Environment.now"
    rationale = ("time.time()/datetime.now() leak host timing into the "
                 "model; simulation code must read the virtual clock so "
                 "runs replay bit-identically.")
    scope = SIM_CRITICAL

    def check(self, ctx: LintContext) -> Iterator[Violation]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            dotted = _dotted(node.func)
            if dotted is None or len(dotted) < 2:
                continue
            if dotted[0] == "time" and dotted[-1] in _TIME_FNS \
                    and len(dotted) == 2:
                yield self.violation(
                    ctx, node.lineno,
                    f"time.{dotted[-1]}() reads the host clock; derive "
                    f"timing from the simulation Environment")
            elif (dotted[-1] in _DATETIME_FNS
                    and dotted[0] in {"datetime", "date"}):
                yield self.violation(
                    ctx, node.lineno,
                    f"{'.'.join(dotted)}() reads the host clock; "
                    f"simulation state must not depend on it")


#: host clocks that are wrong for interval measurement: adjustable
#: (wall time, datetime) or low-resolution (coarse monotonic)
_BAD_DURATION_TIME = {"time", "time_ns", "monotonic", "monotonic_ns"}


class DurationClock(Rule):
    """Durations are measured with ``perf_counter``, nothing else."""

    rule_id = "duration-clock"
    title = "measure durations with time.perf_counter()"
    rationale = ("time.time()/datetime.now() follow the adjustable "
                 "wall clock: NTP slews and DST steps make intervals "
                 "computed from them wrong exactly when timing "
                 "matters; time.monotonic() trades away the "
                 "resolution cost measurements need.  Benchmarks and "
                 "cost measurements must use the monotonic "
                 "high-resolution time.perf_counter(); a genuine "
                 "wall-time *stamp* (log line, report header) carries "
                 "a pragma saying so.")
    scope = None  # everywhere, sim-critical scopes included

    def check(self, ctx: LintContext) -> Iterator[Violation]:
        # Sim-critical scopes are NOT exempt: WallClock already bans
        # host-clock reads there under its own rule id, but a
        # deliberate ``allow[wall-clock]`` stamp must not silently
        # license the wrong clock for a *duration* as well.
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            dotted = _dotted(node.func)
            if dotted is None:
                continue
            if len(dotted) == 2 and dotted[0] == "time" \
                    and dotted[1] in _BAD_DURATION_TIME:
                yield self.violation(
                    ctx, node.lineno,
                    f"{'.'.join(dotted)}() is the wrong clock for "
                    f"durations; use time.perf_counter(), or pragma "
                    f"a deliberate wall-time stamp")
            elif (2 <= len(dotted) <= 3
                    and dotted[-1] in _DATETIME_FNS
                    and dotted[-2] in {"datetime", "date"}):
                yield self.violation(
                    ctx, node.lineno,
                    f"{'.'.join(dotted)}() follows the adjustable "
                    f"wall clock; use time.perf_counter() for "
                    f"durations, or pragma a deliberate wall-time "
                    f"stamp")


class GlobalRngSeed(Rule):
    """Never reseed process-global RNG state."""

    rule_id = "global-rng-seed"
    title = "no np.random.seed / random.seed"
    rationale = ("Reseeding the global state couples unrelated modules "
                 "through hidden shared state; every component owns its "
                 "own Generator instead.")
    scope = None  # everywhere: global state is global

    def check(self, ctx: LintContext) -> Iterator[Violation]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            dotted = _dotted(node.func)
            if dotted is None:
                continue
            if (dotted == ("random", "seed")
                    or (len(dotted) == 3 and dotted[0] in _NUMPY_ALIASES
                        and dotted[1:] == ("random", "seed"))):
                yield self.violation(
                    ctx, node.lineno,
                    f"{'.'.join(dotted)}(...) mutates process-global RNG "
                    f"state; construct a local seeded Generator")


class SeedDefaultNone(Rule):
    """Public seeds default to a number, not to entropy."""

    rule_id = "seed-default-none"
    title = "seed/rng parameters must not default to None"
    rationale = ("`seed=None` silently falls back to OS entropy, so the "
                 "default call is the one call that never reproduces; "
                 "default to an integer and let callers vary it.")
    scope = SIM_CRITICAL

    def check(self, ctx: LintContext) -> Iterator[Violation]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, (ast.FunctionDef,
                                     ast.AsyncFunctionDef)):
                continue
            args = node.args
            pos = args.posonlyargs + args.args
            pairs = list(zip(pos[len(pos) - len(args.defaults):],
                             args.defaults))
            pairs += [(a, d) for a, d in zip(args.kwonlyargs,
                                             args.kw_defaults)
                      if d is not None]
            for arg, default in pairs:
                if arg.arg in {"seed", "rng"} \
                        and isinstance(default, ast.Constant) \
                        and default.value is None:
                    yield self.violation(
                        ctx, default.lineno,
                        f"parameter '{arg.arg}' defaults to None "
                        f"(entropy-seeded); default to an integer seed")


RULES = [UnseededRng, WallClock, DurationClock, GlobalRngSeed,
         SeedDefaultNone]
