"""Rules protecting deterministic iteration order.

Python sets iterate in an order derived from element hashes and table
history; for strings that order changes with ``PYTHONHASHSEED``.  Any
schedule, trace, or event sequence built by walking a set can therefore
differ between runs.  Dicts and lists preserve insertion order and are
fine.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.check.lint import LintContext, Violation
from repro.check.rules import Rule, SIM_CRITICAL

__all__ = ["SetIteration", "BuiltinHash", "RULES"]

#: consumers whose result depends on element *order*
_ORDER_SENSITIVE_CALLS = {"list", "tuple", "enumerate", "iter", "next",
                          "zip"}
#: consumers that reduce a set order-independently -- these are safe
_ORDER_FREE_CALLS = {"sorted", "len", "sum", "min", "max", "any", "all",
                     "set", "frozenset"}

_SET_METHODS = {"union", "intersection", "difference",
                "symmetric_difference"}


def _is_unordered_set(node: ast.AST) -> bool:
    """Syntactic witness that ``node`` evaluates to a set."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        if isinstance(node.func, ast.Name) \
                and node.func.id in {"set", "frozenset"}:
            return True
        if isinstance(node.func, ast.Attribute) \
                and node.func.attr in _SET_METHODS \
                and _is_unordered_set(node.func.value):
            return True
    if isinstance(node, ast.BinOp) \
            and isinstance(node.op, (ast.BitOr, ast.BitAnd, ast.Sub,
                                     ast.BitXor)):
        return _is_unordered_set(node.left) or _is_unordered_set(node.right)
    return False


class SetIteration(Rule):
    """No iteration order drawn from an unordered set."""

    rule_id = "set-iteration"
    title = "do not iterate sets where order matters"
    rationale = ("Set iteration order varies with PYTHONHASHSEED and "
                 "insertion history; wrap in sorted(...) before feeding "
                 "order-sensitive consumers like schedulers or traces.")
    scope = None  # ordering bugs travel; check the whole package

    def check(self, ctx: LintContext) -> Iterator[Violation]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.For) \
                    and _is_unordered_set(node.iter):
                yield self.violation(
                    ctx, node.lineno,
                    "for-loop over a set: iteration order is not "
                    "deterministic; use sorted(...)")
            elif isinstance(node, (ast.ListComp, ast.GeneratorExp,
                                   ast.DictComp, ast.SetComp)):
                for gen in node.generators:
                    # building another *set* from a set is order-free
                    if isinstance(node, ast.SetComp):
                        continue
                    if _is_unordered_set(gen.iter):
                        yield self.violation(
                            ctx, node.lineno,
                            "comprehension over a set: result order is "
                            "not deterministic; use sorted(...)")
            elif isinstance(node, ast.Call) \
                    and isinstance(node.func, ast.Name) \
                    and node.func.id in _ORDER_SENSITIVE_CALLS \
                    and node.args \
                    and _is_unordered_set(node.args[0]):
                yield self.violation(
                    ctx, node.lineno,
                    f"{node.func.id}() materialises set order; use "
                    f"sorted(...) for a stable sequence")


class BuiltinHash(Rule):
    """No salted ``hash()`` feeding simulation state."""

    rule_id = "builtin-hash"
    title = "builtin hash() is salted per process"
    rationale = ("hash() of str/bytes changes with PYTHONHASHSEED, so "
                 "anything keyed or ordered by it differs between runs; "
                 "use hashlib or an explicit integer key.")
    scope = SIM_CRITICAL + ("repro.graph", "repro.designs",
                            "repro.allocation")

    def check(self, ctx: LintContext) -> Iterator[Violation]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Call) \
                    and isinstance(node.func, ast.Name) \
                    and node.func.id == "hash":
                yield self.violation(
                    ctx, node.lineno,
                    "builtin hash() is salted per process; use hashlib "
                    "for stable digests")


RULES = [SetIteration, BuiltinHash]
