"""The lint rule catalog.

Rules are small AST visitors grouped by the invariant they protect:

* :mod:`repro.check.rules.determinism` -- seeded randomness and no
  wall-clock reads inside simulation-critical packages;
* :mod:`repro.check.rules.ordering` -- no iteration order drawn from
  unordered containers or the salted ``hash``;
* :mod:`repro.check.rules.constants` -- device latency constants flow
  through :mod:`repro.flash.params`, never inline;
* :mod:`repro.check.rules.hygiene` -- no mutable default arguments or
  bare ``except`` in the package.

Every rule has a stable kebab-case ``rule_id`` (the pragma key), a
one-line ``title``, a ``rationale`` and a ``scope`` -- the package
prefixes it applies to (``None`` = all of ``repro``).
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Sequence

from repro.check.lint import LintContext, Violation

__all__ = ["Rule", "ALL_RULES", "RULES_BY_ID", "rule_catalog",
           "SIM_CRITICAL"]

#: Packages whose behaviour feeds simulated time and event ordering.
SIM_CRITICAL = ("repro.sim", "repro.flash", "repro.retrieval",
                "repro.traces")


class Rule:
    """Base class: subclasses set the metadata and implement ``check``."""

    rule_id: str = ""
    title: str = ""
    rationale: str = ""
    #: package prefixes the rule applies to; ``None`` = everywhere
    scope: Optional[Sequence[str]] = None

    def check(self, ctx: LintContext) -> Iterator[Violation]:
        raise NotImplementedError

    def violation(self, ctx: LintContext, line: int,
                  message: str) -> Violation:
        return Violation(rule_id=self.rule_id, path=ctx.path,
                         line=line, message=message)

    def describe(self) -> Dict[str, object]:
        return {"id": self.rule_id, "title": self.title,
                "rationale": self.rationale,
                "scope": list(self.scope) if self.scope else "repro"}


def _build_registry() -> List[Rule]:
    from repro.check.rules import constants, determinism, hygiene, ordering

    rules: List[Rule] = []
    for module in (determinism, ordering, constants, hygiene):
        rules.extend(cls() for cls in module.RULES)
    ids = [r.rule_id for r in rules]
    if len(ids) != len(set(ids)):  # pragma: no cover - registry bug
        raise RuntimeError(f"duplicate rule ids: {ids}")
    return rules


ALL_RULES: List[Rule] = _build_registry()
RULES_BY_ID: Dict[str, Rule] = {r.rule_id: r for r in ALL_RULES}


def rule_catalog() -> List[Dict[str, object]]:
    """Machine-readable catalog (embedded in the JSON report)."""
    return [r.describe() for r in ALL_RULES]
