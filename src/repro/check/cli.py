"""Command-line entry point: ``python -m repro.check``.

Runs the repo-specific linter over the source tree, optionally the
whole-program flow analysis (``--all``) and the seeded
double-execution determinism probe, and prints a summary in the
requested ``--format``.  ``--sarif`` additionally writes the flow
findings as a SARIF artefact for code-scanning upload.  Exit status 0
iff everything passed; with ``--baseline check`` the flow section
fails only on findings *not* recorded in the committed baseline.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional

from repro.check.determinism import PROBE_WORKLOADS
from repro.check.report import default_src_root, run_checks

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.check",
        description="determinism & invariant checks for the repro tree")
    parser.add_argument(
        "--src", type=Path, default=None,
        help="directory containing the repro package "
             "(default: the imported one)")
    parser.add_argument(
        "--all", action="store_true", dest="run_all",
        help="also run the whole-program flow analysis "
             "(taint, seed-flow, pickle-safety, contract-flow); "
             "probes stay opt-in via --probe")
    parser.add_argument(
        "--lint-only", action="store_true",
        help="skip the determinism probes")
    parser.add_argument(
        "--probe", action="append", choices=sorted(PROBE_WORKLOADS),
        default=None, metavar="WORKLOAD",
        help="probe workload(s) to double-run (default: fig8 unless "
             "--all/--lint-only); repeatable")
    parser.add_argument(
        "--runs", type=int, default=2,
        help="executions per probe (default 2)")
    parser.add_argument(
        "--seed", type=int, default=0,
        help="seed for the probe runs (default 0)")
    parser.add_argument(
        "--sanitize", action="store_true",
        help="enable runtime sanitizers during the probe runs")
    parser.add_argument(
        "--format", choices=("text", "json", "sarif"),
        default="text",
        help="stdout format (sarif covers the flow findings only)")
    parser.add_argument(
        "--baseline", choices=("write", "check"), default="check",
        help="'check' (default) fails only on flow findings missing "
             "from the baseline file; 'write' records the current "
             "findings and exits 0")
    parser.add_argument(
        "--baseline-file", type=Path, default=None, metavar="PATH",
        help="flow baseline location (default: FLOW_BASELINE.json "
             "next to the source tree)")
    parser.add_argument(
        "--sarif", type=Path, default=None, metavar="PATH",
        help="also write the flow findings as SARIF here")
    parser.add_argument(
        "--json", type=Path, default=None, metavar="PATH",
        help="write the JSON report here ('-' for stdout)")
    parser.add_argument(
        "--quiet", action="store_true",
        help="suppress the human-readable summary")
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    src = args.src if args.src is not None else default_src_root()
    if not (src / "repro").is_dir():
        print(f"error: {src} does not contain a 'repro' package",
              file=sys.stderr)
        return 2

    if args.probe is not None:
        probes: List[str] = args.probe
    elif args.lint_only or args.run_all:
        probes = []
    else:
        probes = ["fig8"]

    if args.sanitize:
        from repro.check import sanitizers

        sanitizers.enable()

    from repro.check.flow import default_baseline_path

    baseline_file = args.baseline_file if args.baseline_file is not None \
        else default_baseline_path(src)
    report = run_checks(src_root=src, probe_workloads=probes,
                        seed=args.seed, runs=args.runs,
                        flow=args.run_all,
                        flow_baseline=baseline_file)

    if args.run_all and args.baseline == "write":
        from repro.check.flow import Baseline

        Baseline.from_findings(report.flow.findings).save(baseline_file)
        if not args.quiet:
            print(f"wrote {len(report.flow.findings)} finding(s) to "
                  f"{baseline_file}")

    if args.json is not None:
        payload = report.to_json()
        if str(args.json) == "-":
            print(payload)
        else:
            args.json.write_text(payload + "\n", encoding="utf-8")
    if args.sarif is not None or args.format == "sarif":
        from repro.check.flow import sarif_json

        findings = report.flow.findings if report.flow else []
        baselined = frozenset(f.fingerprint()
                              for f in report.flow.baselined) \
            if report.flow else frozenset()
        sarif = sarif_json(findings, baselined)
        if args.sarif is not None:
            args.sarif.parent.mkdir(parents=True, exist_ok=True)
            args.sarif.write_text(sarif + "\n", encoding="utf-8")
        if args.format == "sarif":
            print(sarif)
    if args.format == "json":
        print(report.to_json())
    elif args.format == "text" and not args.quiet:
        print(report.render())

    if args.run_all and args.baseline == "write":
        return 0
    return 0 if report.passed else 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
