"""Command-line entry point: ``python -m repro.check``.

Runs the repo-specific linter over the source tree, the seeded
double-execution determinism probe, and prints a human summary; with
``--json`` the machine-readable report lands where CI can archive it.
Exit status 0 iff everything passed.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional

from repro.check.determinism import PROBE_WORKLOADS
from repro.check.report import default_src_root, run_checks

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.check",
        description="determinism & invariant checks for the repro tree")
    parser.add_argument(
        "--src", type=Path, default=None,
        help="directory containing the repro package "
             "(default: the imported one)")
    parser.add_argument(
        "--lint-only", action="store_true",
        help="skip the determinism probes")
    parser.add_argument(
        "--probe", action="append", choices=sorted(PROBE_WORKLOADS),
        default=None, metavar="WORKLOAD",
        help="probe workload(s) to double-run (default: fig8); "
             "repeatable")
    parser.add_argument(
        "--runs", type=int, default=2,
        help="executions per probe (default 2)")
    parser.add_argument(
        "--seed", type=int, default=0,
        help="seed for the probe runs (default 0)")
    parser.add_argument(
        "--sanitize", action="store_true",
        help="enable runtime sanitizers during the probe runs")
    parser.add_argument(
        "--json", type=Path, default=None, metavar="PATH",
        help="write the JSON report here ('-' for stdout)")
    parser.add_argument(
        "--quiet", action="store_true",
        help="suppress the human-readable summary")
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    src = args.src if args.src is not None else default_src_root()
    if not (src / "repro").is_dir():
        print(f"error: {src} does not contain a 'repro' package",
              file=sys.stderr)
        return 2

    if args.lint_only:
        probes: List[str] = []
    elif args.probe is not None:
        probes = args.probe
    else:
        probes = ["fig8"]

    if args.sanitize:
        from repro.check import sanitizers

        sanitizers.enable()

    report = run_checks(src_root=src, probe_workloads=probes,
                        seed=args.seed, runs=args.runs)
    if args.json is not None:
        payload = report.to_json()
        if str(args.json) == "-":
            print(payload)
        else:
            args.json.write_text(payload + "\n", encoding="utf-8")
    if not args.quiet:
        print(report.render())
    return 0 if report.passed else 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
