"""The combined check report: lint + flow analysis + probes, as JSON.

``run_checks`` is the library face of ``python -m repro.check``; CI
consumes the JSON artefact, humans the rendered summary.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional

from repro.check.determinism import DeterminismProbe, determinism_probe
from repro.check.flow.engine import FlowReport
from repro.check.lint import LintReport, lint_paths
from repro.check.rules import rule_catalog

__all__ = ["CheckReport", "run_checks", "default_src_root"]

#: report format version, bumped on breaking JSON changes
SCHEMA_VERSION = 2


@dataclass
class CheckReport:
    """Everything one ``repro.check`` invocation produced."""

    lint: LintReport
    probes: List[DeterminismProbe]
    src_root: str
    #: whole-program analysis outcome (``--all``), or None if skipped
    flow: Optional[FlowReport] = None

    @property
    def passed(self) -> bool:
        return self.lint.clean \
            and all(p.identical for p in self.probes) \
            and (self.flow is None or self.flow.clean)

    def to_dict(self) -> Dict[str, object]:
        return {
            "schema_version": SCHEMA_VERSION,
            "tool": "repro.check",
            "src_root": self.src_root,
            "passed": self.passed,
            "lint": {
                "files_checked": self.lint.files_checked,
                "violations": [v.to_dict()
                               for v in self.lint.violations],
                "clean": self.lint.clean,
            },
            "rules": rule_catalog(),
            "determinism": [p.to_dict() for p in self.probes],
            "flow": self.flow.to_dict() if self.flow else None,
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True)

    def render(self) -> str:
        lines = [f"repro.check over {self.src_root}"]
        lines.append(f"  lint: {len(self.lint.violations)} violation(s) "
                     f"in {self.lint.files_checked} file(s), "
                     f"{len(rule_catalog())} rules")
        for v in self.lint.violations:
            lines.append("    " + v.render())
        if self.flow is not None:
            lines.append(self.flow.render())
        for p in self.probes:
            mark = "ok" if p.identical else "FAIL"
            lines.append(f"  determinism[{p.workload}]: {mark} -- "
                         f"{p.detail}")
        lines.append("PASSED" if self.passed else "FAILED")
        return "\n".join(lines)


def default_src_root() -> Path:
    """The ``src`` directory this installation was imported from."""
    import repro

    return Path(repro.__file__).resolve().parents[1]


def run_checks(src_root: Optional[Path] = None,
               probe_workloads: Optional[List[str]] = None,
               seed: int = 0, runs: int = 2,
               flow: bool = False,
               flow_baseline: Optional[Path] = None,
               flow_cache: Optional[Path] = None) -> CheckReport:
    """Lint the tree, optionally flow-analyze it, and run the probes.

    Parameters
    ----------
    src_root:
        Directory containing the ``repro`` package (default: the one
        this interpreter imported).
    probe_workloads:
        Probe names from
        :data:`repro.check.determinism.PROBE_WORKLOADS`; ``[]``
        disables probing, ``None`` runs the default (``fig8``).
    flow:
        Run the whole-program analysis (:mod:`repro.check.flow`).
    flow_baseline:
        Baseline file for the flow findings; defaults to
        ``FLOW_BASELINE.json`` next to ``src_root``.  A missing file
        is an empty baseline (the tree must be clean).
    flow_cache:
        Summary-cache path (``None`` uses the default under
        ``.benchmarks/``; pass a tempdir path in tests).
    """
    root = Path(src_root) if src_root is not None else default_src_root()
    lint = lint_paths(root)
    flow_report: Optional[FlowReport] = None
    if flow:
        from repro.check.flow import (Baseline, analyze,
                                      default_baseline_path,
                                      default_cache_path)

        bpath = flow_baseline if flow_baseline is not None \
            else default_baseline_path(root)
        base = Baseline.load(bpath) if Path(bpath).is_file() \
            else Baseline.empty()
        cpath = flow_cache if flow_cache is not None \
            else default_cache_path()
        flow_report = analyze(root, cache_path=cpath, baseline=base)
    names = ["fig8"] if probe_workloads is None else probe_workloads
    probes = [determinism_probe(name, seed=seed, runs=runs)
              for name in names]
    return CheckReport(lint=lint, probes=probes, src_root=str(root),
                       flow=flow_report)
