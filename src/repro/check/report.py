"""The combined check report: lint + determinism probe, as JSON.

``run_checks`` is the library face of ``python -m repro.check``; CI
consumes the JSON artefact, humans the rendered summary.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional

from repro.check.determinism import DeterminismProbe, determinism_probe
from repro.check.lint import LintReport, lint_paths
from repro.check.rules import rule_catalog

__all__ = ["CheckReport", "run_checks", "default_src_root"]

#: report format version, bumped on breaking JSON changes
SCHEMA_VERSION = 1


@dataclass
class CheckReport:
    """Everything one ``repro.check`` invocation produced."""

    lint: LintReport
    probes: List[DeterminismProbe]
    src_root: str

    @property
    def passed(self) -> bool:
        return self.lint.clean and all(p.identical for p in self.probes)

    def to_dict(self) -> Dict[str, object]:
        return {
            "schema_version": SCHEMA_VERSION,
            "tool": "repro.check",
            "src_root": self.src_root,
            "passed": self.passed,
            "lint": {
                "files_checked": self.lint.files_checked,
                "violations": [v.to_dict()
                               for v in self.lint.violations],
                "clean": self.lint.clean,
            },
            "rules": rule_catalog(),
            "determinism": [p.to_dict() for p in self.probes],
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True)

    def render(self) -> str:
        lines = [f"repro.check over {self.src_root}"]
        lines.append(f"  lint: {len(self.lint.violations)} violation(s) "
                     f"in {self.lint.files_checked} file(s), "
                     f"{len(rule_catalog())} rules")
        for v in self.lint.violations:
            lines.append("    " + v.render())
        for p in self.probes:
            mark = "ok" if p.identical else "FAIL"
            lines.append(f"  determinism[{p.workload}]: {mark} -- "
                         f"{p.detail}")
        lines.append("PASSED" if self.passed else "FAILED")
        return "\n".join(lines)


def default_src_root() -> Path:
    """The ``src`` directory this installation was imported from."""
    import repro

    return Path(repro.__file__).resolve().parents[1]


def run_checks(src_root: Optional[Path] = None,
               probe_workloads: Optional[List[str]] = None,
               seed: int = 0, runs: int = 2) -> CheckReport:
    """Lint the tree and run the determinism probes.

    Parameters
    ----------
    src_root:
        Directory containing the ``repro`` package (default: the one
        this interpreter imported).
    probe_workloads:
        Probe names from
        :data:`repro.check.determinism.PROBE_WORKLOADS`; ``[]``
        disables probing, ``None`` runs the default (``fig8``).
    """
    root = Path(src_root) if src_root is not None else default_src_root()
    lint = lint_paths(root)
    names = ["fig8"] if probe_workloads is None else probe_workloads
    probes = [determinism_probe(name, seed=seed, runs=runs)
              for name in names]
    return CheckReport(lint=lint, probes=probes, src_root=str(root))
