"""Determinism and invariant checking for the reproduction.

The QoS guarantees of the paper are statements about *exact* system
behaviour: a deterministic event-driven simulation, flow networks whose
solutions respect conservation and capacity, and allocations whose
pairwise balance underwrites the retrieval theorem.  ``repro.check``
turns those obligations into tooling:

``repro.check.lint``
    An AST-based linter with repo-specific rules (no unseeded RNG or
    wall-clock reads in simulation code, no unordered-set iteration, no
    inline latency constants, ...).  Each rule can be waived on a line
    with a ``# repro: allow[rule-id]`` pragma.

``repro.check.flow``
    A whole-program static analysis: taint from determinism sinks,
    seed provenance, parallel-cell pickle-safety and fault-contract
    forwarding, gated by the committed ``FLOW_BASELINE.json`` and run
    via ``python -m repro.check --all``.

``repro.check.sanitizers``
    Runtime invariant assertions -- flow conservation, event-ordering
    monotonicity, FCFS service order, replica-placement validity --
    compiled in behind the ``REPRO_SANITIZERS`` environment variable so
    the hot paths stay free when disabled.

``repro.check.determinism``
    A double-execution probe: run a seeded experiment twice and demand
    bit-identical serialized results.

``python -m repro.check`` runs the lot and emits a JSON report; see
``docs/checking.md``.
"""

from __future__ import annotations

from repro.check.determinism import DeterminismProbe, determinism_probe
from repro.check.lint import LintReport, Violation, lint_paths, lint_source
from repro.check.report import CheckReport, run_checks
from repro.check.rules import ALL_RULES, Rule, rule_catalog

__all__ = [
    "ALL_RULES",
    "CheckReport",
    "DeterminismProbe",
    "LintReport",
    "Rule",
    "Violation",
    "determinism_probe",
    "lint_paths",
    "lint_source",
    "rule_catalog",
    "run_checks",
]
