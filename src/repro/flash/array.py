"""The flash array: N modules behind a dispatching controller."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro import obs
from repro.flash.metrics import ResponseStats
from repro.flash.module import FlashModule
from repro.flash.params import FlashParams
from repro.sim import Environment, Event

__all__ = ["IORequest", "FlashArray"]


@dataclass
class IORequest:
    """One block-level I/O request travelling through the array.

    Attributes
    ----------
    issued_at:
        When the I/O driver sent the request (response time reference
        point; see paper §V-C1).
    arrival:
        Original application arrival time; ``issued_at - arrival`` is
        the admission/alignment delay.
    bucket:
        Data bucket (block) identifier.
    """

    arrival: float
    bucket: int
    is_read: bool = True
    n_blocks: int = 1
    app: str = ""
    issued_at: float = 0.0
    #: scheduling priority: lower is served first on priority-queue
    #: modules (0 = foreground, higher = background)
    priority: int = 0
    device: int = -1
    enqueued_at: float = 0.0
    started_at: float = 0.0
    completed_at: float = 0.0
    done: Optional[Event] = None
    #: True when the request could not be served (module dead, read
    #: retries exhausted, no live replica); failed requests never enter
    #: the response statistics
    failed: bool = False
    #: why the request failed ("dead", "read_error", "unavailable")
    fail_reason: str = ""
    #: True when service crossed the fault path (down-window wait,
    #: degraded latency, read retries, failover) -- QoS violations on
    #: faulted requests are reported as degraded-mode violations
    faulted: bool = False
    #: read-error retries plus driver-level failovers consumed
    retries: int = 0

    @property
    def response_ms(self) -> float:
        """I/O driver response time (issue -> completion)."""
        return self.completed_at - self.issued_at

    @property
    def delay_ms(self) -> float:
        """Admission / alignment delay before issue."""
        return self.issued_at - self.arrival

    @property
    def total_ms(self) -> float:
        """End-to-end latency seen by the application."""
        return self.completed_at - self.arrival


class FlashArray:
    """``n_modules`` flash modules sharing a simulation environment.

    The array is deliberately policy-free: *which* module serves a
    request is decided by the retrieval layer; the array provides the
    queueing and timing substrate plus response accounting.
    """

    def __init__(self, env: Environment, n_modules: int,
                 params: Optional[FlashParams] = None,
                 ftl_factory=None, priority_queues: bool = False,
                 module_factory=None, faults=None):
        if n_modules < 1:
            raise ValueError("need at least one module")
        if faults is not None and module_factory is not None:
            raise ValueError("fault injection requires the standard "
                             "FlashModule; custom module types are "
                             "not fault-aware")
        self.env = env
        self.params = params or FlashParams()
        #: optional :class:`repro.faults.FaultSchedule` injected into
        #: every module's service loop
        self.faults = faults
        if module_factory is not None:
            # custom module type (channel-level geometry, HDD, ...);
            # must be interface-compatible with FlashModule
            self.modules = [module_factory(env, i)
                            for i in range(n_modules)]
        else:
            views = [None] * n_modules
            if faults is not None and len(faults):
                from repro.faults.view import ModuleFaultView

                views = [ModuleFaultView(faults, i)
                         for i in range(n_modules)]
            self.modules = [
                FlashModule(env, i, self.params,
                            ftl=ftl_factory() if ftl_factory else None,
                            priority_queue=priority_queues,
                            faults=views[i])
                for i in range(n_modules)]
        self.stats = ResponseStats()

    @property
    def n_modules(self) -> int:
        return len(self.modules)

    def issue(self, request: IORequest, device: int) -> Event:
        """Issue ``request`` to ``device``; returns its completion event.

        Sets ``issued_at`` to the current simulation time and hooks the
        completion into the array's response statistics.
        """
        if not 0 <= device < self.n_modules:
            raise IndexError(f"device {device} out of range")
        request.issued_at = self.env.now
        request.done = self.env.event()
        request.done.add_callback(self._on_complete)
        if obs.ACTIVE:
            obs.SESSION.on_issue()
        self.modules[device].submit(request)
        return request.done

    def _on_complete(self, event: Event) -> None:
        request: IORequest = event.value
        if obs.ACTIVE:
            obs.SESSION.on_complete()
        if request.failed:
            # Failed attempts carry no meaningful response time; the
            # driver decides whether to fail over or give up.
            return
        self.stats.record(request.response_ms, request.delay_ms)

    def queue_depths(self) -> List[int]:
        """Snapshot of per-module queue depths."""
        return [m.queue_depth for m in self.modules]
