"""A mechanical hard-disk module, for the paper's motivation claim.

Paper §II-A: "flash arrays do not have variable delays caused by
mechanical process of accessing disk data such as rotational delay,
seek time ... Because of these unpredictable delays, proposing a QoS
framework for traditional HDD based storage arrays cannot exceed
providing a best effort performance rather than giving response time
guarantees."

:class:`HDDModule` is interface-compatible with
:class:`~repro.flash.module.FlashModule` but serves each request with

    ``seek(distance) + rotational latency + transfer``

where the seek depends on how far the head must travel from the
previous request's block and the rotational latency is uniform over a
revolution.  Under the *same* design-theoretic allocation, the variance
of these delays breaks the deterministic guarantee -- exactly the
motivation ablation measures.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

import numpy as np

from repro.sim import Environment, Store

if TYPE_CHECKING:  # pragma: no cover
    from repro.flash.array import IORequest

__all__ = ["HDDParams", "HDDModule", "ENTERPRISE_15K"]


@dataclass(frozen=True)
class HDDParams:
    """Timing of a mechanical disk (milliseconds).

    Attributes
    ----------
    full_seek_ms:
        Head travel across the whole surface; a request's seek is
        ``full_seek_ms * sqrt(distance_fraction)`` (the classic
        acceleration-limited seek curve).
    min_seek_ms:
        Track-to-track seek, the floor for any non-zero distance.
    rpm:
        Spindle speed; rotational latency is uniform on
        ``[0, 60000/rpm)``.
    transfer_ms:
        Media transfer time for one 8 KB block.
    n_blocks:
        Addressable blocks (for distance normalisation).
    """

    full_seek_ms: float = 8.0
    min_seek_ms: float = 0.3
    rpm: int = 15_000
    transfer_ms: float = 0.05
    n_blocks: int = 1 << 20

    def __post_init__(self):
        if self.full_seek_ms < self.min_seek_ms:
            raise ValueError("full seek cannot undercut minimum seek")
        if self.rpm <= 0 or self.transfer_ms < 0 or self.n_blocks < 1:
            raise ValueError("invalid HDD parameters")

    @property
    def revolution_ms(self) -> float:
        return 60_000.0 / self.rpm

    def seek_ms(self, from_block: int, to_block: int) -> float:
        """Seek time for a head move between two blocks."""
        if from_block == to_block:
            return 0.0
        frac = abs(to_block - from_block) / self.n_blocks
        return max(self.min_seek_ms,
                   self.full_seek_ms * math.sqrt(min(1.0, frac)))


#: A 15K RPM enterprise drive -- the best HDDs the paper's era offered.
ENTERPRISE_15K = HDDParams()


class HDDModule:
    """One mechanical disk with a FCFS queue.

    Interface-compatible with :class:`~repro.flash.module.FlashModule`
    so it drops into :class:`~repro.flash.array.FlashArray` via the
    ``module_factory`` hook.  Rotational latency is drawn from a
    deterministic per-module RNG so runs stay reproducible.
    """

    def __init__(self, env: Environment, module_id: int,
                 params: Optional[HDDParams] = None, seed: int = 0):
        self.env = env
        self.module_id = module_id
        self.hdd = params or ENTERPRISE_15K
        self.queue: Store = Store(env)
        self.busy = False
        self.n_served = 0
        self.busy_time = 0.0
        self._head = 0
        self._rng = np.random.default_rng(seed * 1009 + module_id)
        env.process(self._service_loop())

    def submit(self, request: "IORequest") -> None:
        request.device = self.module_id
        request.enqueued_at = self.env.now
        self.queue.put(request)

    @property
    def queue_depth(self) -> int:
        return len(self.queue)

    def utilisation(self, elapsed: float) -> float:
        return self.busy_time / elapsed if elapsed > 0 else 0.0

    def _service_loop(self):
        while True:
            request = yield self.queue.get()
            self.busy = True
            request.started_at = self.env.now
            target = int(request.bucket) % self.hdd.n_blocks
            seek = self.hdd.seek_ms(self._head, target)
            rotation = float(self._rng.uniform(0,
                                               self.hdd.revolution_ms))
            service = (seek + rotation
                       + self.hdd.transfer_ms * request.n_blocks)
            self._head = target
            yield self.env.timeout(service)
            self.busy = False
            self.busy_time += service
            self.n_served += 1
            request.completed_at = self.env.now
            request.done.succeed(request)
