"""Trace players: feed block-request traces through the flash array.

Two drivers mirror the paper's two retrieval modes:

* :class:`BatchTracePlayer` -- interval-based design-theoretic
  retrieval (§III-C, used for Table III): requests are aligned to
  interval boundaries, each interval's batch is scheduled as a whole,
  and every request is issued at the interval start.
* :class:`OnlineTracePlayer` -- online retrieval (§IV-B, used for
  Figures 8-10 and 12): requests are served as they arrive, FCFS,
  with admission control deciding between *serve now*, *delay until a
  replica is idle* (deterministic QoS), *queue on the earliest-finish
  replica* (statistical QoS with ``Q < ε``), or *delay to the next
  interval* (budget overflow).

Both drivers support two interchangeable playback engines (see
:func:`resolve_engine`): the DES, which executes the actual service
through the simulated flash array, and a closed-form *fast* engine.
The online driver keeps a busy-until mirror to make placement
decisions; with deterministic service times the mirror is exact, so on
homogeneous constant-latency configurations the fast engine reads the
completion times straight off the mirror (and the batch player off the
Lindley recurrence, :mod:`repro.flash.fastpath`) instead of stepping
the event loop.  The engines are bit-for-bit identical where both
apply -- enforced by property tests and the determinism probes -- and
``"auto"`` falls back to the DES whenever an FTL or a custom module
type makes service times state-dependent.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro import obs
from repro.allocation.base import AllocationScheme
from repro.core.admission import (
    DeterministicAdmission,
    ExactAdmission,
    StatisticalAdmission,
)
from repro.flash import admitpath
from repro.flash.array import FlashArray, IORequest
from repro.flash.fastpath import supports_fast_playback
from repro.flash.metrics import IntervalSeries
from repro.flash.params import FlashParams
from repro.retrieval.design_theoretic import design_theoretic_retrieval
from repro.retrieval.policy import combined_retrieval
from repro.sim import Environment

__all__ = ["BatchTracePlayer", "OnlineTracePlayer",
           "OnlineStreamSession", "PlayedRequest",
           "resolve_engine", "select_engine", "engine_tally",
           "reset_engine_tally"]


#: process-wide tally of engine selections and fallback reasons --
#: purely diagnostic (benches report fast-path coverage from it);
#: never read by any simulation code
_ENGINE_TALLY: Dict[str, int] = {}


def engine_tally() -> Dict[str, int]:
    """Snapshot of engine selections since the last reset.

    Keys are ``"fast"``, ``"des"`` and ``"fallback.<reason>"`` for
    playback-engine picks, plus ``"admission.vector"`` /
    ``"admission.scalar"`` / ``"admission.demoted"`` and
    ``"admission.fallback.<reason>"`` for the admission-kernel path
    each streaming session resolved to; consumed by
    ``tools/bench_runner.py`` to report fast-path coverage instead of
    guessing.
    """
    return dict(_ENGINE_TALLY)


def reset_engine_tally() -> None:
    _ENGINE_TALLY.clear()


def _tally_engine(engine: str, reason: str) -> None:
    _ENGINE_TALLY[engine] = _ENGINE_TALLY.get(engine, 0) + 1
    if reason:
        key = f"fallback.{reason}"
        _ENGINE_TALLY[key] = _ENGINE_TALLY.get(key, 0) + 1
    if obs.ACTIVE:
        obs.SESSION.on_engine(engine, reason)


def _tally_admission(kind: str, reason: str) -> None:
    """Record one session's admission-kernel resolution.

    ``kind`` is ``"vector"`` (the :mod:`repro.flash.admitpath`
    segmented kernel), ``"scalar"`` (the reference loop) or
    ``"demoted"`` (a vector session that fell back mid-stream);
    ``reason`` names the fallback, mirroring the engine tally.
    """
    key = f"admission.{kind}"
    _ENGINE_TALLY[key] = _ENGINE_TALLY.get(key, 0) + 1
    if reason:
        key = f"admission.fallback.{reason}"
        _ENGINE_TALLY[key] = _ENGINE_TALLY.get(key, 0) + 1


def select_engine(engine: str, module_factory=None, ftl_factory=None,
                  priority_queues: bool = False,
                  faults=None) -> Tuple[str, str]:
    """Pick the playback engine; returns ``(engine, fallback_reason)``.

    ``"auto"`` (the default everywhere) selects the closed-form fast
    path whenever the configuration is eligible (see
    :func:`repro.flash.fastpath.supports_fast_playback`) and the DES
    otherwise; ``"fast"`` insists and raises on ineligible
    configurations; ``"des"`` always steps the event loop.  Both
    engines produce bit-identical results on eligible configurations --
    enforced by the property tests and the ``fastpath``/``faults``
    determinism probes.

    Fault schedules (:mod:`repro.faults`) -- empty *or* non-empty --
    keep the fast engine: playback is replayed event-free by
    :class:`repro.flash.faulted.FaultedReplay`, byte-identical to the
    DES.  Only state-dependent service hooks still fall back, and the
    returned ``fallback_reason`` names which one (``"module_factory"``,
    ``"ftl_factory"``, ``"priority_queues"``, or ``"forced"`` when the
    caller demanded ``"des"``; empty string when the fast path runs).
    """
    if engine not in ("auto", "des", "fast"):
        raise ValueError(f"unknown engine {engine!r}")
    if engine == "des":
        return "des", "forced"
    eligible = supports_fast_playback(module_factory=module_factory,
                                      ftl_factory=ftl_factory,
                                      priority_queues=priority_queues,
                                      faults=faults)
    if eligible:
        return "fast", ""
    if engine == "fast":
        raise ValueError(
            "fast playback requires homogeneous constant-latency FCFS "
            "modules (no module_factory, no ftl_factory, no priority "
            "queues); fault schedules are fine")
    if module_factory is not None:
        return "des", "module_factory"
    if ftl_factory is not None:
        return "des", "ftl_factory"
    return "des", "priority_queues"


def resolve_engine(engine: str, module_factory=None,
                   ftl_factory=None, faults=None) -> str:
    """:func:`select_engine` without the reason (compatibility API)."""
    return select_engine(engine, module_factory=module_factory,
                         ftl_factory=ftl_factory, faults=faults)[0]


def _collect_series(played: Sequence["PlayedRequest"]) -> IntervalSeries:
    # Observability sees every played request here -- the one pass both
    # engines share -- so instrumented metrics/spans are derived from
    # the same bit-identical timestamps regardless of engine.
    session = obs.SESSION if obs.ACTIVE else None
    series = IntervalSeries()
    for pr in played:
        if session is not None:
            session.observe_request(pr)
        if pr.rejected or pr.failed:
            # Never-served requests carry no meaningful response time;
            # the QoS layer accounts them separately (rejection counts,
            # degraded-mode ledger entries).
            continue
        series.record(pr.interval, pr.io.response_ms,
                      pr.io.delay_ms if pr.delayed else 0.0)
    return series


def _finish_play(played: List["PlayedRequest"], n_devices: int,
                 interval_ms: float,
                 ) -> Tuple[IntervalSeries, List["PlayedRequest"]]:
    """Shared play() epilogue: stats collection plus, when enabled,
    the per-module utilisation/queue-depth series."""
    series = _collect_series(played)
    if obs.ACTIVE:
        obs.SESSION.record_module_series(played, n_devices, interval_ms)
    return series, played


@dataclass
class PlayedRequest:
    """Bookkeeping for one request after a play-through."""

    io: IORequest
    interval: int
    delayed: bool
    #: index of the request in the caller's input arrays
    index: int = -1
    #: True when admission rejected the request outright (reject
    #: policy); the request was never served
    rejected: bool = False

    @property
    def failed(self) -> bool:
        """True when the fault layer lost the request (dead module,
        read retries exhausted, no live replica).  A property rather
        than a field because failure is discovered in DES time, after
        the :class:`PlayedRequest` is appended."""
        return self.io.failed

    @property
    def response_ms(self) -> float:
        return self.io.response_ms

    @property
    def delay_ms(self) -> float:
        return self.io.delay_ms


def _unavailable_io(arrival: float, bucket: int, t: float,
                    is_read: bool = True) -> IORequest:
    """An :class:`IORequest` failed at dispatch: no live replica."""
    io = IORequest(arrival=arrival, bucket=bucket, is_read=is_read)
    io.failed = True
    io.fail_reason = "unavailable"
    io.faulted = True
    io.issued_at = t
    io.completed_at = t
    if obs.ACTIVE:
        obs.SESSION.on_fault("unavailable")
    return io


def _group_by_interval(arrivals: Sequence[float], interval_ms: float,
                       ) -> Dict[int, List[int]]:
    groups: Dict[int, List[int]] = {}
    for i, t in enumerate(arrivals):
        idx = int(t / interval_ms + 1e-9)
        groups.setdefault(idx, []).append(i)
    return groups


class BatchTracePlayer:
    """Interval-aligned playback with batch (design-theoretic) retrieval.

    Parameters
    ----------
    allocation:
        Bucket -> replica devices mapping.
    interval_ms:
        The QoS interval ``T``.
    retrieval:
        ``"combined"`` (DTR + max-flow fallback, §III-C, default) or
        ``"guarantee"`` (plain DTR targeting the guarantee level
        ``M(b)``, the Table II semantics).
    engine:
        ``"auto"`` (closed-form fast path when eligible, else DES),
        ``"des"`` or ``"fast"`` -- see :func:`resolve_engine`.
    faults:
        Optional :class:`repro.faults.FaultSchedule`.  Dead and down
        modules are masked out of every batch's candidate sets at the
        batch instant (failure-aware retrieval); buckets with no live
        replica fail as ``"unavailable"``.  Faulted playback replays
        on the fast engine, byte-identical to the DES.
    """

    def __init__(self, allocation: AllocationScheme, interval_ms: float,
                 retrieval: str = "combined",
                 params=None, module_factory=None,
                 engine: str = "auto", faults=None):
        if interval_ms <= 0:
            raise ValueError("interval_ms must be positive")
        if retrieval not in ("combined", "guarantee", "greedy"):
            raise ValueError(f"unknown retrieval mode {retrieval!r}")
        self.allocation = allocation
        self.interval_ms = interval_ms
        self.retrieval = retrieval
        self.params = params
        #: optional custom module constructor (e.g. HDDModule for the
        #: flash-vs-HDD motivation ablation)
        self.module_factory = module_factory
        self.faults = faults
        self.engine, self.fallback_reason = select_engine(
            engine, module_factory=module_factory, faults=faults)

    @property
    def engine_selected(self) -> str:
        """The engine this player's configuration resolved to."""
        return self.engine

    def _schedule(self, candidates, carry):
        """Device assignment for one interval batch.

        ``carry[d]`` is the backlog on device ``d`` in service-time
        units at the batch instant; all modes are queue-aware so one
        slow interval does not silently cascade into the next.
        """
        n = self.allocation.n_devices
        if self.retrieval == "greedy":
            # The baseline I/O driver: arrival-order, least-loaded
            # replica (counting backlog).  No remapping, no max-flow.
            loads = list(carry)
            assignment = []
            for cands in candidates:
                best = min(cands, key=lambda d: loads[d])
                loads[best] += 1
                assignment.append(best)
            from repro.retrieval.schedule import RetrievalSchedule
            return RetrievalSchedule(tuple(assignment), n)
        if self.retrieval == "guarantee" and all(c <= 0 for c in carry):
            return design_theoretic_retrieval(
                candidates, n, guarantee_level=True,
                replication=self.allocation.replication)
        if all(c <= 0 for c in carry):
            return combined_retrieval(candidates, n)
        from repro.retrieval.maxflow import maxflow_retrieval_with_carry
        return maxflow_retrieval_with_carry(candidates, n, carry)

    def play(self, arrivals: Sequence[float], buckets: Sequence[int],
             reads: Optional[Sequence[bool]] = None,
             ) -> Tuple[IntervalSeries, List[PlayedRequest]]:
        """Play a trace; returns per-interval stats and per-request detail.

        ``arrivals[i]`` is the arrival time (ms) of a request for
        ``buckets[i]``.  Requests arriving inside an interval are issued
        at the *next* interval boundary (the alignment rule of §IV);
        requests arriving exactly at a boundary belong to the interval
        that starts there.

        The batch player is read-only (as are all the paper's batch
        experiments); mixed read/write traces go through
        :class:`OnlineTracePlayer`.
        """
        if len(arrivals) != len(buckets):
            raise ValueError("arrivals and buckets must align")
        if reads is not None and not all(reads):
            raise ValueError("BatchTracePlayer is read-only; use "
                             "OnlineTracePlayer for writes")
        _tally_engine(self.engine, self.fallback_reason)
        if self.engine == "fast":
            return self._play_fast(arrivals, buckets)
        env = Environment()
        array = FlashArray(env, self.allocation.n_devices, self.params,
                           module_factory=self.module_factory,
                           faults=self.faults)
        groups = _group_by_interval(arrivals, self.interval_ms)
        played: List[PlayedRequest] = []
        service = array.params.read_ms
        busy_until = [0.0] * self.allocation.n_devices

        def run():
            for idx in sorted(groups):
                member = groups[idx]
                start = idx * self.interval_ms
                # Alignment: mid-interval arrivals wait for the next
                # boundary.  Boundary-aligned arrivals go at their own.
                batch_time = start
                if any(arrivals[i] > start + 1e-9 for i in member):
                    batch_time = (idx + 1) * self.interval_ms
                if batch_time > env.now:
                    yield env.timeout_until(batch_time)
                # Failure-aware retrieval: dead/down modules leave the
                # candidate sets at the batch instant.
                masked = self.faults.masked_at(batch_time) \
                    if self.faults is not None else None
                live_member: List[int] = []
                cands = []
                for i in member:
                    cs = self.allocation.devices_for(int(buckets[i]))
                    if masked:
                        live = tuple(d for d in cs if d not in masked)
                        if not live:
                            io = _unavailable_io(float(arrivals[i]),
                                                 int(buckets[i]),
                                                 batch_time)
                            played.append(PlayedRequest(
                                io=io, interval=idx, index=i,
                                delayed=False))
                            continue
                        cs = live
                    live_member.append(i)
                    cands.append(cs)
                if not live_member:
                    continue
                carry = [max(0.0, b - batch_time) / service
                         for b in busy_until]
                schedule = self._schedule(cands, carry)
                for i, dev in zip(live_member, schedule.assignment):
                    io = IORequest(arrival=float(arrivals[i]),
                                   bucket=int(buckets[i]))
                    array.issue(io, dev)
                    busy_until[dev] = max(busy_until[dev],
                                          batch_time) + service
                    played.append(PlayedRequest(
                        io=io, interval=idx, index=i,
                        delayed=io.issued_at > io.arrival + 1e-9))

        env.process(run())
        env.run()
        return _finish_play(played, self.allocation.n_devices,
                            self.interval_ms)

    def _play_fast(self, arrivals: Sequence[float],
                   buckets: Sequence[int],
                   ) -> Tuple[IntervalSeries, List[PlayedRequest]]:
        """Closed-form batch playback: the busy-until recurrence IS the
        module behaviour when service times are constant, so the DES
        adds nothing -- same scheduling decisions, same floats.  Under
        a fault schedule the scheduling loop is unchanged (the mirror
        is fault-independent by construction) and service runs through
        :class:`repro.flash.faulted.FaultedReplay` instead of the
        mirror arithmetic."""
        params = self.params or FlashParams()
        replay = None
        if self.faults is not None and len(self.faults):
            from repro.flash.faulted import FaultedReplay

            replay = FaultedReplay(self.faults,
                                   self.allocation.n_devices, params)
        groups = _group_by_interval(arrivals, self.interval_ms)
        played: List[PlayedRequest] = []
        service = params.read_ms
        busy_until = [0.0] * self.allocation.n_devices
        for idx in sorted(groups):
            member = groups[idx]
            start = idx * self.interval_ms
            batch_time = start
            if any(arrivals[i] > start + 1e-9 for i in member):
                batch_time = (idx + 1) * self.interval_ms
            masked = self.faults.masked_at(batch_time) \
                if self.faults is not None else None
            live_member: List[int] = []
            cands = []
            for i in member:
                cs = self.allocation.devices_for(int(buckets[i]))
                if masked:
                    live = tuple(d for d in cs if d not in masked)
                    if not live:
                        io = _unavailable_io(float(arrivals[i]),
                                             int(buckets[i]),
                                             batch_time)
                        played.append(PlayedRequest(
                            io=io, interval=idx, index=i,
                            delayed=False))
                        continue
                    cs = live
                live_member.append(i)
                cands.append(cs)
            if not live_member:
                continue
            carry = [max(0.0, b - batch_time) / service
                     for b in busy_until]
            schedule = self._schedule(cands, carry)
            for i, dev in zip(live_member, schedule.assignment):
                io = IORequest(arrival=float(arrivals[i]),
                               bucket=int(buckets[i]))
                if replay is not None:
                    # Batch issues have no failover (as in the DES
                    # batch driver): candidates stay None.
                    replay.submit_read(io, dev, batch_time, batch_time)
                    busy_until[dev] = max(busy_until[dev],
                                          batch_time) + service
                else:
                    io.device = dev
                    io.issued_at = batch_time
                    io.enqueued_at = batch_time
                    io.started_at = max(busy_until[dev], batch_time)
                    busy_until[dev] = io.started_at + service
                    io.completed_at = busy_until[dev]
                played.append(PlayedRequest(
                    io=io, interval=idx, index=i,
                    delayed=batch_time > io.arrival + 1e-9))
        if replay is not None:
            replay.run()
        return _finish_play(played, self.allocation.n_devices,
                            self.interval_ms)


class OnlineTracePlayer:
    """Online FCFS playback with admission control (§IV-B, §V-D/E).

    Parameters
    ----------
    allocation:
        Bucket -> replica devices mapping.
    interval_ms:
        The QoS interval ``T`` (admission budget granularity and the
        response-time guarantee).
    epsilon:
        ``0`` for deterministic QoS; ``> 0`` enables statistical
        admission, which requires ``probabilities``.
    probabilities:
        Sampled ``{k: P_k}`` table (statistical mode only).
    accesses:
        Access budget ``M`` per interval (default 1, as in the paper's
        real-trace experiments where ``T`` fits one access).
    admission:
        ``"counting"`` (the paper's controllers: the deterministic
        ``S``-cap or the statistical ``Q < ε`` rule, default) or
        ``"exact"`` -- per-interval feasibility via a warm-started
        matching (:class:`repro.core.admission.ExactAdmission`), which
        admits every interval the array can provably serve instead of
        stopping at the worst-case bound.  Exact admission is a
        deterministic-QoS refinement: it requires ``epsilon == 0`` and
        no tenant budgets.
    """

    def __init__(self, allocation: AllocationScheme, interval_ms: float,
                 epsilon: float = 0.0,
                 probabilities: Optional[Dict[int, float]] = None,
                 accesses: int = 1, params=None,
                 ftl_factory=None,
                 tenant_budgets: Optional[Dict[str, int]] = None,
                 overflow: str = "delay",
                 module_factory=None,
                 engine: str = "auto",
                 admission: str = "counting",
                 faults=None):
        if interval_ms <= 0:
            raise ValueError("interval_ms must be positive")
        if epsilon > 0 and probabilities is None:
            raise ValueError("statistical mode requires probabilities")
        if overflow not in ("delay", "reject"):
            raise ValueError(f"unknown overflow policy {overflow!r}")
        if admission not in ("counting", "exact"):
            raise ValueError(f"unknown admission mode {admission!r}")
        if admission == "exact" and epsilon > 0:
            raise ValueError(
                "exact admission is a deterministic-QoS refinement; "
                "use epsilon == 0")
        if admission == "exact" and tenant_budgets is not None:
            raise ValueError(
                "exact admission does not support tenant budgets")
        self.allocation = allocation
        self.interval_ms = interval_ms
        self.epsilon = epsilon
        self.probabilities = probabilities or {}
        self.accesses = accesses
        self.params = params
        self.ftl_factory = ftl_factory
        #: optional per-application budgets (paper §III-A); when set,
        #: play() requires the aligned ``apps`` argument and enforces
        #: both the system limit and each tenant's declared size.
        self.tenant_budgets = tenant_budgets
        #: what happens to budget overflow: "delay" pushes the request
        #: to the next interval (paper's choice in §V-D, since
        #: cancelling may break applications); "reject" drops it --
        #: "it can either be rejected or delayed" (§III-A1).
        self.overflow = overflow
        #: optional custom module constructor (e.g. HDDModule).  NOTE:
        #: the busy-until mirror assumes deterministic service times;
        #: with variable-latency modules the mirror is only a
        #: heuristic and the deterministic guarantee does not hold --
        #: which is the point of the HDD counterfactual.
        self.module_factory = module_factory
        self.admission = admission
        #: optional :class:`repro.faults.FaultSchedule`.  Dead/down
        #: modules are masked out of candidate sets at dispatch time,
        #: the driver fails over to the next live replica (with the
        #: schedule's retry/backoff policy) when an issued request
        #: comes back failed, and writes go to the live replicas only.
        #: Faulted playback keeps the fast engine: the busy-until
        #: mirror drives placement exactly as in the DES (it is never
        #: updated from fault outcomes) and service replays through
        #: :class:`repro.flash.faulted.FaultedReplay`.
        self.faults = faults
        self.engine, self.fallback_reason = select_engine(
            engine, module_factory=module_factory,
            ftl_factory=ftl_factory, faults=faults)
        self._replay = None

    @property
    def engine_selected(self) -> str:
        """The engine this player's configuration resolved to."""
        return self.engine

    def _make_admission(self):
        if self.admission == "exact":
            excluded = ()
            if self.faults is not None:
                # Modules dead from the start never serve anything;
                # exact admission matches over the live array only.
                excluded = tuple(sorted(
                    m for m in range(self.allocation.n_devices)
                    if self.faults.is_dead(m, 0.0)))
            return ExactAdmission(self.allocation, self.accesses,
                                  excluded=excluded)
        if self.epsilon > 0:
            return StatisticalAdmission(
                self.probabilities, self.epsilon,
                self.allocation.replication, self.accesses)
        return DeterministicAdmission(self.allocation.replication,
                                      self.accesses)

    def play(self, arrivals: Sequence[float], buckets: Sequence[int],
             reads: Optional[Sequence[bool]] = None,
             apps: Optional[Sequence[str]] = None,
             ) -> Tuple[IntervalSeries, List[PlayedRequest]]:
        """Play a trace online; returns per-interval stats and detail.

        ``reads[i]`` False marks a write: it is applied to *every* live
        replica (replication consistency), counts ``c`` units against
        the interval budget, and completes when the slowest replica
        finishes.  With ``ftl_factory`` set, garbage-collection erases
        stall the affected module, which is exactly the read/write
        interference the write ablation measures.

        ``apps[i]`` names the issuing application; required when the
        player was built with ``tenant_budgets`` and used to enforce
        each tenant's declared per-interval request size on top of the
        system limit.
        """
        if len(arrivals) != len(buckets):
            raise ValueError("arrivals and buckets must align")
        if reads is not None and len(reads) != len(buckets):
            raise ValueError("reads must align with buckets")
        if self.tenant_budgets is not None:
            if apps is None or len(apps) != len(buckets):
                raise ValueError(
                    "tenant budgets require an aligned apps sequence")
        _tally_engine(self.engine, self.fallback_reason)
        session = OnlineStreamSession(self)
        session.feed(arrivals, buckets, reads=reads, apps=apps)
        return session.drain()

    def session(self) -> "OnlineStreamSession":
        """Open a long-running streaming session on this player.

        The session owns all play-loop state (admission window, device
        mirror, pending heap), so a caller can :meth:`~OnlineStream\
Session.feed` the trace chunk by chunk, :meth:`~OnlineStreamSession.\
advance` the clock to an interval boundary, act on what it saw
        (e.g. hand the next chunk a new placement), and keep feeding --
        traffic never stops.  Feeding the whole trace at once and
        draining is exactly :meth:`play`.
        """
        _tally_engine(self.engine, self.fallback_reason)
        return OnlineStreamSession(self)

    # -- placement ---------------------------------------------------------
    def _dispatch(self, admitted: List[int], t: float, idx: int,
                  arrivals, buckets, busy_until: List[float],
                  service: float, array: Optional[FlashArray],
                  played: List[PlayedRequest], admission) -> None:
        """Place an admitted batch of simultaneous requests.

        With a fault schedule, dead/down modules leave every candidate
        set first (failure-aware retrieval); a request whose replicas
        are all masked fails as ``"unavailable"`` without touching the
        array.
        """
        masked = self.faults.masked_at(t) \
            if self.faults is not None else None
        live_admitted: List[int] = []
        cands = []
        for i in admitted:
            cs = self.allocation.devices_for(int(buckets[i]))
            if masked:
                live = tuple(d for d in cs if d not in masked)
                if not live:
                    io = _unavailable_io(float(arrivals[i]),
                                         int(buckets[i]), t)
                    played.append(PlayedRequest(
                        io=io, interval=idx, index=i, delayed=False))
                    continue
                cs = live
            live_admitted.append(i)
            cands.append(cs)
        if not live_admitted:
            return
        if len(live_admitted) > 1:
            # Simultaneous arrivals are scheduled together (§IV-B).
            schedule = combined_retrieval(cands, self.allocation.n_devices)
            chosen = list(schedule.assignment)
        else:
            chosen = [self._pick(cands[0], t, busy_until)]
        for orig, dev, cs in zip(live_admitted, chosen, cands):
            self._issue_one(orig, dev, t, idx, arrivals, buckets,
                            busy_until, service, array, played,
                            admission, candidates=cs)

    def _pick(self, candidates: Sequence[int], t: float,
              busy_until: List[float]) -> int:
        for d in candidates:
            if busy_until[d] <= t + 1e-12:
                return d
        return min(candidates, key=lambda d: busy_until[d])

    def _issue_one(self, orig: int, dev: int, t: float, idx: int,
                   arrivals, buckets, busy_until: List[float],
                   service: float, array: Optional[FlashArray],
                   played: List[PlayedRequest], admission,
                   candidates: Optional[Sequence[int]] = None) -> None:
        io = IORequest(arrival=float(arrivals[orig]),
                       bucket=int(buckets[orig]))
        wait = busy_until[dev] - t
        guarantee = self.accesses * service
        # A queued request still meets the guarantee while
        # wait + service <= M * service; only waits beyond that are
        # QoS-relevant conflicts.  (With M = 1 any wait conflicts,
        # which is the paper's real-trace setting.)
        conflict = wait + service > guarantee + 1e-12
        admit_queued = False
        if conflict and self.epsilon > 0:
            # Statistical QoS: knowingly violate the guarantee for this
            # request (it queues) as long as the violation mass Q stays
            # below epsilon (see StatisticalAdmission.offer_conflict).
            admit_queued = bool(admission.offer_conflict())
        if conflict and not admit_queued:
            # Deterministic QoS (or epsilon budget exhausted): hold the
            # request until the device is idle, then issue -- response
            # time stays one service time and the wait is accounted as
            # admission delay (Fig 8c/d).
            issue_at = busy_until[dev]
            delayed = True
        else:
            # Serve now; within-guarantee queueing (or an admitted
            # conflict) absorbs the wait into the response (Fig 10b).
            issue_at = t
            delayed = io.arrival + 1e-9 < t  # delayed by budget earlier
        started = max(busy_until[dev], issue_at)
        busy_until[dev] = started + service
        if array is None:
            if self._replay is not None:
                # Faulted fast engine: placement above is final (the
                # mirror ignores fault outcomes, as in the DES); the
                # replay serves the queue after the driver loop ends.
                self._replay.submit_read(io, dev, issue_at, t,
                                         candidates=candidates)
            else:
                # Fast engine: with constant service times the
                # busy-until mirror *is* the module, so fill the
                # timestamps directly (same max, same single addition
                # as the service loop).
                io.device = dev
                io.issued_at = issue_at
                io.enqueued_at = issue_at
                io.started_at = started
                io.completed_at = busy_until[dev]
        else:
            array.env.process(
                self._issue_process(array, io, dev, issue_at,
                                    candidates))
        played.append(PlayedRequest(io=io, interval=idx, index=orig,
                                    delayed=delayed))

    def _issue_process(self, array: FlashArray, io: IORequest,
                       dev: int, issue_at: float,
                       candidates: Optional[Sequence[int]] = None):
        """Issue one read; under faults, fail over across replicas.

        The healthy path is a single issue-and-wait, unchanged.  With
        a fault schedule, a failed attempt (dead module, read retries
        exhausted) is retried on the next live untried replica after
        the schedule's backoff; ``issued_at`` keeps the *first* issue
        time so the recorded response spans every attempt.  When no
        live replica remains (or the retry budget runs out) the
        request stays failed.
        """
        if issue_at > array.env.now:
            yield array.env.timeout_until(issue_at)
        done = array.issue(io, dev)
        if self.faults is None:
            yield done
            return
        first_issue = io.issued_at
        retry = self.faults.retry
        tried = [dev]
        attempt = 0
        while True:
            yield done
            if not io.failed:
                return
            if candidates is None:
                return
            masked = self.faults.masked_at(array.env.now)
            alive = [d for d in candidates
                     if d not in tried and d not in masked]
            if not alive or attempt >= retry.max_retries:
                if obs.ACTIVE:
                    obs.SESSION.on_fault("unavailable")
                return
            nxt = alive[0]
            if obs.ACTIVE:
                obs.SESSION.on_fault("failover")
            backoff = retry.delay(attempt)
            attempt += 1
            io.retries += 1
            io.failed = False
            io.fail_reason = ""
            io.faulted = True
            if backoff > 0:
                yield array.env.timeout(backoff)
            tried.append(nxt)
            done = array.issue(io, nxt)
            io.issued_at = first_issue

    # -- writes --------------------------------------------------------------
    def _issue_write(self, orig: int, t: float, idx: int,
                     arrivals, buckets, busy_until: List[float],
                     params: FlashParams, array: Optional[FlashArray],
                     played: List[PlayedRequest],
                     admission) -> None:
        """Apply a write to every live replica of its bucket.

        The logical request completes when the slowest replica does;
        conflict policy mirrors the read path (deterministic QoS waits
        for all replicas to go idle, statistical QoS may queue).

        Under faults the write goes to the *live* replicas only (a
        degraded write, flagged ``faulted``); with every replica
        masked the write fails as ``"unavailable"``.
        """
        devices = self.allocation.devices_for(int(buckets[orig]))
        degraded_write = False
        if self.faults is not None:
            masked = self.faults.masked_at(t)
            if masked:
                live = tuple(d for d in devices if d not in masked)
                if not live:
                    io = _unavailable_io(float(arrivals[orig]),
                                         int(buckets[orig]), t,
                                         is_read=False)
                    played.append(PlayedRequest(
                        io=io, interval=idx, index=orig,
                        delayed=False))
                    return
                if len(live) < len(devices):
                    degraded_write = True
                    if obs.ACTIVE:
                        obs.SESSION.on_fault("degraded_write")
                devices = live
        write_service = params.write_ms
        read_service = params.read_ms
        master = IORequest(arrival=float(arrivals[orig]),
                           bucket=int(buckets[orig]), is_read=False)
        master.faulted = degraded_write
        guarantee = self.accesses * read_service
        worst_wait = max(busy_until[d] - t for d in devices)
        conflict = worst_wait + write_service > \
            max(guarantee, write_service) + 1e-12
        admit_queued = False
        if conflict and self.epsilon > 0:
            admit_queued = bool(admission.offer_conflict())
        if conflict and not admit_queued:
            issue_at = max(busy_until[d] for d in devices)
            delayed = True
        else:
            issue_at = t
            delayed = master.arrival + 1e-9 < t
        for d in devices:
            busy_until[d] = max(busy_until[d], issue_at) + write_service
        if array is None:
            master.issued_at = issue_at
            if self._replay is not None:
                self._replay.submit_write(master, devices, issue_at, t)
            else:
                master.completed_at = max(busy_until[d] for d in devices)
        else:
            array.env.process(
                self._write_process(array, master, devices, issue_at))
        played.append(PlayedRequest(io=master, interval=idx, index=orig,
                                    delayed=delayed))

    @staticmethod
    def _write_process(array: FlashArray, master: IORequest,
                       devices, issue_at: float):
        from repro.sim import AllOf

        if issue_at > array.env.now:
            yield array.env.timeout_until(issue_at)
        master.issued_at = array.env.now
        events = []
        replicas = []
        for d in devices:
            replica = IORequest(arrival=master.arrival,
                                bucket=master.bucket, is_read=False)
            replicas.append(replica)
            events.append(array.issue(replica, d))
        yield AllOf(array.env, events)
        master.completed_at = array.env.now
        # Fault accounting: a replica lost mid-write degrades the
        # logical write; losing every replica fails it.
        if any(r.failed or r.faulted for r in replicas):
            master.faulted = True
            master.retries = sum(r.retries for r in replicas)
        if replicas and all(r.failed for r in replicas):
            master.failed = True
            master.fail_reason = replicas[0].fail_reason


class OnlineStreamSession:
    """One long-running play-through of an :class:`OnlineTracePlayer`.

    Owns every piece of state the online driver threads through a
    trace -- the admission window, the tenant budgets, the busy-until
    device mirror, the pending-request heap and the played-request
    log -- so that a caller can interleave *feeding* traffic with
    *acting* on what has been served so far:

    >>> session = player.session()              # doctest: +SKIP
    >>> session.feed(chunk.arrivals, chunk.buckets)  # doctest: +SKIP
    >>> session.advance(next_chunk_start)       # doctest: +SKIP
    >>> series, played = session.drain()        # doctest: +SKIP

    ``feed`` + ``drain`` over the whole trace is byte-identical to
    :meth:`OnlineTracePlayer.play` -- the loop below *is* the play
    loop, merely re-entrant.  Identity across chunkings holds because
    the pending heap orders entries by ``(time, origin, sequence)``
    where origin 0 marks fed arrivals (in feed order) and origin 1
    marks budget-overflow re-queues (in re-queue order): at equal
    timestamps, arrivals beat re-queues regardless of how late the
    arrival was fed, exactly as the one-shot heap ordered them.

    Incremental :meth:`advance` is a fast-engine feature (the
    :mod:`repro.controller` loop); the DES drains in one
    :meth:`drain` call, where the event loop runs to completion.
    """

    def __init__(self, player: OnlineTracePlayer):
        self.player = player
        self.fast = player.engine == "fast"
        if self.fast:
            self.env = None
            self.array = None
            self.params = player.params or FlashParams()
            if player.faults is not None and len(player.faults):
                from repro.flash.faulted import FaultedReplay

                player._replay = FaultedReplay(
                    player.faults, player.allocation.n_devices,
                    self.params)
        else:
            self.env = Environment()
            self.array = FlashArray(self.env,
                                    player.allocation.n_devices,
                                    player.params,
                                    ftl_factory=player.ftl_factory,
                                    module_factory=player.module_factory,
                                    faults=player.faults)
            self.params = self.array.params
        self.admission = player._make_admission()
        self.tenant = None
        if player.tenant_budgets is not None:
            from repro.core.tenancy import TenantAdmission

            self.tenant = TenantAdmission(player.tenant_budgets,
                                          player.allocation.replication,
                                          player.accesses)
        self.service = self.params.read_ms
        self.busy_until = [0.0] * player.allocation.n_devices
        self.played: List[PlayedRequest] = []
        #: request columns, growing with every feed()
        self.arrivals: List[float] = []
        self.buckets: List[int] = []
        self.is_read: List[bool] = []
        self.apps: Optional[List[str]] = \
            None if player.tenant_budgets is None else []
        #: pending heap: (effective_time, origin, seq, index);
        #: origin 0 = fed arrival (seq = feed order), origin 1 =
        #: budget-overflow re-queue (seq = re-queue order)
        self.heap: List[Tuple[float, int, int, int]] = []
        self._requeues = 0
        self._current_interval = -1
        self._drained = False
        #: vectorized admission kernel (fast engine, counting
        #: admission, ε = 0, no tenant budgets); ``None`` keeps the
        #: scalar reference loop.  ``admission_kernel`` /
        #: ``admission_fallback_reason`` report the resolution the
        #: same way ``engine_selected`` / ``fallback_reason`` do.
        self._vec = None
        self._cand_cache: Dict[int, Tuple[int, ...]] = {}
        #: per fault-mask segment: bucket -> (first live replica or
        #: -1, live candidate tuple); see _bulk_span
        self._bulk_cache: Dict[int, Dict[int, Tuple[int, tuple]]] = {}
        self.admission_kernel = "scalar"
        self.admission_fallback_reason = "des_engine"
        if self.fast:
            ok, reason = admitpath.supports_vector_admission(
                player.admission, player.epsilon,
                player.tenant_budgets)
            if ok:
                self._vec = admitpath.VectorAdmissionWindow(
                    player.interval_ms, self.admission.limit,
                    player.overflow)
                self.admission_kernel = "vector"
                self.admission_fallback_reason = ""
            else:
                self.admission_fallback_reason = reason
        _tally_admission(self.admission_kernel,
                         self.admission_fallback_reason)

    def __len__(self) -> int:
        """Requests fed so far."""
        return len(self.arrivals)

    @property
    def n_pending(self) -> int:
        """Requests fed (or re-queued) but not yet processed."""
        if self._vec is not None:
            return self._vec.n_pending
        return len(self.heap)

    # -- feeding -----------------------------------------------------------
    def feed(self, arrivals: Sequence[float], buckets: Sequence[int],
             reads: Optional[Sequence[bool]] = None,
             apps: Optional[Sequence[str]] = None) -> None:
        """Append a chunk of traffic to the stream.

        Chunks must be fed in arrival order *between* calls (the heap
        orders within a chunk); an arrival earlier than a timestamp
        already processed by :meth:`advance` raises.
        """
        if self._drained:
            raise RuntimeError("session already drained")
        if len(arrivals) != len(buckets):
            raise ValueError("arrivals and buckets must align")
        if reads is not None and len(reads) != len(buckets):
            raise ValueError("reads must align with buckets")
        if self.tenant is not None:
            if apps is None or len(apps) != len(buckets):
                raise ValueError(
                    "tenant budgets require an aligned apps sequence")
        if self._vec is not None and reads is not None \
                and not all(reads):
            # Writes cost ``replication`` budget units and fan out to
            # every replica -- inherently scalar; rebuild the heap and
            # continue on the reference loop.
            self._demote("writes")
        if self._vec is not None:
            base = len(self.arrivals)
            n = len(arrivals)
            times = np.ascontiguousarray(arrivals, dtype=np.float64)
            self.arrivals.extend(times.tolist())
            self.buckets.extend(int(b) for b in buckets)
            self.is_read.extend([True] * n)
            self._vec.feed(times, np.arange(base, base + n,
                                            dtype=np.int64))
            return
        base = len(self.arrivals)
        for i, t in enumerate(arrivals):
            seq = base + i
            self.arrivals.append(float(t))
            self.buckets.append(int(buckets[i]))
            self.is_read.append(True if reads is None
                                else bool(reads[i]))
            if self.apps is not None:
                self.apps.append(apps[i])
            heapq.heappush(self.heap, (float(t), 0, seq, seq))

    # -- processing --------------------------------------------------------
    def interval_of(self, t: float) -> int:
        return int(t / self.player.interval_ms + 1e-9)

    def process_now(self, t: float) -> None:
        """One wake-up: admit and place everything due at ``t``.

        Shared verbatim by both engines, so the only difference
        between them is who serves the requests -- the DES modules
        or the (provably identical) busy-until arithmetic.
        """
        player = self.player
        # Roll the admission window forward.
        idx = self.interval_of(t)
        while self._current_interval < idx:
            self.admission.start_interval()
            if self.tenant is not None:
                self.tenant.start_interval()
            self._current_interval += 1
        # Gather the batch of simultaneous arrivals.
        batch: List[int] = []
        while self.heap and self.heap[0][0] <= t + 1e-12:
            _, _, _, orig = heapq.heappop(self.heap)
            batch.append(orig)
        admitted: List[int] = []
        admitted_writes: List[int] = []
        for orig in batch:
            cost = 1 if self.is_read[orig] else \
                player.allocation.replication
            if self.tenant is not None:
                granted = bool(self.tenant.offer(self.apps[orig], cost))
            elif player.admission == "exact":
                granted = bool(self.admission.offer_bucket(
                    int(self.buckets[orig]), self.is_read[orig]))
            else:
                granted = bool(self.admission.offer(cost))
            if granted:
                if obs.ACTIVE:
                    obs.SESSION.on_admission("admitted")
                if self.is_read[orig]:
                    admitted.append(orig)
                else:
                    admitted_writes.append(orig)
            elif player.overflow == "reject":
                if obs.ACTIVE:
                    obs.SESSION.on_admission("rejected")
                io = IORequest(
                    arrival=float(self.arrivals[orig]),
                    bucket=int(self.buckets[orig]),
                    is_read=self.is_read[orig])
                self.played.append(PlayedRequest(
                    io=io, interval=idx, index=orig,
                    delayed=False, rejected=True))
            else:
                # Budget overflow: delay to the next interval.
                if obs.ACTIVE:
                    obs.SESSION.on_admission("delayed")
                next_start = (idx + 1) * player.interval_ms
                heapq.heappush(self.heap, (next_start, 1,
                                           self._requeues, orig))
                self._requeues += 1
        if admitted:
            player._dispatch(admitted, t, idx, self.arrivals,
                             self.buckets, self.busy_until,
                             self.service, self.array, self.played,
                             self.admission)
        for orig in admitted_writes:
            player._issue_write(orig, t, idx, self.arrivals,
                                self.buckets, self.busy_until,
                                self.params, self.array, self.played,
                                self.admission)

    def advance(self, until_ms: float) -> None:
        """Process every pending request strictly before ``until_ms``.

        The cut is exclusive (with the driver's timestamp tolerance):
        entries at or after ``until_ms`` stay pending, so feeding the
        next chunk and advancing again batches boundary-coincident
        arrivals exactly as the one-shot play loop would.  Fast engine
        only -- the DES runs its event loop once, in :meth:`drain`.
        """
        if not self.fast:
            raise RuntimeError(
                "incremental advance requires the fast engine; the "
                "DES drains in one step")
        if self._drained:
            raise RuntimeError("session already drained")
        if self._vec is not None:
            self._advance_vector(until_ms)
            if self._vec is not None:
                return
        while self.heap and self.heap[0][0] < until_ms - 1e-12:
            self.process_now(self.heap[0][0])

    # -- vectorized admission path -----------------------------------------
    def _advance_vector(self, until_ms: Optional[float]) -> None:
        """Classify-and-dispatch everything due before ``until_ms``.

        The segmented kernel (:mod:`repro.flash.admitpath`) computes
        the whole chunk's admission decisions in one pass; dispatch
        then walks the plan batch by batch with the scalar loop's
        exact placement arithmetic.  When the kernel cannot guarantee
        byte-identity (sub-tolerance timestamp gaps, out-of-order
        feeds) the session demotes: the pending set is rebuilt into
        the reference heap and processing continues scalar.
        """
        try:
            plan = self._vec.take(until_ms)
        except admitpath.DemotionRequired as exc:
            self._demote(exc.reason)
            return
        if plan is not None:
            self._run_plan(plan)

    def _demote(self, reason: str) -> None:
        """Fall back to the scalar loop mid-stream, exactly.

        Pending arrivals become ``(t, 0, seq, seq)`` heap entries (the
        feed sequence *is* the column index) and the delayed-spill
        carry becomes ``(boundary, 1, requeue, index)`` entries in
        spill order, reproducing the heap the scalar loop would have
        built; the admission window resumes mid-interval via
        :meth:`~repro.core.admission.DeterministicAdmission.resume`.
        """
        state = self._vec.export_state()
        self._vec = None
        self.admission_kernel = "scalar"
        self.admission_fallback_reason = reason
        _tally_admission("demoted", reason)
        heap = self.heap
        for t, seq in zip(state["times"].tolist(),
                          state["indices"].tolist()):
            heap.append((t, 0, seq, seq))
        carry = state["carry"].tolist()
        for j, idx in enumerate(carry):
            heap.append((state["carry_time"], 1, j, idx))
        self._requeues = len(carry)
        heapq.heapify(heap)
        self._current_interval = state["interval"]
        if state["interval"] >= 0:
            self.admission.resume(state["count"])

    def _run_plan(self, plan) -> None:
        """Dispatch one :class:`~repro.flash.admitpath.AdmissionPlan`.

        Placement is the scalar loop inlined.  Maximal runs of
        *simple* entries -- singleton batches the kernel admitted --
        go through :meth:`_bulk_span`, a jammed loop that skips the
        per-request candidate filtering, ``masked_at`` bisection and
        conflict arithmetic whenever the first live replica is idle
        (provably the scalar outcome; see the method).  Everything
        else -- rejected entries, simultaneous batches -- walks
        :meth:`_scalar_span`, the reference loop verbatim.
        ``offer_conflict`` cannot arise here (vector mode requires
        ε = 0, where conflicts always hold the request).
        """
        if obs.ACTIVE:
            session = obs.SESSION
            if plan.n_admitted:
                session.on_admission("admitted", plan.n_admitted)
            if plan.n_delayed:
                session.on_admission("delayed", plan.n_delayed)
            if plan.n_rejected:
                session.on_admission("rejected", plan.n_rejected)
        order = plan.order.tolist()
        times = plan.times.tolist()
        intervals = plan.intervals.tolist()
        admitted = plan.admitted.tolist()
        starts = plan.starts.tolist()
        n = len(order)
        if n == 0:
            return
        # Maximal runs of admitted singleton batches (starts[i] and
        # the next entry, if any, starts a new batch too).
        simple = plan.starts & plan.admitted
        if n > 1:
            simple[:-1] &= plan.starts[1:]
        flat = np.flatnonzero(np.diff(simple.view(np.int8)))
        edges = (flat + 1).tolist()
        if bool(simple[0]):
            edges.insert(0, 0)
        if bool(simple[-1]):
            edges.append(n)
        cols = (order, times, intervals, admitted, starts)
        pos = 0
        for a, b in zip(edges[::2], edges[1::2]):
            if b - a < 8:
                continue  # not worth the span set-up; scalar absorbs it
            if pos < a:
                self._scalar_span(pos, a, *cols)
            self._bulk_span(plan, a, b, order, times, intervals)
            pos = b
        if pos < n:
            self._scalar_span(pos, n, *cols)

    def _scalar_span(self, i: int, hi: int, order, times, intervals,
                     admitted, starts) -> None:
        """Reference dispatch of plan entries ``[i, hi)`` (both batch
        boundaries): per simultaneous batch, rejected entries are
        appended first, multi-request batches go through the shared
        :meth:`OnlineTracePlayer._dispatch` (combined retrieval), and
        singleton batches run the ``_pick``/conflict/issue arithmetic
        directly -- the same floats through the same operations, minus
        the heap and the per-request admission bookkeeping the kernel
        already did."""
        player = self.player
        arrivals = self.arrivals
        bucket_col = self.buckets
        busy = self.busy_until
        service = self.service
        played = self.played
        faults = player.faults
        replay = player._replay
        cand_cache = self._cand_cache
        devices_for = player.allocation.devices_for
        guarantee = player.accesses * service
        n = hi
        while i < n:
            j = i + 1
            while j < n and not starts[j]:
                j += 1
            t = times[i]
            idx = intervals[i]
            b = i
            while b < j and not admitted[b]:
                orig = order[b]
                io = IORequest(arrival=arrivals[orig],
                               bucket=bucket_col[orig])
                played.append(PlayedRequest(
                    io=io, interval=idx, index=orig,
                    delayed=False, rejected=True))
                b += 1
            if j - b > 1:
                player._dispatch(order[b:j], t, idx, arrivals,
                                 bucket_col, busy, service, None,
                                 played, self.admission)
                i = j
                continue
            if j == b:
                i = j
                continue
            orig = order[b]
            i = j
            bucket = bucket_col[orig]
            cs = cand_cache.get(bucket)
            if cs is None:
                cs = devices_for(bucket)
                cand_cache[bucket] = cs
            if faults is not None:
                masked = faults.masked_at(t)
                if masked:
                    live = tuple(d for d in cs if d not in masked)
                    if not live:
                        io = _unavailable_io(arrivals[orig], bucket, t)
                        played.append(PlayedRequest(
                            io=io, interval=idx, index=orig,
                            delayed=False))
                        continue
                    cs = live
            dev = -1
            for d in cs:
                if busy[d] <= t + 1e-12:
                    dev = d
                    break
            if dev < 0:
                dev = cs[0]
                low = busy[dev]
                for d in cs[1:]:
                    if busy[d] < low:
                        low = busy[d]
                        dev = d
            io = IORequest(arrival=arrivals[orig], bucket=bucket)
            if busy[dev] - t + service > guarantee + 1e-12:
                issue_at = busy[dev]
                delayed = True
            else:
                issue_at = t
                delayed = io.arrival + 1e-9 < t
            started = busy[dev] if busy[dev] > issue_at else issue_at
            busy[dev] = started + service
            if replay is not None:
                replay.submit_read(io, dev, issue_at, t,
                                   candidates=cs)
            else:
                io.device = dev
                io.issued_at = issue_at
                io.enqueued_at = issue_at
                io.started_at = started
                io.completed_at = busy[dev]
            played.append(PlayedRequest(io=io, interval=idx,
                                        index=orig, delayed=delayed))

    def _bulk_span(self, plan, a: int, b: int, order, times,
                   intervals) -> None:
        """Jammed dispatch of plan entries ``[a, b)``, all admitted
        singleton batches.

        The span is cut at fault-mask change points (one
        ``searchsorted`` over the whole time column replaces a
        ``masked_at`` bisection per request); within a segment the
        masked set is constant, so each bucket's live candidates and
        first choice resolve through a per-mask memo.  When the first
        live replica ``dev`` is idle (``busy[dev] <= t``) the scalar
        loop provably picks it (``_pick`` returns the first candidate
        within tolerance), starts at ``t`` (``max(busy, t) == t``) and
        sees no conflict (``busy - t + service <= service <=
        accesses * service``), so the emit collapses to one addition
        -- the same addition, on the same floats.  Any other case
        (queued device, all replicas masked, ``accesses == 0``) runs
        the reference arithmetic inline, so the span never needs a
        fallback walk.
        """
        from repro.flash.faulted import _Submission

        player = self.player
        arrivals = self.arrivals
        bucket_col = self.buckets
        busy = self.busy_until
        service = self.service
        played_append = self.played.append
        faults = player.faults
        replay = player._replay
        cand_cache = self._cand_cache
        bulk_cache = self._bulk_cache
        devices_for = player.allocation.devices_for
        guarantee = player.accesses * service
        # busy <= t alone rules out a conflict only while one service
        # fits the guarantee; otherwise every entry takes the slow arm.
        fastable = service <= guarantee + 1e-12
        if faults is not None:
            pts, masks = faults.mask_segments()
            mk = np.searchsorted(np.asarray(pts, dtype=np.float64),
                                 plan.times[a:b], side="right")
            cuts = (np.flatnonzero(mk[:-1] != mk[1:]) + 1).tolist()
            bounds = [0, *cuts, b - a]
        else:
            mk, masks = None, (frozenset(),)
            bounds = [0, b - a]
        if replay is not None:
            heap_append = replay._heap.append
            seq = replay._seq
        for s0, s1 in zip(bounds[:-1], bounds[1:]):
            ki = int(mk[s0]) if mk is not None else 0
            mask = masks[ki]
            per = bulk_cache.get(ki)
            if per is None:
                per = bulk_cache[ki] = {}
            per_get = per.get
            lo, hi = a + s0, a + s1
            for orig, t, itv in zip(order[lo:hi], times[lo:hi],
                                    intervals[lo:hi]):
                bkt = bucket_col[orig]
                ent = per_get(bkt)
                if ent is None:
                    cs = cand_cache.get(bkt)
                    if cs is None:
                        cs = devices_for(bkt)
                        cand_cache[bkt] = cs
                    if mask:
                        cs = tuple(d for d in cs if d not in mask)
                    ent = per[bkt] = (cs[0] if cs else -1, cs)
                dev, live = ent
                arr = arrivals[orig]
                if fastable and dev >= 0 and busy[dev] <= t:
                    # Idle first replica: issue = start = t.
                    comp = t + service
                    busy[dev] = comp
                    io = IORequest(arr, bkt)
                    if replay is not None:
                        sub = _Submission(io, dev, t, t, seq,
                                          candidates=live,
                                          first_issue=t)
                        heap_append((t, t, seq, sub))
                        seq += 1
                    else:
                        io.device = dev
                        io.issued_at = t
                        io.enqueued_at = t
                        io.started_at = t
                        io.completed_at = comp
                    played_append(PlayedRequest(io, itv,
                                                arr + 1e-9 < t, orig))
                    continue
                if dev < 0:  # every replica masked: unavailable
                    io = _unavailable_io(arr, bkt, t)
                    played_append(PlayedRequest(io, itv,
                                                False, orig))
                    continue
                # Queued device: the reference arithmetic, inline.
                dev = -1
                for d in live:
                    if busy[d] <= t + 1e-12:
                        dev = d
                        break
                if dev < 0:
                    dev = live[0]
                    low = busy[dev]
                    for d in live[1:]:
                        if busy[d] < low:
                            low = busy[d]
                            dev = d
                io = IORequest(arr, bkt)
                if busy[dev] - t + service > guarantee + 1e-12:
                    issue_at = busy[dev]
                    delayed = True
                else:
                    issue_at = t
                    delayed = arr + 1e-9 < t
                started = busy[dev] if busy[dev] > issue_at else issue_at
                busy[dev] = started + service
                if replay is not None:
                    sub = _Submission(io, dev, issue_at, t, seq,
                                      candidates=live,
                                      first_issue=issue_at)
                    heap_append((issue_at, t, seq, sub))
                    seq += 1
                else:
                    io.device = dev
                    io.issued_at = issue_at
                    io.enqueued_at = issue_at
                    io.started_at = started
                    io.completed_at = busy[dev]
                played_append(PlayedRequest(io, itv,
                                            delayed, orig))
        if replay is not None:
            replay._seq = seq

    def drain(self) -> Tuple[IntervalSeries, List[PlayedRequest]]:
        """Process everything pending and close the session."""
        if self._drained:
            raise RuntimeError("session already drained")
        self._drained = True
        player = self.player
        if self.fast:
            if self._vec is not None:
                self._advance_vector(None)
            while self.heap:
                self.process_now(self.heap[0][0])
            if player._replay is not None:
                player._replay.run()
                player._replay = None
        else:
            env = self.env

            def run():
                while self.heap:
                    t_eff = self.heap[0][0]
                    if t_eff > env.now:
                        yield env.timeout_until(t_eff)
                    self.process_now(env.now)

            env.process(run())
            env.run()

        return _finish_play(self.played, player.allocation.n_devices,
                            player.interval_ms)
