"""I/O-driver response-time accounting.

The paper compares allocation schemes "with respect to their I/O driver
response times, which is defined as the time between sending the I/O
request and receiving the corresponding response" (§V-C1).  This module
accumulates those samples and reports the avg / std / max rows of
Table III as well as per-interval series for Figures 8-10 and 12.

Storage is *bounded*: instead of keeping every sample in a Python
list, :class:`ResponseStats` folds samples into a mergeable log-bucket
histogram (:class:`repro.obs.metrics.Histogram`) plus exact streaming
moments (error-free Shewchuk accumulation of ``x - K`` and
``(x - K)**2``, shifted by the first sample ``K`` so constant-latency
runs report a standard deviation of exactly zero).  The fold state is
order-independent, so the DES and the vectorized fast path -- which
record the same samples, possibly in different groupings -- expose
bit-identical statistics; :meth:`ResponseStats.state` is the
comparable signature the identity tests and determinism probes hash.

Recording stays cheap on the hot path: :meth:`ResponseStats.record`
only appends to a pending buffer; folding happens on first read or
when the buffer reaches :data:`FOLD_THRESHOLD`.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.obs.metrics import ExactSum, Histogram

__all__ = ["ResponseStats", "IntervalSeries", "FOLD_THRESHOLD"]

#: fold the pending sample buffer into the histogram/moments once it
#: reaches this many entries (bounds memory without changing results:
#: the fold state is order- and grouping-independent)
FOLD_THRESHOLD = 32768


class ResponseStats:
    """Streaming response-time statistics (bounded memory).

    Samples are recorded via :meth:`record` (scalar) or
    :meth:`record_array` (vectorized); summaries read from the folded
    histogram-plus-moments state, never from a stored sample list.
    Percentiles other than 0 and 100 are therefore log-bucket
    estimates (within one bucket width, ~3.9 % relative); avg, std,
    max, min and the delay accounting remain exact.
    """

    __slots__ = ("n_total", "n_delayed", "_pending", "_hist",
                 "_shift", "_m1", "_m2", "_delay_sum")

    def __init__(self):
        self.n_total = 0
        self.n_delayed = 0
        self._pending: List[float] = []
        self._hist: Optional[Histogram] = None
        self._shift: Optional[float] = None
        self._m1 = ExactSum()
        self._m2 = ExactSum()
        self._delay_sum = ExactSum()

    # -- recording -------------------------------------------------------
    def record(self, response_ms: float, delay_ms: float = 0.0) -> None:
        """Record one completed request.

        Parameters
        ----------
        response_ms:
            Time from (re)issue to completion.
        delay_ms:
            Admission delay before issue; > 0 marks the request as
            *delayed* for the Figure 8(c,d) accounting.
        """
        self._pending.append(response_ms)
        self.n_total += 1
        if delay_ms > 0:
            self._delay_sum.add(delay_ms)
            self.n_delayed += 1
        if len(self._pending) >= FOLD_THRESHOLD:
            self._fold()

    def record_array(self, responses: np.ndarray,
                     delays: Optional[np.ndarray] = None) -> None:
        """Vectorized record: ``responses`` (and aligned ``delays``,
        where positive entries mark delayed requests)."""
        arr = np.ascontiguousarray(responses, dtype=np.float64)
        if arr.size == 0:
            return
        self._pending.extend(arr.tolist())
        self.n_total += int(arr.size)
        if delays is not None:
            d = np.ascontiguousarray(delays, dtype=np.float64)
            d = d[d > 0]
            self.n_delayed += int(d.size)
            for value in d.tolist():
                self._delay_sum.add(value)
        if len(self._pending) >= FOLD_THRESHOLD:
            self._fold()

    def _fold(self) -> None:
        if not self._pending:
            return
        arr = np.asarray(self._pending, dtype=np.float64)
        self._pending = []
        if self._hist is None:
            self._hist = Histogram()
        self._hist.record_array(arr)
        if self._shift is None:
            self._shift = float(arr[0])
        centred = arr - self._shift
        self._m1.add_many(centred.tolist())
        self._m2.add_many((centred * centred).tolist())

    # -- summary ---------------------------------------------------------
    @property
    def avg(self) -> float:
        self._fold()
        if self.n_total == 0 or self._shift is None:
            return 0.0
        return self._shift + self._m1.value / self.n_total

    @property
    def std(self) -> float:
        self._fold()
        if self.n_total == 0:
            return 0.0
        mean_centred = self._m1.value / self.n_total
        var = self._m2.value / self.n_total - mean_centred * mean_centred
        return math.sqrt(var) if var > 0 else 0.0

    @property
    def max(self) -> float:
        self._fold()
        return self._hist.max if self._hist is not None else 0.0

    @property
    def min(self) -> float:
        self._fold()
        return self._hist.min if self._hist is not None else 0.0

    def histogram(self) -> Optional[Histogram]:
        """The folded response-time histogram (None when empty)."""
        self._fold()
        return self._hist

    def percentile(self, q: float) -> float:
        """Response-time percentile ``q`` in [0, 100].

        Exact at 0 and 100 (tracked min/max); elsewhere a log-bucket
        estimate within one bucket width of the sample percentile.
        """
        if not 0 <= q <= 100:
            raise ValueError(f"percentile must be in [0, 100], got {q}")
        self._fold()
        if self._hist is None:
            return 0.0
        return self._hist.quantile(q)

    @property
    def p50(self) -> float:
        return self.percentile(50)

    @property
    def p99(self) -> float:
        return self.percentile(99)

    @property
    def avg_delay(self) -> float:
        """Mean delay over *delayed* requests only (paper Fig 8c)."""
        if self.n_delayed == 0:
            return 0.0
        return self._delay_sum.value / self.n_delayed

    @property
    def pct_delayed(self) -> float:
        """Percentage of requests that were delayed (paper Fig 8d)."""
        return 100.0 * self.n_delayed / self.n_total if self.n_total else 0.0

    def summary(self) -> Dict[str, float]:
        """The Table III row for this run."""
        return {"avg": self.avg, "std": self.std, "max": self.max,
                "avg_delay": self.avg_delay,
                "pct_delayed": self.pct_delayed, "n": float(self.n_total)}

    # -- identity / merging ---------------------------------------------
    def state(self) -> Tuple:
        """Full comparable state.

        Two stats objects that folded the same multiset of samples --
        in any order, through either playback engine -- have equal
        state; the fastpath identity tests and the determinism probes
        compare/hash exactly this.
        """
        self._fold()
        return (self.n_total, self.n_delayed, self._shift,
                self._m1.value, self._m2.value, self._delay_sum.value,
                self._hist.state() if self._hist is not None else None)

    def merge(self, other: "ResponseStats") -> None:
        """Fold another stats object in (used by interval roll-ups and
        the parallel runner's cross-process aggregation)."""
        other._fold()
        self._fold()
        self.n_total += other.n_total
        self.n_delayed += other.n_delayed
        self._delay_sum.merge(other._delay_sum)
        if other._hist is None:
            return
        if self._hist is None:
            self._hist = Histogram()
        self._hist.merge(other._hist)
        n = other.n_total
        if self._shift is None:
            self._shift = other._shift
            self._m1.merge(other._m1)
            self._m2.merge(other._m2)
            return
        # re-shift the other side's moments from its K to ours:
        #   sum(x - Ks)   = sum(x - Ko) + n * (Ko - Ks)
        #   sum((x-Ks)^2) = sum((x-Ko)^2) + 2d*sum(x-Ko) + n*d^2
        delta = (other._shift - self._shift) \
            if other._shift is not None else 0.0
        self._m1.merge(other._m1)
        self._m2.merge(other._m2)
        if delta:
            self._m1.add(n * delta)
            self._m2.add(2.0 * delta * other._m1.value)
            self._m2.add(n * delta * delta)


class IntervalSeries:
    """Per-interval response statistics (Figures 8-12 series).

    Each completed request is attributed to an interval index; the
    series then exposes aligned per-interval arrays.
    """

    def __init__(self):
        self._stats: Dict[int, ResponseStats] = {}

    def record(self, interval: int, response_ms: float,
               delay_ms: float = 0.0) -> None:
        st = self._stats.get(interval)
        if st is None:
            st = self._stats[interval] = ResponseStats()
        st.record(response_ms, delay_ms)

    def intervals(self) -> List[int]:
        return sorted(self._stats)

    def stats(self, interval: int) -> ResponseStats:
        st = self._stats.get(interval)
        if st is None:
            st = self._stats[interval] = ResponseStats()
        return st

    def series(self, attr: str) -> Tuple[List[int], List[float]]:
        """``(interval_indices, values)`` for a ResponseStats attribute."""
        idx = self.intervals()
        return idx, [getattr(self._stats[i], attr) for i in idx]

    def overall(self) -> ResponseStats:
        """Merge all intervals into one summary."""
        merged = ResponseStats()
        for interval in self.intervals():
            merged.merge(self._stats[interval])
        return merged

    def merge(self, other: "IntervalSeries") -> None:
        """Fold another series in, interval by interval.

        Because the per-interval :class:`ResponseStats` fold state is
        order- and grouping-independent, merging per-shard series in
        any order yields the same cluster-wide state as recording the
        concatenated sample stream directly -- the property the
        cluster report roll-up relies on.
        """
        for interval, st in other._stats.items():
            self.stats(interval).merge(st)

    def state(self) -> Tuple:
        """Comparable signature over all intervals (see
        :meth:`ResponseStats.state`)."""
        return tuple((i, self._stats[i].state())
                     for i in self.intervals())
