"""I/O-driver response-time accounting.

The paper compares allocation schemes "with respect to their I/O driver
response times, which is defined as the time between sending the I/O
request and receiving the corresponding response" (§V-C1).  This module
accumulates those samples and reports the avg / std / max rows of
Table III as well as per-interval series for Figures 8-10 and 12.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

__all__ = ["ResponseStats", "IntervalSeries"]


@dataclass
class ResponseStats:
    """Streaming response-time statistics.

    Samples are recorded via :meth:`record`; summary statistics use
    numpy over the collected array (simplicity first; the sample counts
    in this project are modest).
    """

    samples: List[float] = field(default_factory=list)
    delays: List[float] = field(default_factory=list)
    n_delayed: int = 0
    n_total: int = 0

    def record(self, response_ms: float, delay_ms: float = 0.0) -> None:
        """Record one completed request.

        Parameters
        ----------
        response_ms:
            Time from (re)issue to completion.
        delay_ms:
            Admission delay before issue; > 0 marks the request as
            *delayed* for the Figure 8(c,d) accounting.
        """
        self.samples.append(response_ms)
        self.n_total += 1
        if delay_ms > 0:
            self.delays.append(delay_ms)
            self.n_delayed += 1

    # -- summary ---------------------------------------------------------
    def _arr(self) -> np.ndarray:
        return np.asarray(self.samples, dtype=np.float64)

    @property
    def avg(self) -> float:
        return float(self._arr().mean()) if self.samples else 0.0

    @property
    def std(self) -> float:
        return float(self._arr().std()) if self.samples else 0.0

    @property
    def max(self) -> float:
        return float(self._arr().max()) if self.samples else 0.0

    def percentile(self, q: float) -> float:
        """Response-time percentile ``q`` in [0, 100]."""
        if not 0 <= q <= 100:
            raise ValueError(f"percentile must be in [0, 100], got {q}")
        if not self.samples:
            return 0.0
        return float(np.percentile(self._arr(), q))

    @property
    def p50(self) -> float:
        return self.percentile(50)

    @property
    def p99(self) -> float:
        return self.percentile(99)

    @property
    def avg_delay(self) -> float:
        """Mean delay over *delayed* requests only (paper Fig 8c)."""
        return (float(np.mean(self.delays)) if self.delays else 0.0)

    @property
    def pct_delayed(self) -> float:
        """Percentage of requests that were delayed (paper Fig 8d)."""
        return 100.0 * self.n_delayed / self.n_total if self.n_total else 0.0

    def summary(self) -> Dict[str, float]:
        """The Table III row for this run."""
        return {"avg": self.avg, "std": self.std, "max": self.max,
                "avg_delay": self.avg_delay,
                "pct_delayed": self.pct_delayed, "n": float(self.n_total)}


class IntervalSeries:
    """Per-interval response statistics (Figures 8-12 series).

    Each completed request is attributed to an interval index; the
    series then exposes aligned per-interval arrays.
    """

    def __init__(self):
        self._stats: Dict[int, ResponseStats] = {}

    def record(self, interval: int, response_ms: float,
               delay_ms: float = 0.0) -> None:
        self._stats.setdefault(interval, ResponseStats()).record(
            response_ms, delay_ms)

    def intervals(self) -> List[int]:
        return sorted(self._stats)

    def stats(self, interval: int) -> ResponseStats:
        return self._stats.setdefault(interval, ResponseStats())

    def series(self, attr: str) -> Tuple[List[int], List[float]]:
        """``(interval_indices, values)`` for a ResponseStats attribute."""
        idx = self.intervals()
        return idx, [getattr(self._stats[i], attr) for i in idx]

    def overall(self) -> ResponseStats:
        """Merge all intervals into one summary."""
        merged = ResponseStats()
        for st in self._stats.values():
            merged.samples.extend(st.samples)
            merged.delays.extend(st.delays)
            merged.n_delayed += st.n_delayed
            merged.n_total += st.n_total
        return merged
