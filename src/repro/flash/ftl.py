"""A minimal page-mapped flash translation layer.

The paper's experiments are read-only, but a credible flash-array
substrate needs the write path: logical pages map to physical pages,
overwrites invalidate and remap, and exhausted erase blocks are
garbage-collected.  The extension benchmarks use this to measure how
background writes would erode the read-latency guarantee.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.flash.params import FlashParams

__all__ = ["PageMappedFTL", "FTLStats"]


@dataclass
class FTLStats:
    """Counters exposed for wear/amplification analysis."""

    host_writes: int = 0
    flash_writes: int = 0
    erases: int = 0
    gc_moves: int = 0

    @property
    def write_amplification(self) -> float:
        return (self.flash_writes / self.host_writes
                if self.host_writes else 0.0)


class PageMappedFTL:
    """Page-level mapping with greedy (min-valid) garbage collection.

    Parameters
    ----------
    params:
        Geometry source (``pages_per_block``, ``n_blocks``).
    gc_threshold:
        Trigger GC when free blocks drop to this count.
    """

    def __init__(self, params: Optional[FlashParams] = None,
                 gc_threshold: int = 2):
        self.params = params or FlashParams()
        if gc_threshold < 1:
            raise ValueError("gc_threshold must be >= 1")
        self.gc_threshold = gc_threshold
        ppb = self.params.pages_per_block
        nb = self.params.n_blocks
        self.capacity_pages = ppb * nb
        # map: logical page -> physical page (block * ppb + offset)
        self.mapping: Dict[int, int] = {}
        self.reverse: Dict[int, int] = {}
        self.valid: List[int] = [0] * nb        # valid pages per block
        self.write_ptr: List[int] = [0] * nb     # next free offset
        self.free_blocks: List[int] = list(range(nb - 1, -1, -1))
        self.active: int = self.free_blocks.pop()
        self.stats = FTLStats()

    # -- host interface ----------------------------------------------------
    def read(self, logical: int) -> Optional[int]:
        """Physical page for ``logical``, or None if never written."""
        return self.mapping.get(logical)

    def write(self, logical: int) -> int:
        """Write ``logical``; returns the physical page used."""
        self.stats.host_writes += 1
        return self._program(logical, host=True)

    # -- internals ----------------------------------------------------------
    def _program(self, logical: int, host: bool) -> int:
        ppb = self.params.pages_per_block
        old = self.mapping.get(logical)
        if old is not None:
            self.valid[old // ppb] -= 1
            del self.reverse[old]
        if self.write_ptr[self.active] >= ppb:
            self._advance_active()
        phys = self._place(logical, self.active)
        self.stats.flash_writes += 1
        if not host:
            self.stats.gc_moves += 1
        return phys

    def _place(self, logical: int, block: int) -> int:
        """Append ``logical`` to ``block``'s next free page slot."""
        ppb = self.params.pages_per_block
        phys = block * ppb + self.write_ptr[block]
        self.write_ptr[block] += 1
        self.valid[block] += 1
        self.mapping[logical] = phys
        self.reverse[phys] = logical
        return phys

    def _advance_active(self) -> None:
        if len(self.free_blocks) > self.gc_threshold:
            self.active = self.free_blocks.pop()
            return
        dest = self._collect()
        ppb = self.params.pages_per_block
        if dest is not None and self.write_ptr[dest] < ppb:
            # continue writing into the compaction destination
            self.active = dest
            return
        if self.free_blocks:
            self.active = self.free_blocks.pop()
            return
        raise RuntimeError(  # pragma: no cover - guarded by _collect
            "FTL out of space: all blocks full of valid data")

    def _victim(self) -> int:
        ppb = self.params.pages_per_block
        best, best_valid = -1, ppb + 1
        for blk in range(self.params.n_blocks):
            if blk == self.active or self.write_ptr[blk] < ppb:
                continue
            if self.valid[blk] < best_valid:
                best, best_valid = blk, self.valid[blk]
        return best

    def _collect(self) -> Optional[int]:
        """Compact one victim into a fresh destination block.

        The destination comes from the free list, so garbage collection
        never touches the (possibly full) active block; the erased
        victim rejoins the free list, keeping the free count constant
        while reclaiming the victim's invalid pages as slack in the
        destination.  Returns the destination block, which the caller
        may adopt as the new active block.
        """
        victim = self._victim()
        if victim < 0 or not self.free_blocks:
            return None
        ppb = self.params.pages_per_block
        if self.valid[victim] >= ppb:
            raise RuntimeError("FTL out of space: coldest block is "
                               "entirely valid data")
        dest = self.free_blocks.pop()
        movers = [self.reverse[p]
                  for p in range(victim * ppb, (victim + 1) * ppb)
                  if p in self.reverse]
        for logical in movers:
            old = self.mapping[logical]
            self.valid[old // ppb] -= 1
            del self.reverse[old]
            self._place(logical, dest)
            self.stats.flash_writes += 1
            self.stats.gc_moves += 1
        self.valid[victim] = 0
        self.write_ptr[victim] = 0
        self.free_blocks.insert(0, victim)
        self.stats.erases += 1
        return dest

    @property
    def utilisation(self) -> float:
        """Fraction of capacity holding valid data."""
        return len(self.mapping) / self.capacity_pages
