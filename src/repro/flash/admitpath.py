"""Vectorized admission kernel: whole-chunk QoS admission in one pass.

The online driver's per-request loop -- heap pop, interval roll,
``DeterministicAdmission.offer``, dispatch -- is the identity contract
shared by the DES and the fast engine, and it dominates faulted-sweep
wall time.  For the paper's *counting* controller (§III-A1: admit at
most ``S = (c-1)M² + cM`` requests per interval, ε = 0) the loop is a
segmented recurrence that vectorizes exactly:

1.  **Interval assignment.**  Pending arrivals, stable-sorted by
    timestamp (stability reproduces the heap's sequence-number
    tie-breaking), map to QoS intervals with the driver's own formula
    ``k = int(t / T + 1e-9)`` -- elementwise, so the floats agree
    bit-for-bit with the scalar ``interval_of``.
2.  **Segmented count vs the cap.**  Within one interval the counting
    controller admits exactly the first ``S - count₀`` requests in
    processing order (``count₀`` carries across :meth:`advance` cuts);
    the rest spill.  The per-position rank within each interval run is
    a segmented iota (the same offset trick
    :mod:`repro.flash.batch` uses for its segmented cummax), so
    *congested* intervals -- any rank reaching ``S`` -- are located in
    one vector comparison.  Spans of uncongested intervals admit
    everything at their own arrival times and are emitted wholesale;
    only congested intervals and delayed-spill chains run the
    per-interval (never per-request) Python loop.
3.  **Spill to the next interval.**  Denied requests under the paper's
    ``delay`` policy re-enter at ``(k+1)·T`` *behind* boundary-
    coincident arrivals (the heap orders origin-0 arrivals before
    origin-1 re-queues at equal timestamps); the kernel keeps them as
    an explicit carry queue merged at the boundary with
    ``searchsorted``.  Under ``reject`` they are emitted as rejected
    playback entries *before* the batch's admitted ones, exactly as
    the scalar loop appends them.
4.  **Post-hoc verification + scalar fallback.**  The scalar loop
    batches wake-ups with a ``1e-12`` tolerance and anchors each
    batch at the earliest member's timestamp.  The kernel groups by
    exact time equality instead, which is identical *unless* two
    distinct processed timestamps sit within ``1e-12`` of each other
    (then the scalar batch would absorb the later one at the earlier
    anchor).  The kernel checks this boundary condition up front --
    one ``diff`` over the processed slice plus the carry instant and
    the first deferred entry -- and raises :class:`DemotionRequired`
    when the trace is too finely spaced, letting the session rebuild
    its heap and fall back to the scalar loop mid-stream.  The same
    escape covers mixed read/write chunks and out-of-order feeds.

Statistical admission (ε > 0), exact admission and tenant budgets keep
the scalar loop (see :func:`supports_vector_admission`); their inner
arithmetic is accelerated separately
(:class:`repro.core.admission.StatisticalAdmission`'s vectorized ``Q``
histogram, :class:`repro.core.admission.ExactAdmission`'s cached
candidate masks).

Everything here is decision *classification* only -- placement,
busy-until arithmetic, faulted replay submission and played-request
bookkeeping stay in :class:`repro.flash.driver.OnlineStreamSession`,
which consumes the emitted :class:`AdmissionPlan` batch by batch.
Byte-identity with the scalar loop is enforced by the ``admission``
determinism probe (``python -m repro.check --probe admission``), the
hypothesis properties in ``tests/properties/test_property_admitpath.py``
and the ``rows_identical`` assertion in ``tools/bench_runner.py``.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass
from typing import Iterator, List, Optional, Tuple

import numpy as np

__all__ = [
    "ENABLED", "disabled",
    "AdmissionPlan", "DemotionRequired", "VectorAdmissionWindow",
    "supports_vector_admission",
]

#: Master switch for the vectorized admission path.  The scalar loop
#: remains the reference implementation; the ``admission`` determinism
#: probe runs eligible workloads both ways and demands byte-identity.
#: Cache keys include this switch (:func:`repro.runner.cache.\
#: runtime_token`) so results computed either way never alias.
ENABLED: bool = True

#: The driver's wake-up batching tolerance (``process_now`` pops every
#: heap entry within this of the batch anchor).
_BATCH_TOL = 1e-12


@contextmanager
def disabled() -> Iterator[None]:
    """Run a block on the scalar admission loop (kernel off)."""
    global ENABLED
    previous = ENABLED
    ENABLED = False
    try:
        yield
    finally:
        ENABLED = previous


def supports_vector_admission(admission: str, epsilon: float,
                              tenant_budgets) -> Tuple[bool, str]:
    """Static eligibility of a player configuration; ``(ok, reason)``.

    The kernel implements exactly the deterministic *counting*
    controller.  Statistical admission interrogates the evolving
    interval-size histogram per overflow decision, exact admission
    runs an augmenting-path search per request, and tenant budgets
    split the cap per application -- all inherently sequential, so
    they keep the scalar loop and the returned reason names why
    (mirroring :func:`repro.flash.driver.select_engine`).
    """
    if not ENABLED:
        return False, "disabled"
    if tenant_budgets is not None:
        return False, "tenant_budgets"
    if admission == "exact":
        return False, "exact_admission"
    if epsilon > 0:
        return False, "statistical"
    return True, ""


class DemotionRequired(Exception):
    """The kernel cannot guarantee byte-identity; use the scalar loop.

    Raised *before* any state is mutated, so the session can rebuild
    its pending heap from :meth:`VectorAdmissionWindow.export_state`
    and continue scalar mid-stream without replaying anything.
    """

    def __init__(self, reason: str):
        super().__init__(reason)
        self.reason = reason


@dataclass
class AdmissionPlan:
    """One ``take()``'s admission decisions, in playback order.

    Aligned arrays, one entry per processed request, ordered exactly
    as the scalar loop would append them to ``session.played``
    (within a batch: rejected entries first, then admitted in
    processing order).  ``starts[i]`` opens a new simultaneous batch
    (the scalar ``process_now`` wake-up); delayed requests are not
    emitted -- they re-enter a later plan at the next boundary.
    """

    #: session column index of each processed request
    order: np.ndarray
    #: processing instant (the scalar batch anchor)
    times: np.ndarray
    #: QoS interval of each decision
    intervals: np.ndarray
    #: False marks a rejected entry (``overflow="reject"`` only)
    admitted: np.ndarray
    #: True where a new simultaneous batch begins
    starts: np.ndarray
    #: requests admitted / rejected / delayed-to-next-interval
    n_admitted: int = 0
    n_rejected: int = 0
    n_delayed: int = 0

    def __len__(self) -> int:
        return int(self.order.size)


_EMPTY_I8 = np.empty(0, dtype=np.int64)
_EMPTY_F8 = np.empty(0, dtype=np.float64)


class VectorAdmissionWindow:
    """Streaming counting-admission classifier for one session.

    Owns the vector-mode equivalents of the session's pending heap and
    :class:`~repro.core.admission.DeterministicAdmission` counter:
    unprocessed arrivals (kept sorted by arrival time), the current
    interval and its admitted count, and the delayed-spill carry
    queue.  :meth:`take` classifies everything processable before a
    cut and returns an :class:`AdmissionPlan`; the state left behind
    makes the next ``take`` resume exactly where the scalar loop
    would.
    """

    def __init__(self, interval_ms: float, limit: int, overflow: str):
        if interval_ms <= 0:
            raise ValueError("interval_ms must be positive")
        if limit < 1:
            raise ValueError("admission limit must be >= 1")
        if overflow not in ("delay", "reject"):
            raise ValueError(f"unknown overflow policy {overflow!r}")
        self.interval_ms = float(interval_ms)
        self.limit = int(limit)
        self.overflow = overflow
        #: sorted unprocessed arrivals + chunks not yet merged in
        self._t = _EMPTY_F8
        self._i = _EMPTY_I8
        self._chunks_t: List[np.ndarray] = []
        self._chunks_i: List[np.ndarray] = []
        #: delayed-spill queue: session indices due at ``_carry_time``
        #: (always the start boundary of interval ``_carry_interval``)
        self._carry = _EMPTY_I8
        self._carry_time = 0.0
        self._carry_interval = -1
        #: last interval whose admissions started, and its count --
        #: the vector image of ``session._current_interval`` plus
        #: ``DeterministicAdmission._count``
        self._interval = -1
        self._count = 0

    # -- feeding -----------------------------------------------------------
    @property
    def n_pending(self) -> int:
        """Arrivals (or spilled re-queues) awaiting processing."""
        n = int(self._t.size) + int(self._carry.size)
        for chunk in self._chunks_t:
            n += int(chunk.size)
        return n

    def feed(self, times: np.ndarray, indices: np.ndarray) -> None:
        """Append one chunk of arrivals (session column indices)."""
        self._chunks_t.append(np.ascontiguousarray(times,
                                                   dtype=np.float64))
        self._chunks_i.append(np.ascontiguousarray(indices,
                                                   dtype=np.int64))

    def _consolidate(self) -> None:
        """Merge fed chunks into the sorted pending arrays.

        A *stable* sort over (previous leftovers, chunks in feed
        order) reproduces the scalar heap's tie order: at equal
        timestamps earlier-fed arrivals (smaller sequence numbers)
        come first, exactly like the ``(t, 0, seq)`` heap entries.
        """
        if not self._chunks_t:
            return
        t = np.concatenate([self._t] + self._chunks_t)
        i = np.concatenate([self._i] + self._chunks_i)
        self._chunks_t = []
        self._chunks_i = []
        order = np.argsort(t, kind="stable")
        self._t = t[order]
        self._i = i[order]

    # -- state export (for demotion) ---------------------------------------
    def export_state(self) -> dict:
        """Everything the scalar loop needs to take over mid-stream."""
        self._consolidate()
        return {
            "times": self._t,
            "indices": self._i,
            "carry": self._carry,
            "carry_time": self._carry_time,
            "interval": self._interval,
            "count": self._count,
        }

    # -- classification ----------------------------------------------------
    def take(self, until: Optional[float] = None,
             ) -> Optional[AdmissionPlan]:
        """Classify everything due strictly before ``until``.

        ``None`` drains the window.  Returns ``None`` when nothing is
        processable; raises :class:`DemotionRequired` (with the window
        untouched) when exactness cannot be guaranteed.
        """
        self._consolidate()
        t_all = self._t
        i_all = self._i
        T = self.interval_ms
        S = self.limit
        cut = np.inf if until is None else float(until) - _BATCH_TOL
        m = int(np.searchsorted(t_all, cut, side="left"))
        has_carry = self._carry.size > 0
        carry_due = has_carry and self._carry_time < cut
        if m == 0 and not carry_due:
            return None

        # Post-hoc boundary verification, up front: if any two
        # *distinct* relevant instants are within the scalar batching
        # tolerance, exact-equality grouping would diverge from the
        # scalar batch anchoring -- fall back.  "Relevant" = every
        # processed timestamp, the carry instant, and the first entry
        # beyond the cut (a batch anchored just below the cut would
        # absorb it).
        guard = t_all[:min(m + 1, int(t_all.size))]
        if has_carry:
            guard = np.sort(np.append(guard, self._carry_time),
                            kind="stable")
        if guard.size > 1:
            gaps = np.diff(guard)
            if bool(np.any((gaps > 0.0) & (gaps <= _BATCH_TOL))):
                raise DemotionRequired("time_resolution")

        t = t_all[:m]
        idx = i_all[:m]
        # The driver's own interval formula, elementwise: for t >= 0
        # int() truncation == floor == the int64 cast.
        k_arr = (t / T + 1e-9).astype(np.int64)
        if m and int(k_arr[0]) < self._interval:
            # A feed landed behind an interval the scalar loop would
            # have kept counting in without rolling the window -- the
            # heap handles that naturally, the kernel does not.
            raise DemotionRequired("out_of_order")

        # Segmented rank within each interval run (offset trick): the
        # counting controller admits ranks < S, so positions with
        # rank >= S mark congested intervals.  The first (possibly
        # resumed) interval starts from the carried-over count.
        if m:
            new_run = np.empty(m, dtype=bool)
            new_run[0] = True
            np.not_equal(k_arr[1:], k_arr[:-1], out=new_run[1:])
            run_ids = np.cumsum(new_run) - 1
            run_starts = np.flatnonzero(new_run)
            start_of = run_starts[run_ids]
            rank = np.arange(m, dtype=np.int64) - start_of
            if int(k_arr[0]) == self._interval and self._count:
                first_end = int(run_starts[1]) if run_starts.size > 1 \
                    else m
                rank[:first_end] += self._count
            congested = np.flatnonzero(rank >= S)
        else:
            start_of = _EMPTY_I8
            rank = _EMPTY_I8
            congested = _EMPTY_I8

        out_i: List[np.ndarray] = []
        out_t: List[np.ndarray] = []
        out_k: List[np.ndarray] = []
        out_a: List[np.ndarray] = []
        n_admitted = 0
        n_rejected = 0
        n_delayed = 0
        delay = self.overflow == "delay"
        carry = self._carry
        carry_t = self._carry_time
        carry_k = self._carry_interval
        pos = 0

        while True:
            if not carry.size and pos < m:
                # Bulk emission: every interval run up to the next
                # congested one admits everything at its own arrival
                # time -- no per-interval work at all.
                j = int(np.searchsorted(congested, pos, side="left"))
                bulk_end = int(start_of[congested[j]]) \
                    if j < congested.size else m
                if bulk_end > pos:
                    out_i.append(idx[pos:bulk_end])
                    out_t.append(t[pos:bulk_end])
                    out_k.append(k_arr[pos:bulk_end])
                    out_a.append(np.ones(bulk_end - pos, dtype=bool))
                    n_admitted += bulk_end - pos
                    self._interval = int(k_arr[bulk_end - 1])
                    self._count = int(rank[bulk_end - 1]) + 1
                    pos = bulk_end
                    continue

            # One congested-or-carry interval step.
            if carry.size and (pos >= m or carry_k <= int(k_arr[pos])):
                k = carry_k
                if not carry_t < cut:
                    # The carry is not due yet.  Arrivals that ARE due
                    # but sort at or before the carry instant sit in
                    # the sub-tolerance band below the boundary;
                    # deferring them to the next take() processes them
                    # with identical admission state, so the final
                    # played log is unchanged.
                    break
                hi = pos + int(np.searchsorted(k_arr[pos:m], k,
                                               side="right"))
                seg_t = t[pos:hi]
                n_pre = int(np.searchsorted(seg_t, carry_t,
                                            side="right"))
                ord_i = np.concatenate((idx[pos:pos + n_pre], carry,
                                        idx[pos + n_pre:hi]))
                ord_t = np.concatenate((
                    seg_t[:n_pre],
                    np.full(carry.size, carry_t, dtype=np.float64),
                    seg_t[n_pre:]))
                carry_len = int(carry.size)
            elif pos < m:
                k = int(k_arr[pos])
                hi = pos + int(np.searchsorted(k_arr[pos:m], k,
                                               side="right"))
                ord_i = idx[pos:hi]
                ord_t = t[pos:hi]
                carry_len = 0
            else:
                break

            cpos = int(np.searchsorted(ord_t, cut, side="left"))
            if cpos == 0:
                break
            count0 = self._count if k == self._interval else 0
            budget = S - count0
            if budget < 0:
                budget = 0
            adm_n = cpos if cpos < budget else budget
            proc_i = ord_i[:cpos]
            proc_t = ord_t[:cpos]
            self._interval = k
            self._count = count0 + adm_n
            if carry_len:
                # carry_t < cut, so the whole carry fell inside cpos.
                pos += cpos - carry_len
                carry = _EMPTY_I8
            else:
                pos += cpos
            denied = cpos - adm_n
            if denied and delay:
                n_delayed += denied
                spill = proc_i[adm_n:]
                if carry.size:
                    # New spills from a late-fed batch in an already-
                    # processed interval join an existing carry for
                    # the same boundary, behind it (their re-queue
                    # sequence numbers are larger).
                    carry = np.concatenate((carry, spill))
                else:
                    carry = spill.copy()
                    carry_t = (k + 1) * T
                    carry_k = k + 1
                if adm_n:
                    out_i.append(proc_i[:adm_n])
                    out_t.append(proc_t[:adm_n])
                    out_k.append(np.full(adm_n, k, dtype=np.int64))
                    out_a.append(np.ones(adm_n, dtype=bool))
                    n_admitted += adm_n
            elif denied:
                n_rejected += denied
                flags = np.zeros(cpos, dtype=bool)
                flags[:adm_n] = True
                # Within each simultaneous batch the scalar loop
                # appends rejections immediately and dispatches the
                # admitted afterwards: stable-sort on (time, admitted)
                # puts rejected entries first at equal instants.
                emit = np.lexsort((flags, proc_t))
                out_i.append(proc_i[emit])
                out_t.append(proc_t[emit])
                out_k.append(np.full(cpos, k, dtype=np.int64))
                out_a.append(flags[emit])
                n_admitted += adm_n
            elif adm_n:
                out_i.append(proc_i)
                out_t.append(proc_t)
                out_k.append(np.full(adm_n, k, dtype=np.int64))
                out_a.append(np.ones(adm_n, dtype=bool))
                n_admitted += adm_n
            if cpos < len(ord_t):
                break

        self._t = t_all[pos:]
        self._i = i_all[pos:]
        self._carry = carry
        self._carry_time = carry_t
        self._carry_interval = carry_k

        if not out_i:
            return None
        order = np.concatenate(out_i)
        times = np.concatenate(out_t)
        intervals = np.concatenate(out_k)
        admitted = np.concatenate(out_a)
        starts = np.empty(order.size, dtype=bool)
        starts[0] = True
        np.not_equal(times[1:], times[:-1], out=starts[1:])
        return AdmissionPlan(order=order, times=times,
                             intervals=intervals, admitted=admitted,
                             starts=starts, n_admitted=n_admitted,
                             n_rejected=n_rejected,
                             n_delayed=n_delayed)
