"""Failed-device rebuild alongside foreground traffic.

Replication makes a failed module's data recoverable: every lost bucket
has surviving replicas, so a *rebuild* reads each lost bucket from a
surviving replica and programs it onto the replacement module.  The
operational question is the classic RAID trade-off: rebuild fast and
hurt foreground latency, or throttle and stretch the window of reduced
redundancy.

:class:`RebuildSimulator` runs both workloads through the DES array:
foreground reads (served degraded, i.e. never from the failed module)
compete with throttled rebuild reads on the surviving modules, while
the replacement module absorbs the rebuild writes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.allocation.base import AllocationScheme
from repro.allocation.degraded import DegradedAllocation
from repro.flash.array import FlashArray, IORequest
from repro.flash.metrics import ResponseStats
from repro.flash.params import FlashParams
from repro.sim import Environment

__all__ = ["RebuildReport", "RebuildSimulator"]


@dataclass
class RebuildReport:
    """Outcome of one rebuild run."""

    rebuild_time_ms: float
    n_rebuilt: int
    foreground: ResponseStats
    #: foreground stats from an identical run without the rebuild,
    #: for an apples-to-apples latency comparison
    baseline: ResponseStats

    @property
    def foreground_slowdown(self) -> float:
        """Mean foreground response inflation caused by the rebuild."""
        if self.baseline.avg == 0:
            return 0.0
        return self.foreground.avg / self.baseline.avg


class RebuildSimulator:
    """Simulates rebuilding one failed module under foreground load.

    Parameters
    ----------
    allocation:
        The healthy allocation (knows every bucket's replicas).
    failed_device:
        Module being rebuilt.
    rebuild_interval_ms:
        Throttle: time between consecutive rebuild reads (0 = flat
        out, back-to-back).
    params:
        Flash timing.
    """

    def __init__(self, allocation: AllocationScheme, failed_device: int,
                 rebuild_interval_ms: float = 0.0,
                 blocks_per_bucket: int = 1,
                 parallelism: int = 1,
                 low_priority: bool = False,
                 params: Optional[FlashParams] = None):
        if not 0 <= failed_device < allocation.n_devices:
            raise ValueError("failed_device out of range")
        if rebuild_interval_ms < 0:
            raise ValueError("rebuild_interval_ms must be >= 0")
        if blocks_per_bucket < 1:
            raise ValueError("blocks_per_bucket must be >= 1")
        if parallelism < 1:
            raise ValueError("parallelism must be >= 1")
        self.allocation = allocation
        self.failed_device = failed_device
        self.rebuild_interval_ms = rebuild_interval_ms
        #: physical blocks per bucket: one bucket of the design maps a
        #: whole data region, so rebuilding it means this many reads
        self.blocks_per_bucket = blocks_per_bucket
        #: concurrent rebuild streams: faster rebuild, more foreground
        #: interference -- the knob of the classic RAID trade-off
        self.parallelism = parallelism
        #: serve rebuild I/O only when no foreground request is
        #: queued on the module (priority queues)
        self.low_priority = low_priority
        self.params = params or FlashParams()
        self.degraded = DegradedAllocation(allocation, {failed_device})

    def lost_buckets(self) -> List[int]:
        """Buckets with a replica on the failed module."""
        return [b for b in range(self.allocation.n_buckets)
                if self.failed_device in self.allocation.devices_for(b)]

    # -- runs ---------------------------------------------------------------
    def run(self, arrivals: Sequence[float], buckets: Sequence[int],
            ) -> RebuildReport:
        """Rebuild while serving the foreground trace; returns both
        the rebuild metrics and the foreground latency comparison."""
        foreground = self._play(arrivals, buckets, rebuild=True)
        rebuild_time = self._last_rebuild_finish
        baseline = self._play(arrivals, buckets, rebuild=False)
        return RebuildReport(
            rebuild_time_ms=rebuild_time,
            n_rebuilt=(len(self.lost_buckets())
                       * self.blocks_per_bucket),
            foreground=foreground,
            baseline=baseline,
        )

    def _play(self, arrivals, buckets, rebuild: bool) -> ResponseStats:
        env = Environment()
        array = FlashArray(env, self.allocation.n_devices, self.params,
                           priority_queues=self.low_priority)
        stats = ResponseStats()
        busy_until = [0.0] * self.allocation.n_devices
        service = self.params.read_ms
        self._last_rebuild_finish = 0.0

        def foreground_proc():
            for t, bucket in zip(arrivals, buckets):
                if t > env.now:
                    yield env.timeout(t - env.now)
                live = self.degraded.devices_for(int(bucket))
                dev = min(live, key=lambda d: busy_until[d])
                busy_until[dev] = max(busy_until[dev], env.now) + service
                io = IORequest(arrival=float(t), bucket=int(bucket))
                done = array.issue(io, dev)
                done.add_callback(
                    lambda ev: stats.record(ev.value.response_ms))

        def rebuild_proc(lane: int):
            lost = self.lost_buckets()
            for bucket in lost[lane::self.parallelism]:
                for _ in range(self.blocks_per_bucket):
                    # read one surviving replica...
                    live = self.degraded.devices_for(bucket)
                    src = min(live, key=lambda d: busy_until[d])
                    busy_until[src] = max(busy_until[src],
                                          env.now) + service
                    prio = 1 if self.low_priority else 0
                    read = IORequest(arrival=env.now, bucket=bucket,
                                     priority=prio)
                    yield array.issue(read, src)
                    # ...then program the replacement module
                    write = IORequest(arrival=env.now, bucket=bucket,
                                      is_read=False, priority=prio)
                    yield array.issue(write, self.failed_device)
                    self._last_rebuild_finish = env.now
                    if self.rebuild_interval_ms > 0:
                        yield env.timeout(self.rebuild_interval_ms)

        env.process(foreground_proc())
        if rebuild:
            for lane in range(self.parallelism):
                env.process(rebuild_proc(lane))
        env.run()
        return stats
