"""Stacked sweep evaluation: many FCFS streams in one numpy pass.

The fast path (:mod:`repro.flash.fastpath`) evaluates *one* module's
queue per call; sweeps evaluate hundreds -- trials x intervals x
modules -- and the per-stream Python loop around those calls is what
the profiles show.  This module stacks the streams: all of a sweep's
independent FCFS queues are concatenated into one ragged array
(`issue`, `offsets` in CSR style) and the Lindley recurrence runs over
the whole stack at once -- one busy-period location pass, one
verification pass, one accumulate loop over busy periods instead of
one full kernel invocation per stream.

Exactness contract
------------------
Per-stream results are **bit-identical** to
:func:`repro.flash.fastpath.fcfs_completion_times` (and therefore to
the DES): busy periods are replayed with ``np.add.accumulate`` --
strict left-to-right addition, the event loop's exact operation
sequence -- and the located busy-period boundaries are verified
against the exact completions, falling back to the per-stream
sequential recurrence wherever a boundary moved.  The locator may be
sloppy (it shifts streams by large constants to run one global
cumulative maximum); the verifier is not.

Per-item service times are supported (mixed read/write queues): within
a busy period the recurrence is still plain repeated addition
``c_i = c_{i-1} + s_i``, so the same accumulate trick stays exact.

:func:`played_metrics` is the other half of sweep cost: per-cell
request metrics folded with numpy instead of per-request Python
loops, reproducing the reference loop's float additions exactly
(``np.add.accumulate`` again -- not ``np.sum``, whose pairwise
reassociation could drift a rounded golden digit).
"""

from __future__ import annotations

from typing import Sequence, Tuple

import numpy as np

from repro.flash.fastpath import _sequential_completions

__all__ = [
    "stacked_fcfs_completion_times",
    "stream_offsets",
    "sequential_sum",
    "played_metrics",
]


def stream_offsets(stream_ids, n_streams: int):
    """Group items into concatenated streams (CSR layout).

    Parameters
    ----------
    stream_ids:
        Per-item stream index (e.g. the device a request was issued
        to), in issue order.
    n_streams:
        Total stream count.

    Returns
    -------
    (order, offsets):
        ``order`` stably sorts items by stream (preserving per-stream
        FIFO order); ``offsets`` has length ``n_streams + 1`` with
        stream ``s`` occupying ``order[offsets[s]:offsets[s+1]]``.
    """
    ids = np.ascontiguousarray(stream_ids, dtype=np.int64)
    order = np.argsort(ids, kind="stable")
    counts = np.bincount(ids, minlength=n_streams)
    offsets = np.zeros(n_streams + 1, dtype=np.intp)
    np.cumsum(counts, out=offsets[1:])
    return order, offsets


def _locate_starts(u: np.ndarray, svc: np.ndarray,
                   offsets: np.ndarray) -> np.ndarray:
    """Candidate busy-period start flags for every stacked stream.

    Uses the closed-form locator ``c_i = S_i + max_{j<=i}(u_j -
    S_{j-1})`` (``S`` the running service sum) evaluated with one
    global cumulative maximum: each stream is shifted by a constant
    large enough to dominate the previous streams' keys, which makes
    the global ``np.maximum.accumulate`` segment-local.  The shifts
    cost precision -- acceptable because every boundary is verified
    against the exact completions afterwards.
    """
    n = u.size
    lengths = np.diff(offsets)
    starts = np.zeros(n, dtype=bool)
    starts[offsets[:-1][lengths > 0]] = True
    if n == 1 or np.all(lengths <= 1):
        return starts  # single item or all-singleton streams
    cs = np.cumsum(svc)
    base = np.repeat(cs[offsets[:-1][lengths > 0]] -
                     svc[offsets[:-1][lengths > 0]], lengths[lengths > 0])
    run = cs - base                      # within-stream inclusive cumsum
    key = u - (run - svc)                # u_j - S_{j-1}
    span = float(np.max(key) - np.min(key)) + 1.0
    if not np.isfinite(span):
        span = 1.0
    stream_of = np.repeat(np.arange(offsets.size - 1,
                                    dtype=np.float64)[lengths > 0],
                          lengths[lengths > 0])
    shifted = np.maximum.accumulate(key + stream_of * span)
    approx = (shifted - stream_of * span) + run
    starts[1:] |= u[1:] > approx[:-1]
    starts[offsets[:-1][lengths > 0]] = True
    return starts


def _accumulate(u: np.ndarray, svc: np.ndarray,
                starts: np.ndarray) -> np.ndarray:
    """Exact completions given busy-period starts (variable service).

    Within a busy period the recurrence degenerates to
    ``c_a = u_a + s_a; c_i = c_{i-1} + s_i`` -- reproduced exactly by
    ``np.add.accumulate``'s strict left-to-right accumulation.
    """
    n = u.size
    out = np.empty(n, dtype=np.float64)
    bounds = np.flatnonzero(starts)
    ends = np.append(bounds[1:], n)
    single = (ends - bounds) == 1
    lone = bounds[single]
    out[lone] = u[lone] + svc[lone]
    for a, b in zip(bounds[~single], ends[~single]):
        seg = svc[a:b].copy()
        seg[0] = u[a] + svc[a]
        np.add.accumulate(seg, out=out[a:b])
    return out


def _sequential_var(u: np.ndarray, svc: np.ndarray) -> np.ndarray:
    """Reference scalar recurrence with per-item service (exact)."""
    out = np.empty_like(u)
    prev = -np.inf
    for i in range(u.size):
        t = u[i]
        prev = (t if t > prev else prev) + svc[i]
        out[i] = prev
    return out


def stacked_fcfs_completion_times(issue_ms, offsets,
                                  service_ms) -> np.ndarray:
    """Completion times for a whole stack of independent FCFS streams.

    Parameters
    ----------
    issue_ms:
        Concatenated nondecreasing-within-stream issue times.
    offsets:
        ``n_streams + 1`` stream boundaries (CSR style), e.g. from
        :func:`stream_offsets`.
    service_ms:
        Scalar (homogeneous) or per-item service times.

    Returns
    -------
    numpy.ndarray
        Stacked completions, each stream bit-identical to
        :func:`repro.flash.fastpath.fcfs_completion_times` on that
        stream alone.
    """
    u = np.ascontiguousarray(issue_ms, dtype=np.float64)
    offs = np.ascontiguousarray(offsets, dtype=np.intp)
    n = u.size
    if offs.size < 2 or offs[0] != 0 or offs[-1] != n or \
            np.any(np.diff(offs) < 0):
        raise ValueError("offsets must be a CSR boundary array")
    if n == 0:
        return np.empty(0, dtype=np.float64)
    svc = np.asarray(service_ms, dtype=np.float64)
    if svc.ndim == 0:
        svc = np.full(n, float(svc))
    elif svc.shape != u.shape:
        raise ValueError("per-item service must align with issue times")
    if np.any(svc < 0):
        raise ValueError("service times must be >= 0")
    interior = np.ones(n, dtype=bool)
    interior[offs[:-1][np.diff(offs) > 0]] = False
    if np.any(u[interior] < u[np.flatnonzero(interior) - 1]):
        raise ValueError("issue times must be nondecreasing per stream")
    starts = _locate_starts(u, svc, offs)
    out = _accumulate(u, svc, starts)
    # Verify every located boundary against the exact completions;
    # re-run streams where ulp drift (or the locator's shifts) moved
    # one.  starts[i] must equal (u[i] > out[i-1]) at interior items.
    idx = np.flatnonzero(interior)
    bad = idx[(u[idx] > out[idx - 1]) != starts[idx]]
    if bad.size:
        for s in np.unique(np.searchsorted(offs, bad, side="right") - 1):
            a, b = offs[s], offs[s + 1]
            seg_svc = svc[a:b]
            if seg_svc.size and np.all(seg_svc == seg_svc[0]):
                out[a:b] = _sequential_completions(
                    u[a:b], float(seg_svc[0]))
            else:
                out[a:b] = _sequential_var(u[a:b], seg_svc)
    return out


def sequential_sum(values) -> float:
    """Left-to-right float sum, identical to Python's ``sum`` loop.

    ``np.add.accumulate`` performs the same strict sequential
    additions the reference per-request loops do; ``np.sum``'s
    pairwise reassociation would not.
    """
    arr = np.ascontiguousarray(values, dtype=np.float64)
    if arr.size == 0:
        return 0.0
    return float(np.add.accumulate(arr)[-1])


def played_metrics(played: Sequence, guarantee_ms: float,
                   ) -> Tuple[float, float, float, float]:
    """Degraded-mode cell metrics over one play-through, in bulk.

    Returns ``(avg_ms, pct_delayed, failed, violation_rate)`` exactly
    as the reference per-request loops compute them (the faults
    experiment's row shape): served = not rejected and not failed;
    violations = failures + guarantee misses among served;
    percentages over served + failed.
    """
    n = len(played)
    if n == 0:
        return 0.0, 0.0, 0.0, 0.0
    rejected = np.fromiter((p.rejected for p in played), dtype=bool,
                           count=n)
    failed = np.fromiter((p.failed for p in played), dtype=bool,
                         count=n)
    served = ~rejected & ~failed
    response = np.fromiter(
        (p.io.response_ms if s else 0.0
         for p, s in zip(played, served)), dtype=np.float64, count=n)
    delayed = np.fromiter((p.delayed for p in played), dtype=bool,
                          count=n)
    n_served = int(np.count_nonzero(served))
    n_failed = int(np.count_nonzero(failed))
    considered = n_served + n_failed
    violations = n_failed + int(np.count_nonzero(
        served & (response > guarantee_ms + 1e-9)))
    avg_ms = (sequential_sum(response[served]) / n_served
              if n_served else 0.0)
    pct_delayed = (100.0 * int(np.count_nonzero(delayed & served))
                   / considered if considered else 0.0)
    rate = violations / considered if considered else 0.0
    return avg_ms, pct_delayed, float(n_failed), rate
