"""Faulted fast playback: replay module queues without the event loop.

Fault schedules are fully materialised before playback starts
(:mod:`repro.faults`), so nothing about a faulty run is *discovered*
during simulation: which requests a module fails, how long a down
window stalls service, which read attempts draw an error -- all of it
is a pure function of the schedule, the per-module attempt counters
and the submission order.  This module exploits that: it replays the
per-module FIFO queues directly (the Lindley recurrence, segmented at
fault boundaries) instead of stepping the DES, reproducing the event
loop's arithmetic operation-for-operation so the results are
byte-identical -- enforced by the ``faults`` determinism probe, the
golden snapshots and the fault-schedule hypothesis properties.

How the replay stays exact
--------------------------
* **Submission order.**  The driver phase (admission, placement, the
  busy-until mirror) is shared verbatim with the healthy fast path and
  is independent of fault outcomes -- the mirror is never updated from
  completions, so the set of (module, issue-time) submissions is the
  same whatever the faults do.  Submissions are then replayed in
  ``(put_time, creation_time, seq)`` order, which reproduces the DES
  event queue's ``(time, seq)`` tie-breaking for queue puts: a process
  created earlier schedules its wake-up earlier and therefore puts
  first at equal instants.
* **Service arithmetic.**  Per-request service mirrors
  :meth:`repro.flash.module.FlashModule._serve_faulty` literally:
  dead-at-dequeue checks, down-window waits via ``available_from``,
  per-attempt slowdown multiplication, counter-based read-error draws
  (consumed in the same per-module order) and retry backoff -- the
  same floats through the same operations.
* **Segmentation.**  Modules the schedule never touches cannot fail
  and feed nothing back into the replay (no failovers originate from
  them), so their submissions are deferred and evaluated in bulk with
  the vectorized Lindley recurrence
  (:func:`repro.flash.fastpath.fcfs_completion_times` /
  :func:`repro.flash.batch.stacked_fcfs_completion_times`); only
  fault-affected modules replay request-by-request.

Driver failover (the online driver's retry on the next live replica)
is emulated by re-submitting the failed request with the schedule's
backoff; its creation time -- the failing attempt's completion -- puts
the re-issue exactly where the DES event queue would.
"""

from __future__ import annotations

import heapq
from typing import List, Optional, Sequence

import numpy as np

from repro import obs

__all__ = ["FaultedReplay"]

_INF = float("inf")


class _Submission:
    """One entry in a module's replayed FIFO queue."""

    __slots__ = ("io", "module", "put", "created", "seq", "candidates",
                 "tried", "attempt", "first_issue", "write")

    def __init__(self, io, module, put, created, seq,
                 candidates=None, first_issue=0.0, write=None):
        self.io = io
        self.module = module
        #: queue-put instant (the issue time)
        self.put = put
        #: when the issuing process was created; breaks put-time ties
        #: the way DES event sequence numbers do
        self.created = created
        self.seq = seq
        #: replica candidates for driver failover (``None``: the batch
        #: driver, which never fails over)
        self.candidates = candidates
        self.tried = [module]
        #: driver-level failover attempts consumed
        self.attempt = 0
        self.first_issue = first_issue
        #: the write master this replica belongs to (``None`` = read)
        self.write = write


class _WriteMaster:
    """A logical write fanned out to its replicas."""

    __slots__ = ("master", "replicas")

    def __init__(self, master):
        self.master = master
        self.replicas: List = []


class FaultedReplay:
    """Replay one play-through's module queues under a fault schedule.

    The driver submits reads and writes as it places them (through the
    shared admission/placement loop); :meth:`run` then fills in every
    ``IORequest``'s timestamps, fault flags and retry counts exactly
    as the DES module service loops would have.

    Parameters
    ----------
    schedule:
        The materialised :class:`repro.faults.FaultSchedule`.
    n_modules:
        Array width.
    params:
        :class:`repro.flash.params.FlashParams` timing constants.
    """

    def __init__(self, schedule, n_modules: int, params):
        self.schedule = schedule
        self.params = params
        self.retry = schedule.retry
        #: modules with no fault events: they can never fail a request,
        #: so nothing they serve feeds back into the replay
        self._quiet = [not schedule.events_for(m)
                       for m in range(n_modules)]
        self._free = [0.0] * n_modules
        #: per-module monotone read-attempt counters (error-draw index),
        #: mirroring :class:`repro.faults.view.ModuleFaultView`
        self._draws = [0] * n_modules
        self._deferred: List[List[_Submission]] = \
            [[] for _ in range(n_modules)]
        self._writes: List[_WriteMaster] = []
        self._heap: list = []
        self._seq = 0

    # -- driver-side API --------------------------------------------------
    def submit_read(self, io, module: int, issue_at: float,
                    created: float,
                    candidates: Optional[Sequence[int]] = None) -> None:
        """Record one read placed on ``module`` at ``issue_at``.

        ``created`` is the dispatch instant (when the DES would have
        created the issuing process); ``candidates`` enables driver
        failover across the request's untried live replicas.
        """
        self._push(_Submission(io, module, issue_at, created,
                               self._seq, candidates=candidates,
                               first_issue=issue_at))
        self._seq += 1

    def submit_write(self, master, devices: Sequence[int],
                     issue_at: float, created: float) -> None:
        """Record one write applied to every device in ``devices``."""
        from repro.flash.array import IORequest

        wm = _WriteMaster(master)
        for d in devices:
            replica = IORequest(arrival=master.arrival,
                                bucket=master.bucket, is_read=False)
            wm.replicas.append(replica)
            self._push(_Submission(replica, d, issue_at, created,
                                   self._seq, first_issue=issue_at,
                                   write=wm))
            self._seq += 1
        self._writes.append(wm)

    def _push(self, sub: _Submission) -> None:
        # Driver-phase submissions accumulate unordered; run() heapifies
        # the whole batch in one O(n) pass.  (put, created, seq) is a
        # total order -- seq is unique -- so the pop sequence is the
        # same as under per-submission heappush.
        self._heap.append((sub.put, sub.created, sub.seq, sub))

    # -- replay -----------------------------------------------------------
    def run(self) -> None:
        """Serve every submission; fills the IORequests in place."""
        heap = self._heap
        heapq.heapify(heap)
        quiet = self._quiet
        deferred = self._deferred
        while heap:
            sub = heapq.heappop(heap)[3]
            if quiet[sub.module]:
                # Heap order per module is FIFO order, so deferring in
                # pop order preserves the queue.
                deferred[sub.module].append(sub)
                continue
            self._serve(sub)
        self._flush_quiet()
        self._finalize_writes()

    def _serve(self, sub: _Submission) -> None:
        """One dequeued request on a fault-affected module.

        A line-by-line mirror of
        :meth:`repro.flash.module.FlashModule._serve_faulty` (same
        floats, same operations, same obs counters).
        """
        io = sub.io
        m = sub.module
        sched = self.schedule
        io.device = m
        io.enqueued_at = sub.put
        io.issued_at = sub.first_issue
        free = self._free[m]
        t = sub.put if sub.put > free else free  # dequeue instant
        if sched.is_dead(m, t):
            self._fail(io, "dead", t)
            self._free[m] = t
            self._after_failure(sub, t)
            return
        available = sched.available_from(m, t)
        if available == _INF:
            # The down window runs straight into a crash.
            self._fail(io, "dead", t)
            self._free[m] = t
            self._after_failure(sub, t)
            return
        if available > t:
            io.faulted = True
            if obs.ACTIVE:
                obs.SESSION.on_fault("down_wait")
            t = available
        io.started_at = t
        base = self.params.service_ms(io.is_read, io.n_blocks)
        retry = self.retry
        attempt = 0
        while True:
            t0 = t
            service = base * sched.slowdown(m, t0)
            if service != base:
                io.faulted = True
                if obs.ACTIVE:
                    obs.SESSION.on_fault("slow_service")
            t = t0 + service
            prob = sched.error_prob(m, t0) if io.is_read else 0.0
            if prob > 0.0 and self._draw(m) < prob:
                io.faulted = True
                if obs.ACTIVE:
                    obs.SESSION.on_fault("read_error")
                if attempt >= retry.max_retries:
                    self._fail(io, "read_error", t)
                    self._free[m] = t
                    self._after_failure(sub, t)
                    return
                backoff = retry.delay(attempt)
                attempt += 1
                io.retries += 1
                if obs.ACTIVE:
                    obs.SESSION.on_fault("read_retry")
                if backoff > 0:
                    t = t + backoff
                continue
            break
        io.completed_at = t
        self._free[m] = t

    def _draw(self, m: int) -> float:
        i = self._draws[m]
        self._draws[m] = i + 1
        return self.schedule.read_error_draw(m, i)

    @staticmethod
    def _fail(io, reason: str, t: float) -> None:
        io.failed = True
        io.fail_reason = reason
        io.faulted = True
        io.completed_at = t
        if obs.ACTIVE:
            obs.SESSION.on_fault(
                "dead_module" if reason == "dead" else reason)

    def _after_failure(self, sub: _Submission, t: float) -> None:
        """Driver failover: re-submit on the next live untried replica.

        Mirrors :meth:`repro.flash.driver.OnlineTracePlayer._issue_process`;
        write replicas and batch submissions (``candidates is None``)
        stay failed -- the DES drivers never fail those over either.
        """
        if sub.write is not None or sub.candidates is None:
            return
        io = sub.io
        masked = self.schedule.masked_at(t)
        alive = [d for d in sub.candidates
                 if d not in sub.tried and d not in masked]
        if not alive or sub.attempt >= self.retry.max_retries:
            if obs.ACTIVE:
                obs.SESSION.on_fault("unavailable")
            return
        nxt = alive[0]
        if obs.ACTIVE:
            obs.SESSION.on_fault("failover")
        backoff = self.retry.delay(sub.attempt)
        sub.attempt += 1
        io.retries += 1
        io.failed = False
        io.fail_reason = ""
        io.faulted = True
        sub.tried.append(nxt)
        sub.module = nxt
        sub.created = t
        sub.put = t + backoff if backoff > 0 else t
        sub.seq = self._seq
        self._seq += 1
        # Mid-run resubmission: the heap is live, push for real.
        heapq.heappush(self._heap,
                       (sub.put, sub.created, sub.seq, sub))

    # -- bulk phases ------------------------------------------------------
    def _flush_quiet(self) -> None:
        """Vectorized Lindley evaluation of every quiet module's queue.

        Quiet modules run the *healthy* service loop in the DES too
        (:class:`~repro.flash.module.FlashModule` drops quiet views),
        so their completions are exactly the FCFS recurrence; they are
        also never a failure source, so evaluating them after the
        scalar phase cannot change any failover decision.
        """
        streams = [(m, subs) for m, subs in enumerate(self._deferred)
                   if subs]
        if not streams:
            return
        from repro.flash.batch import stacked_fcfs_completion_times

        params = self.params
        # One stacked Lindley evaluation over every quiet module's
        # queue (per-stream bit-identical to the scalar recurrence).
        flat = [s for _, subs in streams for s in subs]
        puts = np.array([s.put for s in flat], dtype=np.float64)
        svc = np.array([params.service_ms(s.io.is_read, s.io.n_blocks)
                        for s in flat], dtype=np.float64)
        offsets = np.zeros(len(streams) + 1, dtype=np.intp)
        np.cumsum([len(subs) for _, subs in streams],
                  out=offsets[1:])
        comp = stacked_fcfs_completion_times(puts, offsets, svc)
        started = np.empty_like(comp)
        started[1:] = np.maximum(puts[1:], comp[:-1])
        started[offsets[:-1]] = np.maximum(puts[offsets[:-1]], 0.0)
        for (m, subs), a in zip(streams, offsets[:-1]):
            for i, s in enumerate(subs):
                io = s.io
                io.device = m
                io.enqueued_at = s.put
                io.issued_at = s.first_issue
                io.started_at = float(started[a + i])
                io.completed_at = float(comp[a + i])

    def _finalize_writes(self) -> None:
        """Fold replica outcomes into each write master, mirroring
        :meth:`~repro.flash.driver.OnlineTracePlayer._write_process`."""
        for wm in self._writes:
            master = wm.master
            replicas = wm.replicas
            completed = replicas[0].completed_at
            for r in replicas[1:]:
                if r.completed_at > completed:
                    completed = r.completed_at
            master.completed_at = completed
            if any(r.failed or r.faulted for r in replicas):
                master.faulted = True
                master.retries = sum(r.retries for r in replicas)
            if all(r.failed for r in replicas):
                master.failed = True
                master.fail_reason = replicas[0].fail_reason
