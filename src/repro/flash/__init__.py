"""Flash-array simulator (the DiskSim + SSD-extension substitute).

The paper drives a DiskSim build extended with Microsoft Research's SSD
model, in which one 8 KB read costs 0.132507 ms.  This package
implements the equivalent substrate on our DES kernel:

* :class:`~repro.flash.params.FlashParams` -- device timing/geometry,
* :class:`~repro.flash.module.FlashModule` -- one flash module with a
  FCFS service queue (a DES process),
* :class:`~repro.flash.array.FlashArray` -- ``N`` modules behind a
  controller with per-request completion events,
* :class:`~repro.flash.metrics.ResponseStats` -- I/O-driver response
  time accounting (avg / std / max, per run and per interval),
* :class:`~repro.flash.ftl.PageMappedFTL` -- a minimal page-mapped FTL
  for write/erase traffic in extension experiments,
* :mod:`~repro.flash.driver` -- trace players: interval-batch
  (design-theoretic) and online.
"""

from repro.flash.array import FlashArray, IORequest
from repro.flash.driver import BatchTracePlayer, OnlineTracePlayer
from repro.flash.ftl import PageMappedFTL
from repro.flash.metrics import ResponseStats
from repro.flash.module import FlashModule
from repro.flash.params import MSR_SSD_PARAMS, FlashParams

__all__ = [
    "BatchTracePlayer",
    "FlashArray",
    "FlashModule",
    "FlashParams",
    "IORequest",
    "MSR_SSD_PARAMS",
    "OnlineTracePlayer",
    "PageMappedFTL",
    "ResponseStats",
]
