"""Closed-form constant-latency playback (the vectorized fast path).

The paper's default array is the degenerate queueing regime: every
module is a deterministic constant-rate FCFS server (one 8 KB read =
0.132507 ms, no positional delays).  In that regime stepping the event
loop request-by-request computes nothing the Lindley recurrence does
not give in closed form:

.. math::

    c_i = \\max(u_i, c_{i-1}) + s

where ``u_i`` is the issue time of the *i*-th request on a module,
``s`` the constant service time and ``c_i`` its completion time.  This
module evaluates that recurrence with numpy instead of the DES --
bit-for-bit identical to the event loop, which the property tests and
the ``fastpath`` determinism probe enforce on randomized traces.

Exactness is the delicate part.  The textbook vectorization

.. math::

    c_i = (i + 1) s + \\max_{j \\le i} (u_j - j s)

re-associates the floating-point additions (``k * s`` instead of ``s``
added ``k`` times), so it can differ from the event loop by ulps.  We
therefore use it only to *locate busy periods*, then replay each busy
period with ``np.add.accumulate`` -- whose strict left-to-right
accumulation performs exactly the event loop's additions -- and verify
the located boundaries against the exact completions, falling back to
the sequential recurrence in the (ulp-rare) case a boundary moved.

The fast path only applies when the module population is homogeneous
constant-latency FCFS: an FTL (garbage-collection erase stalls), a
custom module type (HDD, channel geometry) or priority queues make
service times state-dependent, and the drivers fall back to the DES --
see :func:`supports_fast_playback`.

Fault schedules do **not** disqualify the fast path.  A schedule is
fully materialised before playback (:mod:`repro.faults`), so faulted
service is still a closed-form function of the submission order: the
request stream is segmented at fault boundaries and replayed by
:class:`repro.flash.faulted.FaultedReplay` -- scalar through fault
windows (exact ``_serve_faulty`` arithmetic, counter-based error
draws), vectorized Lindley everywhere else -- byte-identical to the
DES.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

__all__ = ["fcfs_completion_times", "supports_fast_playback"]


def supports_fast_playback(module_factory=None, ftl_factory=None,
                           priority_queues: bool = False,
                           faults=None) -> bool:
    """True when playback is computable in closed form.

    Any hook that makes per-request service time depend on *hidden
    simulation state* -- a custom module type (``module_factory``: HDD
    seek/rotation, channel-bus geometry), an FTL whose garbage
    collection stalls the module, or priority scheduling --
    disqualifies the closed form; the drivers then run the DES.

    A fault schedule (:class:`repro.faults.FaultSchedule`: crashes,
    down windows, latency degradation, read errors) does **not**: it
    is fully materialised before playback, so faulted service is a
    pure function of the submission order and the schedule, replayed
    event-free by :class:`repro.flash.faulted.FaultedReplay`.  The
    ``faults`` argument is retained for signature stability (and so
    future fault kinds can opt out of the fast path).
    """
    del faults  # crash/down/slow/read_error schedules replay exactly
    return (module_factory is None and ftl_factory is None
            and not priority_queues)


def _sequential_completions(issue_ms: np.ndarray,
                            service_ms: float) -> np.ndarray:
    """Reference scalar Lindley recurrence (exact by definition)."""
    out = np.empty_like(issue_ms)
    prev = -np.inf
    for i in range(issue_ms.size):
        u = issue_ms[i]
        prev = (u if u > prev else prev) + service_ms
        out[i] = prev
    return out


def _accumulate_busy_periods(issue_ms: np.ndarray, service_ms: float,
                             starts: np.ndarray) -> np.ndarray:
    """Exact completions given busy-period start flags.

    Within a busy period starting at index ``a`` the recurrence
    degenerates to repeated addition ``c_a = u_a + s; c_i = c_{i-1} + s``,
    which ``np.add.accumulate`` reproduces exactly (strict left-to-right
    accumulation, unlike the pairwise-summing ``np.sum``).
    """
    n = issue_ms.size
    out = np.empty(n, dtype=np.float64)
    bounds = np.flatnonzero(starts)
    ends = np.append(bounds[1:], n)
    lengths = ends - bounds
    single = lengths == 1
    # Idle-start singletons in bulk: c = u + s.
    lone = bounds[single]
    out[lone] = issue_ms[lone] + service_ms
    for a, b in zip(bounds[~single], ends[~single]):
        seg = np.full(b - a, service_ms)
        seg[0] = issue_ms[a] + service_ms
        np.add.accumulate(seg, out=out[a:b])
    return out


def fcfs_completion_times(issue_ms, service_ms: float) -> np.ndarray:
    """Completion times of FCFS requests on one constant-rate module.

    Parameters
    ----------
    issue_ms:
        Nondecreasing times at which requests enter the module queue.
    service_ms:
        The constant per-request service time.

    Returns
    -------
    numpy.ndarray
        ``c`` with ``c[i] = max(issue[i], c[i-1]) + service``,
        bit-identical to what the DES module would record.
    """
    u = np.ascontiguousarray(issue_ms, dtype=np.float64)
    if u.ndim != 1:
        raise ValueError("issue times must be one-dimensional")
    n = u.size
    if n == 0:
        return np.empty(0, dtype=np.float64)
    s = float(service_ms)
    if s < 0:
        raise ValueError("service time must be >= 0")
    if n > 1 and np.any(u[1:] < u[:-1]):
        raise ValueError("issue times must be nondecreasing (FCFS)")
    idx = np.arange(n)
    # Closed-form candidate, used only to locate busy-period starts.
    approx = np.maximum.accumulate(u - idx * s) + (idx + 1) * s
    starts = np.empty(n, dtype=bool)
    starts[0] = True
    starts[1:] = u[1:] > approx[:-1]
    out = _accumulate_busy_periods(u, s, starts)
    # A boundary is real iff the *exact* completion agrees with the
    # classification; ulp drift in `approx` near a tie can move one.
    if n > 1 and not np.array_equal(starts[1:], u[1:] > out[:-1]):
        return _sequential_completions(u, s)
    return out
