"""Channel-level flash module internals.

The paper's Figure 1 shows each flash module as multiple flash
*packages* behind a flash module controller (FMC) sharing one channel
bus.  The top-level experiments only need the aggregate service time,
but the substrate models the internals so the intra-module ablation can
ask where that 0.132507 ms goes:

* the NAND **array read** (``page_read_ms``) runs in parallel across
  packages;
* the **bus transfer** (``transfer_ms``) serialises on the channel.

:class:`ChannelFlashModule` is a drop-in alternative to
:class:`repro.flash.module.FlashModule`: with one package it behaves
identically (read = page_read + transfer, FCFS); with more packages,
array reads overlap and the channel becomes the bottleneck, raising the
module's saturation throughput from ``1/read_ms`` to
``~1/transfer_ms``.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Optional

from repro.flash.params import FlashParams
from repro.sim import Environment, Resource, Store

if TYPE_CHECKING:  # pragma: no cover
    from repro.flash.array import IORequest

__all__ = ["ChannelFlashModule"]


class ChannelFlashModule:
    """A flash module with ``n_packages`` dies behind one channel.

    Requests are dispatched round-robin by block number to packages;
    each package pipelines (array read in parallel, then queues for the
    shared bus).  Interface-compatible with
    :class:`~repro.flash.module.FlashModule`.
    """

    def __init__(self, env: Environment, module_id: int,
                 params: Optional[FlashParams] = None,
                 n_packages: int = 4):
        if n_packages < 1:
            raise ValueError("n_packages must be >= 1")
        self.env = env
        self.module_id = module_id
        self.params = params or FlashParams()
        self.n_packages = n_packages
        self.bus = Resource(env, capacity=1)
        self.package_queues: List[Store] = [Store(env)
                                            for _ in range(n_packages)]
        self.n_served = 0
        self.busy_time = 0.0  # bus occupancy
        for p in range(n_packages):
            env.process(self._package_loop(p))

    def submit(self, request: "IORequest") -> None:
        """Enqueue ``request`` on its block's home package."""
        request.device = self.module_id
        request.enqueued_at = self.env.now
        pkg = int(request.bucket) % self.n_packages
        self.package_queues[pkg].put(request)

    @property
    def queue_depth(self) -> int:
        return sum(len(q) for q in self.package_queues)

    def utilisation(self, elapsed: float) -> float:
        """Channel-bus utilisation over ``elapsed``."""
        return self.busy_time / elapsed if elapsed > 0 else 0.0

    def _package_loop(self, pkg: int):
        params = self.params
        while True:
            request = yield self.package_queues[pkg].get()
            request.started_at = self.env.now
            # NAND array phase: parallel across packages.
            array_ms = (params.page_read_ms if request.is_read
                        else params.page_program_ms)
            yield self.env.timeout(array_ms * request.n_blocks)
            # Channel phase: one transfer at a time per module.
            with self.bus.request() as grant:
                yield grant
                xfer = params.transfer_ms * request.n_blocks
                yield self.env.timeout(xfer)
                self.busy_time += xfer
            self.n_served += 1
            request.completed_at = self.env.now
            request.done.succeed(request)
