"""One flash module: a FCFS service queue on the DES kernel.

A :class:`FlashModule` runs a service loop as a simulation process:
requests enter an unbounded FIFO queue and are served one at a time,
each occupying the module for its deterministic service time.  This is
exactly the contention model behind the paper's DiskSim runs -- flash
has no positional delays, so a module is a constant-rate server.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro import obs
from repro.check import sanitizers
from repro.flash.params import FlashParams
from repro.sim import Environment, Store
from repro.sim.resources import PriorityStore

if TYPE_CHECKING:  # pragma: no cover
    from repro.flash.array import IORequest

__all__ = ["FlashModule"]


class FlashModule:
    """A single flash module with its own controller queue.

    Parameters
    ----------
    env:
        Simulation environment.
    module_id:
        Device index inside the array.
    params:
        Timing parameters; defaults to the paper's MSR SSD constants.
    """

    def __init__(self, env: Environment, module_id: int,
                 params: Optional[FlashParams] = None,
                 ftl=None, priority_queue: bool = False,
                 faults=None):
        self.env = env
        self.module_id = module_id
        self.params = params or FlashParams()
        #: optional :class:`repro.flash.ftl.PageMappedFTL`; when set,
        #: writes run through the mapping layer and garbage-collection
        #: erase time stalls the module (read/write interference).
        self.ftl = ftl
        #: optional :class:`repro.faults.ModuleFaultView`; when set
        #: (and not quiet), service consults the fault schedule --
        #: crashes fail requests, down windows stall service, slow
        #: windows stretch it, read-error windows trigger seeded
        #: retry-with-backoff.  ``None`` (or a quiet view) keeps the
        #: healthy service loop byte-identical to the pre-fault code.
        self.faults = faults if faults is not None \
            and not faults.quiet else None
        #: with a priority queue, lower ``IORequest.priority`` values
        #: are served first (background work yields to foreground)
        self.queue = PriorityStore(env) if priority_queue else Store(env)
        self.busy = False
        self.n_served = 0
        self.busy_time = 0.0
        #: enqueue time of the last request taken into service; the
        #: FCFS sanitizer asserts this never regresses on FIFO queues
        self._last_enqueued: Optional[float] = None
        env.process(self._service_loop())

    def submit(self, request: "IORequest") -> None:
        """Enqueue ``request`` for service on this module."""
        request.device = self.module_id
        request.enqueued_at = self.env.now
        if isinstance(self.queue, PriorityStore):
            self.queue.put(request, priority=request.priority)
        else:
            self.queue.put(request)

    @property
    def queue_depth(self) -> int:
        """Requests waiting (not counting the one in service)."""
        return len(self.queue)

    def utilisation(self, elapsed: float) -> float:
        """Fraction of ``elapsed`` spent serving."""
        return self.busy_time / elapsed if elapsed > 0 else 0.0

    def _service_loop(self):
        while True:
            request = yield self.queue.get()
            if sanitizers.ACTIVE \
                    and not isinstance(self.queue, PriorityStore):
                sanitizers.check_fcfs_order(
                    self.module_id, self._last_enqueued,
                    request.enqueued_at)
                self._last_enqueued = request.enqueued_at
            if self.faults is not None:
                yield from self._serve_faulty(request)
                continue
            self.busy = True
            request.started_at = self.env.now
            service = self.params.service_ms(request.is_read,
                                             request.n_blocks)
            if self.ftl is not None and not request.is_read:
                erases_before = self.ftl.stats.erases
                for j in range(request.n_blocks):
                    self.ftl.write(request.bucket + j)
                service += (self.ftl.stats.erases - erases_before) \
                    * self.params.block_erase_ms
            yield self.env.timeout(service)
            self.busy = False
            self.busy_time += service
            self.n_served += 1
            if obs.ACTIVE:
                obs.SESSION.on_service(self.module_id)
            request.completed_at = self.env.now
            request.done.succeed(request)

    # -- fault path --------------------------------------------------------
    def _fail(self, request: "IORequest", reason: str) -> None:
        """Complete ``request`` as failed (driver decides failover)."""
        request.failed = True
        request.fail_reason = reason
        request.faulted = True
        request.completed_at = self.env.now
        if obs.ACTIVE:
            obs.SESSION.on_fault(
                "dead_module" if reason == "dead" else reason)
        request.done.succeed(request)

    def _serve_faulty(self, request: "IORequest"):
        """Service one request with the fault schedule in force.

        Crash semantics take effect at service-start boundaries: a
        request already past its last read attempt completes, the next
        dequeue fails.  Down windows stall the module (the request
        waits), slow windows stretch the attempt it overlaps, and a
        read-error draw below the window's probability costs one
        backoff per the schedule's :class:`~repro.faults.RetryPolicy`
        before the attempt is repeated.
        """
        view = self.faults
        if view.dead_at(self.env.now):
            self._fail(request, "dead")
            return
        available = view.available_from(self.env.now)
        if available == float("inf"):
            # The down window runs straight into a crash.
            self._fail(request, "dead")
            return
        if available > self.env.now:
            request.faulted = True
            if obs.ACTIVE:
                obs.SESSION.on_fault("down_wait")
            yield self.env.timeout_until(available)
        self.busy = True
        request.started_at = self.env.now
        base = self.params.service_ms(request.is_read,
                                      request.n_blocks)
        if self.ftl is not None and not request.is_read:
            erases_before = self.ftl.stats.erases
            for j in range(request.n_blocks):
                self.ftl.write(request.bucket + j)
            base += (self.ftl.stats.erases - erases_before) \
                * self.params.block_erase_ms
        attempt = 0
        while True:
            t0 = self.env.now
            service = base * view.slowdown(t0)
            if service != base:
                request.faulted = True
                if obs.ACTIVE:
                    obs.SESSION.on_fault("slow_service")
            yield self.env.timeout(service)
            self.busy_time += service
            prob = view.error_prob(t0) if request.is_read else 0.0
            if prob > 0.0 and view.next_error_draw() < prob:
                request.faulted = True
                if obs.ACTIVE:
                    obs.SESSION.on_fault("read_error")
                if attempt >= view.retry.max_retries:
                    self.busy = False
                    self._fail(request, "read_error")
                    return
                backoff = view.retry.delay(attempt)
                attempt += 1
                request.retries += 1
                if obs.ACTIVE:
                    obs.SESSION.on_fault("read_retry")
                if backoff > 0:
                    yield self.env.timeout(backoff)
                continue
            break
        self.busy = False
        self.n_served += 1
        if obs.ACTIVE:
            obs.SESSION.on_service(self.module_id)
        request.completed_at = self.env.now
        request.done.succeed(request)
